"""A universal-compaction (size-tiered) LSM engine, RocksDB-style.

RocksDB's Universal Compaction keeps the tree as a sequence of sorted
runs, newest first, where runs never overlap in *time* range.  When the
run count exceeds a trigger, adjacent-in-age runs of similar size are
merged ("sorted runs ... can overlap in key-range but avoid overlap in
time-ranges" — the paper's Related Work).  Compared with leveled
compaction this trades lower write amplification for higher space
amplification — which is exactly why it serves as the second reference
point next to the LevelDB-like leveled engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsm.compaction import CompactionStats, merge_tables
from repro.lsm.entry import Entry, encode_key, make_tombstone, make_upsert
from repro.lsm.errors import InvalidConfigError
from repro.lsm.memtable import Memtable
from repro.lsm.sstable import SSTable


@dataclass(frozen=True, slots=True)
class TieredConfig:
    """Universal compaction parameters.

    Attributes:
        memtable_entries: Flush threshold.
        run_count_trigger: Max sorted runs before a compaction.
        size_ratio: A merge window grows while the next (older) run is
            at most this factor larger than the window so far.
        run_size_entries: Output sstable chunking within merged runs.
    """

    memtable_entries: int = 500
    run_count_trigger: int = 8
    size_ratio: float = 2.0
    run_size_entries: int = 10_000_000  # one table per run by default

    def __post_init__(self) -> None:
        if self.memtable_entries <= 0 or self.run_count_trigger < 2:
            raise InvalidConfigError("bad tiered config")
        if self.size_ratio < 1.0:
            raise InvalidConfigError("size_ratio must be >= 1")


@dataclass(slots=True)
class TieredEvent:
    """One universal compaction occurrence."""

    runs_merged: int
    stats: CompactionStats


@dataclass(slots=True)
class TieredStats:
    puts: int = 0
    gets: int = 0
    flushes: int = 0
    compactions: list[TieredEvent] = field(default_factory=list)


class TieredTree:
    """A size-tiered ("universal") LSM key-value store."""

    def __init__(self, config: TieredConfig | None = None, clock=None) -> None:
        self.config = config or TieredConfig()
        self._clock = clock or self._logical_clock
        self._logical_time = 0.0
        self._seqno = 0
        #: Sorted runs, newest first; disjoint in time range.
        self.runs: list[SSTable] = []
        self.stats = TieredStats()
        self._memtable = Memtable(self.config.memtable_entries)

    def _logical_clock(self) -> float:
        self._logical_time += 1.0
        return self._logical_time

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key, value) -> Entry:
        self._seqno += 1
        entry = make_upsert(key, value, self._seqno, self._clock())
        self.put_entry(entry)
        return entry

    def delete(self, key) -> Entry:
        self._seqno += 1
        entry = make_tombstone(key, self._seqno, self._clock())
        self.put_entry(entry)
        return entry

    def put_entry(self, entry: Entry) -> None:
        self._seqno = max(self._seqno, entry.seqno)
        self._memtable.put(entry)
        self.stats.puts += 1
        if self._memtable.is_full():
            self.flush()

    def flush(self) -> None:
        entries = self._memtable.entries()
        if not entries:
            return
        self.runs.insert(0, SSTable(entries))
        self._memtable = Memtable(self.config.memtable_entries)
        self.stats.flushes += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        while len(self.runs) > self.config.run_count_trigger:
            start, end = self._pick_window()
            window = self.runs[start:end]
            result = merge_tables(window, self.config.run_size_entries)
            merged = result.tables
            # A merged window collapses to one run (list of chunks kept
            # as a single concatenated run table when chunked).
            if len(merged) > 1:
                all_entries = [e for t in merged for e in t.entries]
                merged = [SSTable(all_entries)]
            self.runs[start:end] = merged
            self.stats.compactions.append(TieredEvent(len(window), result.stats))

    def _pick_window(self) -> tuple[int, int]:
        """Choose adjacent-in-age runs to merge (newest-first order).

        Greedy universal heuristic: starting from the newest run, grow
        the window while the next older run is within ``size_ratio`` of
        the window's accumulated size; if no such window of >= 2 runs
        exists, merge the two oldest runs.
        """
        ratio = self.config.size_ratio
        for start in range(len(self.runs) - 1):
            window_size = len(self.runs[start])
            end = start + 1
            while end < len(self.runs) and len(self.runs[end]) <= ratio * window_size:
                window_size += len(self.runs[end])
                end += 1
            if end - start >= 2:
                return start, end
        return len(self.runs) - 2, len(self.runs)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key) -> bytes | None:
        entry = self.get_entry(encode_key(key))
        if entry is None or entry.tombstone:
            return None
        return entry.value

    def get_entry(self, key: bytes) -> Entry | None:
        """Probe the memtable, then runs newest-first (first hit wins —
        runs are disjoint in time)."""
        self.stats.gets += 1
        found = self._memtable.get(key)
        if found is not None:
            return found
        for run in self.runs:
            hit = run.get(key)
            if hit is not None:
                return hit
        return None

    def total_entries(self) -> int:
        """Entries across all runs (includes obsolete versions — the
        space amplification of tiering)."""
        return sum(len(run) for run in self.runs)

    def live_keys(self) -> int:
        seen: set[bytes] = set()
        live = 0
        for source in [self._memtable.entries()] + [r.entries for r in self.runs]:
            for entry in source:
                if entry.key not in seen:
                    seen.add(entry.key)
                    if not entry.tombstone:
                        live += 1
        return live
