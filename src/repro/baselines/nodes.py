"""Simulated single-machine nodes for the reference engines.

Figure 3 includes LevelDB and RocksDB "to provide a reference point of
existing systems".  We run our own engines — a leveled-compaction tree
(LevelDB-like) and a universal-compaction tree (RocksDB-like) — behind
the same RPC surface and cost model as the monolithic CooLSM baseline,
so the three single-machine systems are directly comparable.
"""

from __future__ import annotations

from repro.core.config import CooLSMConfig
from repro.core.messages import ReadReply, ReadRequest, UpsertReply, UpsertRequest
from repro.lsm.entry import Entry
from repro.lsm.tree import LSMConfig, LSMTree
from repro.sim.clock import LooseClock
from repro.sim.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.rpc import RpcNode

from .tiered import TieredConfig, TieredTree


class _SingleMachineEngineNode(RpcNode):
    """Common RPC plumbing and cost charging for baseline engines."""

    def __init__(self, kernel, network, machine, name, config: CooLSMConfig, clock):
        super().__init__(kernel, network, machine, name)
        self.config = config
        self.clock = clock
        self._seqno = 0
        self.on("upsert", self._handle_upsert)
        self.on("read", self._handle_read)

    # Subclasses provide the engine-specific pieces:
    def _apply_write(self, entry: Entry) -> float:
        """Apply the write; return the storage compute cost triggered."""
        raise NotImplementedError

    def _lookup(self, key: bytes) -> tuple[Entry | None, int]:
        """Return (entry, probe_count)."""
        raise NotImplementedError

    def _handle_upsert(self, src: str, request: UpsertRequest):
        yield from self.compute(self.config.costs.upsert_cpu)
        self._seqno += 1
        entry = Entry(
            request.key, self._seqno, self.clock.now(), request.value, request.tombstone
        )
        cost = self._apply_write(entry)
        if cost:
            yield from self.compute(cost)
        return UpsertReply(entry.timestamp, entry.seqno)

    def _handle_read(self, src: str, request: ReadRequest):
        yield from self.compute(self.config.costs.read_base)
        entry, probes = self._lookup(request.key)
        yield from self.compute(probes * self.config.costs.probe_table)
        return ReadReply(entry, self.name)


class LevelDBLikeNode(_SingleMachineEngineNode):
    """Leveled compaction engine (LevelDB-style) on one machine.

    LevelDB triggers L0 compaction at 4 files and sizes levels by a
    10x ratio; the engine is our LSMTree with those parameters, plus a
    per-write WAL-fsync cost ("we run both with configuration to
    persist and sync to disk") that dominates its point-write latency.
    """

    #: Modelled fsync cost per write batch (synchronous WAL).
    WAL_SYNC_COST = 50e-6

    def __init__(self, kernel, network, machine, name, config, clock):
        super().__init__(kernel, network, machine, name, config, clock)
        self.tree = LSMTree(
            LSMConfig(
                memtable_entries=config.memtable_entries,
                sstable_entries=config.sstable_entries,
                level_thresholds=(4, 10, config.l2_threshold, config.l3_threshold),
            )
        )

    def _apply_write(self, entry: Entry) -> float:
        flushes = self.tree.stats.flushes
        compactions = len(self.tree.stats.compactions)
        self.tree.put_entry(entry)
        cost = self.WAL_SYNC_COST
        if self.tree.stats.flushes > flushes:
            cost += self.config.costs.flush_cost(self.config.memtable_entries)
        for event in self.tree.stats.compactions[compactions:]:
            cost += self.config.costs.merge_cost(event.stats.entries_in)
        return cost

    def _lookup(self, key: bytes):
        entry = self.tree.get_entry(key)
        probes = 0
        manifest = self.tree.manifest
        for table in manifest.level(0):
            if table.key_in_range(key) and table.bloom.might_contain(key):
                probes += 1
        for level in range(1, manifest.num_levels):
            if any(
                t.key_in_range(key) and t.bloom.might_contain(key)
                for t in manifest.level(level)
            ):
                probes += 1
        return entry, probes


class RocksDBLikeNode(_SingleMachineEngineNode):
    """Universal compaction engine (RocksDB-style) on one machine."""

    WAL_SYNC_COST = 50e-6

    def __init__(self, kernel, network, machine, name, config, clock):
        super().__init__(kernel, network, machine, name, config, clock)
        self.tree = TieredTree(
            TieredConfig(
                memtable_entries=config.memtable_entries,
                run_count_trigger=8,
            )
        )

    def _apply_write(self, entry: Entry) -> float:
        flushes = self.tree.stats.flushes
        compactions = len(self.tree.stats.compactions)
        self.tree.put_entry(entry)
        cost = self.WAL_SYNC_COST
        if self.tree.stats.flushes > flushes:
            cost += self.config.costs.flush_cost(self.config.memtable_entries)
        for event in self.tree.stats.compactions[compactions:]:
            cost += self.config.costs.merge_cost(event.stats.entries_in)
        return cost

    def _lookup(self, key: bytes):
        entry = self.tree.get_entry(key)
        probes = sum(
            1
            for run in self.tree.runs
            if run.key_in_range(key) and run.bloom.might_contain(key)
        )
        return entry, probes


def build_baseline_node(kind: str, config: CooLSMConfig, seed: int = 0):
    """Build a one-machine deployment of a reference engine.

    Returns ``(kernel, node, client_machine_factory)`` pieces packaged
    as a small namespace the bench harness drives like a Cluster.
    """
    from repro.sim.network import Network as _Network
    from repro.sim.regions import CLOUD_REGION
    from repro.sim.rng import RngRegistry

    kernel = Kernel()
    rngs = RngRegistry(seed)
    network = _Network(kernel, rngs)
    machine = Machine(kernel, "m-baseline", CLOUD_REGION)
    clock = LooseClock(kernel, config.delta, rngs.stream("clock.baseline"))
    classes = {"leveldb": LevelDBLikeNode, "rocksdb": RocksDBLikeNode}
    node = classes[kind](kernel, network, machine, f"{kind}-0", config, clock)
    return kernel, network, machine, node
