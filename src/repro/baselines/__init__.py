"""Reference single-machine engines for Figure 3's comparison points.

The paper runs LevelDB and RocksDB as reference systems; we build their
structural equivalents on our own substrate: a leveled-compaction
engine (:class:`LevelDBLikeNode`) and a universal/size-tiered engine
(:class:`TieredTree` / :class:`RocksDBLikeNode`).
"""

from .nodes import LevelDBLikeNode, RocksDBLikeNode, build_baseline_node
from .tiered import TieredConfig, TieredEvent, TieredStats, TieredTree

__all__ = [
    "LevelDBLikeNode",
    "RocksDBLikeNode",
    "TieredConfig",
    "TieredEvent",
    "TieredStats",
    "TieredTree",
    "build_baseline_node",
]
