"""YCSB-style core workloads (A-F), adapted to the CooLSM client.

The standard cloud-serving benchmark mixes, for apples-to-apples
comparison with other KV systems' evaluations:

| workload | mix | distribution |
|---|---|---|
| A | 50% reads / 50% updates | zipfian |
| B | 95% reads /  5% updates | zipfian |
| C | 100% reads              | zipfian |
| D | 95% reads / 5% inserts, read-latest | latest |
| E | 95% scans / 5% inserts  | zipfian |
| F | 50% reads / 50% read-modify-write | zipfian |

Each runner is a driver coroutine compatible with the harness; scans in
workload E use the global scan path (Ingestor + Compactors) and
read-latest in D biases reads toward recently inserted keys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.lsm.errors import InvalidConfigError

from .distributions import Zipfian


@dataclass(slots=True)
class YCSBResult:
    """Operation counts and latencies of one YCSB run."""

    reads: int = 0
    updates: int = 0
    inserts: int = 0
    scans: int = 0
    rmws: int = 0
    latencies: dict[str, list[float]] = field(default_factory=dict)

    def record(self, kind: str, latency: float) -> None:
        self.latencies.setdefault(kind, []).append(latency)

    def mean(self, kind: str) -> float:
        samples = self.latencies.get(kind, [])
        return sum(samples) / len(samples) if samples else 0.0

    @property
    def total_ops(self) -> int:
        return self.reads + self.updates + self.inserts + self.scans + self.rmws


def _timed(result: YCSBResult, kind: str, kernel):
    """Context-free latency recorder: returns (start_time, finish_fn)."""
    started = kernel.now

    def finish():
        result.record(kind, kernel.now - started)

    return finish


def workload_a(client, ops: int = 1_000, key_range: int | None = None, seed: int = 0):
    """50/50 read/update, zipfian."""
    return _mix(client, ops, read_fraction=0.5, key_range=key_range, seed=seed)


def workload_b(client, ops: int = 1_000, key_range: int | None = None, seed: int = 0):
    """95/5 read/update, zipfian."""
    return _mix(client, ops, read_fraction=0.95, key_range=key_range, seed=seed)


def workload_c(client, ops: int = 1_000, key_range: int | None = None, seed: int = 0):
    """Read-only, zipfian."""
    return _mix(client, ops, read_fraction=1.0, key_range=key_range, seed=seed)


def _mix(client, ops, read_fraction, key_range, seed):
    key_range = key_range or client.config.key_range
    rng = random.Random(seed)
    picker = Zipfian(key_range)
    result = YCSBResult()

    def driver():
        for index in range(ops):
            key = picker.pick(rng)
            if rng.random() < read_fraction:
                finish = _timed(result, "read", client.kernel)
                yield from client.read(key)
                finish()
                result.reads += 1
            else:
                finish = _timed(result, "update", client.kernel)
                yield from client.upsert(key, b"y-%d" % index)
                finish()
                result.updates += 1
        return result

    return driver()


def workload_d(client, ops: int = 1_000, key_range: int | None = None, seed: int = 0):
    """95% read-latest / 5% insert: reads strongly favour the most
    recently inserted keys."""
    key_range = key_range or client.config.key_range
    rng = random.Random(seed)
    result = YCSBResult()

    def driver():
        next_key = 0
        for index in range(ops):
            if next_key == 0 or rng.random() < 0.05:
                key = next_key % key_range
                next_key += 1
                finish = _timed(result, "insert", client.kernel)
                yield from client.upsert(key, b"d-%d" % index)
                finish()
                result.inserts += 1
            else:
                # Read-latest: exponential bias toward the newest keys.
                offset = min(int(rng.expovariate(0.2)), next_key - 1)
                key = (next_key - 1 - offset) % key_range
                finish = _timed(result, "read", client.kernel)
                yield from client.read(key)
                finish()
                result.reads += 1
        return result

    return driver()


def workload_e(
    client,
    ops: int = 200,
    key_range: int | None = None,
    seed: int = 0,
    max_scan_length: int = 100,
):
    """95% short scans / 5% inserts."""
    if max_scan_length <= 0:
        raise InvalidConfigError("max_scan_length must be positive")
    key_range = key_range or client.config.key_range
    rng = random.Random(seed)
    picker = Zipfian(key_range)
    result = YCSBResult()

    def driver():
        for index in range(ops):
            if rng.random() < 0.05:
                finish = _timed(result, "insert", client.kernel)
                yield from client.upsert(picker.pick(rng), b"e-%d" % index)
                finish()
                result.inserts += 1
            else:
                start = picker.pick(rng)
                length = 1 + rng.randrange(max_scan_length)
                finish = _timed(result, "scan", client.kernel)
                yield from client.scan(start, min(start + length, key_range))
                finish()
                result.scans += 1
        return result

    return driver()


def workload_f(client, ops: int = 1_000, key_range: int | None = None, seed: int = 0):
    """50% reads / 50% read-modify-write."""
    key_range = key_range or client.config.key_range
    rng = random.Random(seed)
    picker = Zipfian(key_range)
    result = YCSBResult()

    def driver():
        for index in range(ops):
            key = picker.pick(rng)
            if rng.random() < 0.5:
                finish = _timed(result, "read", client.kernel)
                yield from client.read(key)
                finish()
                result.reads += 1
            else:
                finish = _timed(result, "rmw", client.kernel)
                current = yield from client.read(key)
                suffix = b"|f%d" % index
                value = (current or b"") [:32] + suffix
                yield from client.upsert(key, value)
                finish()
                result.rmws += 1
        return result

    return driver()


#: Name -> runner, for harnesses and the CLI.
WORKLOADS = {
    "A": workload_a,
    "B": workload_b,
    "C": workload_c,
    "D": workload_d,
    "E": workload_e,
    "F": workload_f,
}
