"""Scan-heavy workload (YCSB-E shape, aimed at Readers).

The first entry in ROADMAP item 4's workload matrix: a mix of **short
Zipfian-start range scans** with a trickle of inserts — YCSB-E's shape —
but served by the *analytics* path (Reader range queries) instead of the
global Ingestor scan, because that is the path the paper dedicates
Readers to (Figure 9b) and the path the sorted view accelerates.

Two layers:

:func:`scan_ranges`
    The deterministic range sequence alone — ``(lo, hi)`` integer pairs
    with Zipfian starts and uniform short lengths.  The scan bench times
    :meth:`Reader.scan_pairs` directly over this same sequence, so the
    driver-based and direct-timing phases measure one workload.

:func:`scan_heavy`
    The driver coroutine for sim and live harnesses: ``scan_fraction``
    of ops are Reader range queries over :func:`scan_ranges`, the rest
    are inserts through the Ingestor (which keep Compactors compacting
    and therefore keep ``BackupUpdate`` installs — and view rebuilds —
    flowing during the measurement).
"""

from __future__ import annotations

import random

from repro.lsm.errors import InvalidConfigError

from .distributions import Zipfian
from .ycsb import YCSBResult, _timed


def scan_ranges(
    count: int,
    key_range: int,
    seed: int = 0,
    max_scan_length: int = 100,
) -> list[tuple[int, int]]:
    """``count`` short ``(lo, hi)`` ranges: Zipfian-distributed starts
    (hot prefixes get rescanned, which is what makes block-range caching
    pay) and lengths uniform in ``[1, max_scan_length]``, clipped to the
    key range."""
    if count <= 0 or key_range <= 0:
        raise InvalidConfigError("count and key_range must be positive")
    if max_scan_length <= 0:
        raise InvalidConfigError("max_scan_length must be positive")
    rng = random.Random(seed)
    picker = Zipfian(key_range)
    ranges: list[tuple[int, int]] = []
    for __ in range(count):
        start = picker.pick(rng)
        length = 1 + rng.randrange(max_scan_length)
        ranges.append((start, min(start + length, key_range)))
    return ranges


def scan_heavy(
    client,
    ops: int = 200,
    key_range: int | None = None,
    seed: int = 0,
    max_scan_length: int = 100,
    scan_fraction: float = 0.95,
    reader: str | None = None,
):
    """95% Reader range scans / 5% inserts (fractions adjustable).

    Returns a driver generator compatible with the sim and live
    harnesses; the result object is a :class:`~repro.workloads.ycsb.YCSBResult`
    with ``scan`` and ``insert`` latency series.
    """
    if not 0.0 <= scan_fraction <= 1.0:
        raise InvalidConfigError("scan_fraction must be within [0, 1]")
    key_range = key_range or client.config.key_range
    rng = random.Random(seed)
    picker = Zipfian(key_range)
    ranges = iter(scan_ranges(ops, key_range, seed=seed + 1, max_scan_length=max_scan_length))
    result = YCSBResult()

    def driver():
        for index in range(ops):
            if rng.random() >= scan_fraction:
                finish = _timed(result, "insert", client.kernel)
                yield from client.upsert(picker.pick(rng), b"sh-%d" % index)
                finish()
                result.inserts += 1
            else:
                lo, hi = next(ranges)
                finish = _timed(result, "scan", client.kernel)
                yield from client.analytics_query(lo, hi, reader=reader)
                finish()
                result.scans += 1
        return result

    return driver()
