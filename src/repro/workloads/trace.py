"""Workload traces: record once, replay identically anywhere.

Comparing two deployments is only meaningful if they see the *same*
operation sequence.  A :class:`Trace` is that sequence — recorded from
any generator-based workload, or synthesised directly — and
:func:`replay` drives it against any client.  Traces also serialise to
a simple text format so a workload can be shipped alongside results.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.lsm.errors import InvalidConfigError

from .distributions import KeyPicker, Uniform


@dataclass(frozen=True, slots=True)
class TraceOp:
    """One recorded operation."""

    kind: str  # "write" | "read" | "delete"
    key: int
    value: bytes = b""


class Trace:
    """An immutable-by-convention sequence of operations."""

    def __init__(self, ops: list[TraceOp] | None = None) -> None:
        self.ops: list[TraceOp] = ops or []

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def append(self, kind: str, key: int, value: bytes = b"") -> None:
        if kind not in ("write", "read", "delete"):
            raise InvalidConfigError(f"unknown trace op kind: {kind}")
        self.ops.append(TraceOp(kind, key, value))

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------
    @classmethod
    def synthesize(
        cls,
        ops: int,
        read_fraction: float = 0.0,
        delete_fraction: float = 0.0,
        key_range: int = 10_000,
        picker: KeyPicker | None = None,
        seed: int = 0,
        value_size: int = 32,
    ) -> "Trace":
        """Generate a reproducible trace with the given mix."""
        if not 0.0 <= read_fraction + delete_fraction <= 1.0:
            raise InvalidConfigError("fractions must sum to at most 1")
        rng = random.Random(seed)
        picker = picker or Uniform(key_range)
        trace = cls()
        payload = b"t" * value_size
        for index in range(ops):
            key = picker.pick(rng)
            draw = rng.random()
            if draw < read_fraction:
                trace.append("read", key)
            elif draw < read_fraction + delete_fraction:
                trace.append("delete", key)
            else:
                trace.append("write", key, payload + b"-%d" % index)
        return trace

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """One op per line: ``kind key [hex-value]``."""
        lines = []
        for op in self.ops:
            if op.kind == "write":
                lines.append(f"write {op.key} {op.value.hex()}")
            else:
                lines.append(f"{op.kind} {op.key}")
        return "\n".join(lines)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        trace = cls()
        for line_number, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if parts[0] == "write":
                if len(parts) != 3:
                    raise InvalidConfigError(f"bad trace line {line_number}: {line!r}")
                trace.append("write", int(parts[1]), bytes.fromhex(parts[2]))
            elif parts[0] in ("read", "delete") and len(parts) == 2:
                trace.append(parts[0], int(parts[1]))
            else:
                raise InvalidConfigError(f"bad trace line {line_number}: {line!r}")
        return trace

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.dumps())

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path, "r", encoding="utf-8") as f:
            return cls.loads(f.read())


def replay(client, trace: Trace):
    """Driver coroutine: run a trace against a client.

    Returns a dict model of the final expected state (key -> value for
    live keys), usable as an oracle for verification.
    """
    model: dict[int, bytes] = {}
    for op in trace:
        if op.kind == "write":
            yield from client.upsert(op.key, op.value)
            model[op.key] = op.value
        elif op.kind == "delete":
            yield from client.delete(op.key)
            model.pop(op.key, None)
        else:
            yield from client.read(op.key)
    return model
