"""Key-choice distributions for workload generators.

The paper's experiments draw keys from bounded ranges (100K / 300K).
We provide the pickers a benchmark harness needs: uniform, sequential
(round-robin), zipfian (skewed access, standard YCSB-style exponent),
and hotspot.  All pickers draw from a caller-supplied
:class:`random.Random` so experiments stay reproducible.
"""

from __future__ import annotations

import bisect
import random

from repro.lsm.errors import InvalidConfigError


class KeyPicker:
    """Interface: pick an integer key in [0, key_range)."""

    def __init__(self, key_range: int) -> None:
        if key_range <= 0:
            raise InvalidConfigError("key_range must be positive")
        self.key_range = key_range

    def pick(self, rng: random.Random) -> int:
        raise NotImplementedError


class Uniform(KeyPicker):
    """Every key equally likely."""

    def pick(self, rng: random.Random) -> int:
        return rng.randrange(self.key_range)


class Sequential(KeyPicker):
    """Round-robin over the key space (the densest write pattern)."""

    def __init__(self, key_range: int, start: int = 0) -> None:
        super().__init__(key_range)
        self._next = start % key_range

    def pick(self, rng: random.Random) -> int:
        key = self._next
        self._next = (self._next + 1) % self.key_range
        return key


class Zipfian(KeyPicker):
    """Zipf-distributed keys (rank r with probability ∝ 1/r^theta).

    Uses an exact precomputed CDF (fine for the paper's key ranges) and
    scatters ranks over the key space with a multiplicative hash so hot
    keys are not all adjacent.
    """

    def __init__(self, key_range: int, theta: float = 0.99) -> None:
        super().__init__(key_range)
        if not 0.0 < theta < 2.0:
            raise InvalidConfigError("theta must be in (0, 2)")
        self.theta = theta
        weights = [1.0 / (rank**theta) for rank in range(1, key_range + 1)]
        total = 0.0
        self._cdf = []
        for weight in weights:
            total += weight
            self._cdf.append(total)
        self._total = total

    def pick(self, rng: random.Random) -> int:
        target = rng.random() * self._total
        rank = bisect.bisect_left(self._cdf, target)
        # Scatter ranks across the key space deterministically.
        return (rank * 2654435761) % self.key_range


class Hotspot(KeyPicker):
    """A fraction of accesses hit a small hot set."""

    def __init__(
        self, key_range: int, hot_fraction: float = 0.2, hot_access: float = 0.8
    ) -> None:
        super().__init__(key_range)
        if not 0.0 < hot_fraction < 1.0 or not 0.0 < hot_access < 1.0:
            raise InvalidConfigError("fractions must be in (0, 1)")
        self.hot_keys = max(1, int(key_range * hot_fraction))
        self.hot_access = hot_access

    def pick(self, rng: random.Random) -> int:
        if rng.random() < self.hot_access:
            return rng.randrange(self.hot_keys)
        return self.hot_keys + rng.randrange(self.key_range - self.hot_keys)


def make_picker(name: str, key_range: int, **kwargs) -> KeyPicker:
    """Factory by name: uniform | sequential | zipfian | hotspot."""
    pickers = {
        "uniform": Uniform,
        "sequential": Sequential,
        "zipfian": Zipfian,
        "hotspot": Hotspot,
    }
    if name not in pickers:
        raise InvalidConfigError(f"unknown distribution: {name}")
    return pickers[name](key_range, **kwargs)
