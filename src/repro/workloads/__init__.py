"""Workload generators for the evaluation: write-only and mixed
key-value workloads (Section IV) and the smart city traffic benchmark
(Section IV-E)."""

from .distributions import Hotspot, KeyPicker, Sequential, Uniform, Zipfian, make_picker
from .generators import (
    READ_BATCH,
    WRITE_BATCH,
    WorkloadSpec,
    mixed,
    preload,
    run_workload,
    write_only,
)
from .scan_heavy import scan_heavy, scan_ranges
from .smart_traffic import (
    CityModel,
    TaskResult,
    analytics_queries,
    populate_city,
    real_time_action,
    update_and_explore,
)
from .trace import Trace, TraceOp, replay as replay_trace
from .ycsb import WORKLOADS as YCSB_WORKLOADS, YCSBResult

__all__ = [
    "CityModel",
    "Hotspot",
    "KeyPicker",
    "READ_BATCH",
    "Sequential",
    "TaskResult",
    "Trace",
    "TraceOp",
    "Uniform",
    "WRITE_BATCH",
    "WorkloadSpec",
    "YCSBResult",
    "YCSB_WORKLOADS",
    "Zipfian",
    "analytics_queries",
    "make_picker",
    "mixed",
    "populate_city",
    "preload",
    "real_time_action",
    "replay_trace",
    "run_workload",
    "scan_heavy",
    "scan_ranges",
    "update_and_explore",
    "write_only",
]
