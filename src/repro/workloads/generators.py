"""Workload generators: the paper's write-only and mixed workloads.

Section IV: "For write experiments, a batch size of 10K is used and for
read experiments, a batch size of 1K" — a client issues operations
back-to-back in batches of that size; per-operation latency and overall
throughput are measured at the client.

A generator returns a *driver*: a simulation coroutine to spawn with
``cluster.kernel.spawn`` (or run with ``cluster.run_process``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.lsm.errors import InvalidConfigError

from .distributions import KeyPicker, Uniform

#: The paper's batch sizes (Section IV).
WRITE_BATCH = 10_000
READ_BATCH = 1_000


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """A client workload.

    Attributes:
        ops: Total operations to issue.
        read_fraction: 0.0 = all writes; the paper's mixed experiments
            use 0.25 / 0.5 / 0.75.
        value_size: Payload bytes per write.
        seed: RNG seed for key choice and op mix.
    """

    ops: int = WRITE_BATCH
    read_fraction: float = 0.0
    value_size: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ops <= 0:
            raise InvalidConfigError("ops must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise InvalidConfigError("read_fraction must be in [0, 1]")


def run_workload(client, spec: WorkloadSpec, picker: KeyPicker | None = None):
    """Driver coroutine: issue ``spec.ops`` operations back-to-back.

    Returns ``(writes_issued, reads_issued)``.
    """
    rng = random.Random(spec.seed)
    picker = picker or Uniform(client.config.key_range)
    payload = b"x" * spec.value_size
    writes = reads = 0
    for index in range(spec.ops):
        key = picker.pick(rng)
        if spec.read_fraction and rng.random() < spec.read_fraction:
            yield from client.read(key)
            reads += 1
        else:
            yield from client.upsert(key, payload + (b"%d" % index))
            writes += 1
    return writes, reads


def write_only(client, ops: int = WRITE_BATCH, seed: int = 0, picker: KeyPicker | None = None):
    """The paper's all-write workload (Figures 3, 4, 5, 8)."""
    return run_workload(client, WorkloadSpec(ops=ops, seed=seed), picker)


def mixed(
    client,
    read_fraction: float,
    ops: int = READ_BATCH,
    seed: int = 0,
    picker: KeyPicker | None = None,
):
    """The paper's mixed read/write workload (Figures 6, 7)."""
    return run_workload(
        client, WorkloadSpec(ops=ops, read_fraction=read_fraction, seed=seed), picker
    )


def preload(client, count: int, key_range: int | None = None, seed: int = 0):
    """Driver: populate ``count`` sequential keys before an experiment,
    so reads have data to find."""
    key_range = key_range or client.config.key_range
    for index in range(count):
        yield from client.upsert(index % key_range, b"preload-%d" % index)
    return count
