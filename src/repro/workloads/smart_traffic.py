"""The smart city traffic benchmark (Sections II-A and IV-E).

Cars are clients distributed over a metropolitan area; each car has a
record keyed by its id.  Three task types drive the evaluation:

1. **Real-time action (V2X)** — a car at an intersection writes its
   status; a nearby vehicle immediately reads it.  Latency is the
   write+read sequence (Table III).
2. **Status update and exploration** — a moving car writes its own
   location, then interactively reads the records of the cars now in
   its vicinity; each read depends on the previous one, so reads are
   sequential round trips (Figure 9a).
3. **Analytics** — an analyst range-reads the state of all cars in a
   city region from a Backup node (Figure 9b).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.lsm.errors import InvalidConfigError


@dataclass(frozen=True, slots=True)
class CityModel:
    """The benchmark's world: a grid of intersections with cars.

    Car ``c``'s record key is ``c``; cars are assigned to intersections
    round-robin, and "vicinity" means the cars of the same intersection.
    """

    num_cars: int = 10_000
    num_intersections: int = 100

    def __post_init__(self) -> None:
        if self.num_cars <= 0 or self.num_intersections <= 0:
            raise InvalidConfigError("city model sizes must be positive")

    def intersection_of(self, car: int) -> int:
        return car % self.num_intersections

    def cars_at(self, intersection: int) -> list[int]:
        return list(range(intersection % self.num_cars, self.num_cars, self.num_intersections))

    def neighbours(self, car: int, count: int, rng: random.Random) -> list[int]:
        """``count`` other cars at the same intersection."""
        pool = [c for c in self.cars_at(self.intersection_of(car)) if c != car]
        if not pool:
            return []
        return [pool[rng.randrange(len(pool))] for __ in range(count)]


@dataclass(slots=True)
class TaskResult:
    """Latency of one benchmark task occurrence (seconds)."""

    latencies: list[float] = field(default_factory=list)

    def add(self, latency: float) -> None:
        self.latencies.append(latency)

    @property
    def mean(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0


def populate_city(client, city: CityModel):
    """Driver: write an initial record for every car."""
    for car in range(city.num_cars):
        yield from client.upsert(car, b"car-%d@%d" % (car, city.intersection_of(car)))
    return city.num_cars


def real_time_action(writer_client, reader_client, city: CityModel, rounds: int, seed: int = 0):
    """Driver for Task 1 (Table III): write status, nearby car reads it.

    Returns a :class:`TaskResult` with one latency per write+read
    sequence, measured end to end as the paper does.
    """
    rng = random.Random(seed)
    result = TaskResult()
    kernel = writer_client.kernel
    for round_index in range(rounds):
        car = rng.randrange(city.num_cars)
        started = kernel.now
        yield from writer_client.upsert(car, b"status-%d-%d" % (car, round_index))
        yield from reader_client.read(car)
        result.add(kernel.now - started)
    return result


def update_and_explore(client, city: CityModel, explorations: int, rounds: int, seed: int = 0):
    """Driver for Task 2 (Figure 9a): one location write, then
    ``explorations`` interactive reads of nearby cars.

    The reads are issued one at a time — "the keys of future reads
    depend on the current read request" — so each pays a full round
    trip.  Returns a :class:`TaskResult` of cumulative per-sequence
    latencies.
    """
    rng = random.Random(seed)
    result = TaskResult()
    kernel = client.kernel
    for round_index in range(rounds):
        car = rng.randrange(city.num_cars)
        started = kernel.now
        yield from client.upsert(car, b"loc-%d-%d" % (car, round_index))
        for neighbour in city.neighbours(car, explorations, rng):
            yield from client.read(neighbour)
        result.add(kernel.now - started)
    return result


#: Round trips spent initiating a query and connecting to the Backup
#: (the paper attributes the small-query overhead to "initiating the
#: query and making the connection to the backup node").
CONNECTION_SETUP_ROUND_TRIPS = 3


def analytics_queries(client, city: CityModel, query_size: int, rounds: int, seed: int = 0):
    """Driver for Task 3 (Figure 9b): region queries against a Backup.

    A query reads ``query_size`` car records of a contiguous region as
    individual read operations against the Reader, after a connection
    setup of a few round trips; the paper reports the *average read
    latency per operation in the query*, which falls toward an
    asymptote as the setup cost amortises.  Returns a
    :class:`TaskResult` of per-read latencies.
    """
    rng = random.Random(seed)
    result = TaskResult()
    kernel = client.kernel
    for __ in range(rounds):
        start_key = rng.randrange(max(1, city.num_cars - query_size))
        started = kernel.now
        # Connection setup: handshake round trips to the Backup.
        for __setup in range(CONNECTION_SETUP_ROUND_TRIPS):
            yield from client.read_from_backup(start_key)
        reads = 0
        for key in range(start_key, start_key + query_size):
            yield from client.read_from_backup(key % city.num_cars)
            reads += 1
        result.add((kernel.now - started) / max(1, reads))
    return result
