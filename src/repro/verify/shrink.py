"""Delta debugging for failing schedules.

A schedule that violates a Table I guarantee typically contains dozens
of operations and several faults, most of them irrelevant.  This module
minimises the counterexample: :func:`ddmin` (Zeller's delta debugging)
over the operation tuple, then over the fault tuple, then a final
one-at-a-time pass until no single element can be removed — a
*locally minimal* failing schedule.  Because schedule execution is
deterministic, the predicate ("does this subset still fail?") is a pure
function and the shrink needs no retries.

:func:`render_timeline` pretty-prints the shrunk schedule as a
step-by-step timeline interleaving client operations, nemesis fault
actions, and reconfiguration phase marks, with the violations at the
end — the human-readable bug report a failing seed turns into.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence, TypeVar

from .explorer import ScheduleOutcome, ScheduleSpec, run_schedule

T = TypeVar("T")


class ShrinkBudgetExceeded(RuntimeError):
    """The shrink ran out of its schedule-execution budget."""


@dataclass(slots=True)
class ShrinkResult:
    """Outcome of minimising one failing schedule."""

    original: ScheduleSpec
    shrunk: ScheduleSpec
    runs: int
    outcome: ScheduleOutcome

    @property
    def removed_ops(self) -> int:
        return len(self.original.ops) - len(self.shrunk.ops)

    @property
    def removed_faults(self) -> int:
        return len(self.original.faults) - len(self.shrunk.faults)


def ddmin(
    items: Sequence[T],
    still_fails: Callable[[list[T]], bool],
) -> list[T]:
    """Classic ddmin: minimise ``items`` such that ``still_fails`` holds.

    Assumes ``still_fails(list(items))`` is True on entry.  Returns a
    subset (in original order) on which the predicate still holds and
    from which no chunk of the final granularity can be removed.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if candidate and still_fails(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # re-scan from the beginning of the shrunk list
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(len(items), granularity * 2)
    return items


def _one_at_a_time(
    items: Sequence[T], still_fails: Callable[[list[T]], bool]
) -> list[T]:
    """Final polish: drop single elements until a fixpoint."""
    items = list(items)
    changed = True
    while changed:
        changed = False
        for index in range(len(items)):
            candidate = items[:index] + items[index + 1:]
            if still_fails(candidate):
                items = candidate
                changed = True
                break
    return items


def shrink_schedule(
    spec: ScheduleSpec,
    fails: Callable[[ScheduleSpec], bool] | None = None,
    budget: int = 600,
) -> ShrinkResult:
    """Minimise a failing schedule to a locally-minimal counterexample.

    Args:
        spec: A schedule for which ``fails(spec)`` is True.
        fails: Failure predicate; defaults to "running the schedule
            reports at least one violation".
        budget: Maximum schedule executions the shrink may spend;
            exceeding it raises :class:`ShrinkBudgetExceeded`.
    """
    runs = 0

    def default_fails(candidate: ScheduleSpec) -> bool:
        return bool(run_schedule(candidate).violations)

    predicate = fails or default_fails

    def spend(candidate: ScheduleSpec) -> bool:
        nonlocal runs
        runs += 1
        if runs > budget:
            raise ShrinkBudgetExceeded(f"shrink exceeded {budget} schedule runs")
        return predicate(candidate)

    if not spend(spec):
        raise ValueError("shrink_schedule requires a failing schedule")

    def ops_fail(ops) -> bool:
        return spend(replace(spec, ops=tuple(ops)))

    ops = ddmin(spec.ops, ops_fail)
    spec_ops = replace(spec, ops=tuple(ops))

    def faults_fail(faults) -> bool:
        return spend(replace(spec_ops, faults=tuple(faults)))

    faults = spec_ops.faults
    if faults and faults_fail([]):
        faults = ()
    elif len(faults) >= 2:
        faults = tuple(ddmin(faults, faults_fail))
    spec_faults = replace(spec_ops, faults=tuple(faults))

    # Local-minimality polish across both dimensions.
    ops = _one_at_a_time(
        spec_faults.ops, lambda o: spend(replace(spec_faults, ops=tuple(o)))
    )
    final = replace(spec_faults, ops=tuple(ops))
    if final.faults:
        faults = _one_at_a_time(
            final.faults, lambda f: spend(replace(final, faults=tuple(f)))
        )
        final = replace(final, faults=tuple(faults))

    return ShrinkResult(
        original=spec, shrunk=final, runs=runs, outcome=run_schedule(final)
    )


# ----------------------------------------------------------------------
# Timeline rendering
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _Step:
    time: float
    actor: str
    action: str
    order: int = 0


def render_timeline(outcome: ScheduleOutcome) -> str:
    """A step-by-step, human-readable account of one schedule run."""
    spec = outcome.spec
    steps: list[_Step] = []
    for op in outcome.executed:
        if op.kind == "write":
            action = f"write k{op.key} = {op.value.decode()}"
        else:
            shown = op.value.decode() if isinstance(op.value, bytes) else op.value
            verb = "backup-read" if op.kind == "backup_read" else "read"
            action = f"{verb} k{op.key} -> {shown}"
            if op.outcome != "ok":
                action += f" [{op.outcome}]"
        steps.append(_Step(op.invoked_at, op.client, action, order=1))
    for record in outcome.nemesis_log:
        time, action, target = record
        steps.append(_Step(time, "nemesis", f"{action} {target}", order=0))
    for mark in outcome.history.marks:
        steps.append(_Step(mark.time, "reconfig", f"{mark.label} ({mark.detail})", order=0))
    steps.sort(key=lambda s: (s.time, s.order))

    lines = [
        f"# Counterexample timeline — seed={spec.seed} shape={spec.shape.label} "
        f"guarantee={spec.shape.guarantee}",
        f"ops={len(spec.ops)} faults={len(spec.faults)} "
        f"violations={len(outcome.violations)}",
        "",
        "step   time      actor        action",
    ]
    for number, step in enumerate(steps, start=1):
        lines.append(
            f"{number:4d}   {step.time:8.4f}  {step.actor:<11s}  {step.action}"
        )
    if outcome.violations:
        lines.append("")
        lines.append("violations:")
        for checker, detail in outcome.violations:
            lines.append(f"  [{checker}] {detail}")
    return "\n".join(lines) + "\n"
