"""Seeded schedule exploration: interleavings × faults × cluster shapes.

A **schedule** is pure data (:class:`ScheduleSpec`): a cluster shape
drawn from Table I's design space, a tuple of planned client operations
with per-op pacing (the interleaving), and a tuple of nemesis fault
events — all derived deterministically from one integer seed.  Running
a schedule (:func:`run_schedule`) builds a fresh simulated cluster,
drives the operations and faults, then applies the matrix-appropriate
consistency checkers plus the sequential reference model to everything
the clients observed.

Because the whole pipeline — generation, simulation, checking,
reporting — is seeded and wall-clock-free, a failing seed *is* the bug
report: re-running it reproduces the identical history, fault log, and
kernel event schedule, which :func:`repro.verify.shrink.shrink_schedule`
then minimises.

The module also hosts :data:`BUGS`: deliberately injectable protocol
bugs (e.g. disabling the two-phase read's ts_h/ts_c freshness
comparison) used to validate that the harness actually *finds*
consistency violations rather than vacuously passing.
"""

from __future__ import annotations

import hashlib
import random
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

from repro.bench.metrics import ExplorationCounters
from repro.core import (
    ClusterSpec,
    CooLSMConfig,
    History,
    build_cluster,
    check_linearizable,
    check_linearizable_concurrent,
    check_snapshot_linearizable,
    replace_compactor,
    split_partition,
)
from repro.sim.nemesis import (
    CrashNode,
    DropBurst,
    Nemesis,
    NemesisEvent,
    PartitionPair,
    SlowMachine,
)
from repro.sim.rpc import RemoteError, RpcTimeout

from .model import (
    ModelReport,
    SequentialModel,
    check_backup_reads,
    check_history_loose_ts,
    check_history_realtime,
)

#: Aggressive level thresholds so a handful of writes travels the whole
#: Ingestor -> Compactor -> Reader pipeline inside one short schedule;
#: tight timeouts so fault handling, not waiting, dominates.
VERIFY_CONFIG = CooLSMConfig(
    key_range=64,
    memtable_entries=4,
    sstable_entries=4,
    l0_threshold=1,
    l1_threshold=1,
    l2_threshold=3,
    l3_threshold=12,
    max_inflight_tables=8,
    delta=0.002,
    gc_slack=2.0,
    ack_timeout=0.25,
    client_timeout=0.5,
    client_retry_budget=4,
)


# ----------------------------------------------------------------------
# Schedule encoding (pure data, hashable, replayable)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ShapeSpec:
    """One cell of the paper's deployment design space.

    ``sharded`` range-shards the key space across the Ingestors (one
    owner per key, clients chase WrongShard redirects) and ``spares``
    adds unlaunched-equivalent Ingestors owning nothing — the live
    scale-out topology, model-checked in the simulator.  The
    ``"shard-split"`` reconfig drives the online split coordinator
    (:func:`repro.live.membership.split_ingestor_shard`) mid-schedule.
    ``fault_focus`` narrows the nemesis: ``"none"`` (fault-free load),
    ``"partition"`` (machine-pair partitions only), or ``"crash"``
    (node crash/recover only) — so a shape *guarantees* its scenario
    (split-under-load, split-during-partition, split-with-crash)
    instead of leaving it to the seed's fault lottery.
    """

    num_ingestors: int = 1
    num_compactors: int = 2
    num_readers: int = 0
    clients: int = 2
    reconfig: str | None = None  # None | "replace" | "split" | "shard-split"
    sharded: bool = False
    spares: int = 0
    fault_focus: str | None = None  # None | "none" | "partition" | "crash"
    #: Compaction policy override for every node (None = the config's
    #: default).  Appended last, defaulted, so the long-standing
    #: positional construction of the main corpus is untouched.
    policy: str | None = None
    #: Run Readers with the REMIX-style sorted view (DESIGN.md §19) and
    #: turn the shape's backup-read slots into analytics range scans, so
    #: scans race ``BackupUpdate`` installs and Reader crashes.  After
    #: quiescence the view-backed scan is checked bit-identical to the
    #: streaming merge.  Appended last, defaulted, like ``policy``.
    sorted_view: bool = False

    @property
    def label(self) -> str:
        tag = f"{self.num_ingestors}i/{self.num_compactors}c/{self.num_readers}r"
        if self.sharded:
            tag += f"/sh{self.spares and f'+{self.spares}' or ''}"
        tag += f"+{self.reconfig}" if self.reconfig else ""
        if self.fault_focus:
            tag += f"!{self.fault_focus}"
        if self.policy:
            tag += f"@{self.policy}"
        if self.sorted_view:
            tag += "~view"
        return tag

    @property
    def guarantee(self) -> str:
        # Sharded fleets have exactly one owner per key: single-Ingestor
        # linearizability via ownership + epoch fencing, regardless of
        # how many Ingestors share the key space.
        multi = self.num_ingestors > 1 and not self.sharded
        front = "lin+conc" if multi else "linearizable"
        return front + ("+snapshot" if self.num_readers else "")


#: The explored corner of the design space: every Table I cell, plus
#: live reconfiguration variants of the single-Ingestor cell.
SHAPES: tuple[ShapeSpec, ...] = (
    ShapeSpec(1, 2, 0, clients=2),
    ShapeSpec(1, 2, 1, clients=2),
    ShapeSpec(2, 2, 0, clients=2),
    ShapeSpec(2, 2, 1, clients=3),
    ShapeSpec(1, 2, 0, clients=2, reconfig="replace"),
    ShapeSpec(1, 1, 0, clients=2, reconfig="split"),
)

#: Live-cluster shapes: the sharded scale-out topology with an online
#: Ingestor shard split firing mid-schedule.  A separate corpus (not
#: folded into :data:`SHAPES`) so the long-standing seed -> shape
#: mapping of the main corpus — and every fingerprint derived from it —
#: stays stable.
LIVE_SHAPES: tuple[ShapeSpec, ...] = (
    # Split under concurrent load, no faults: the protocol itself.
    ShapeSpec(2, 2, 0, clients=3, sharded=True, spares=1,
              reconfig="shard-split", fault_focus="none"),
    # Split while machine pairs partition and heal underneath.
    ShapeSpec(2, 2, 0, clients=2, sharded=True, spares=1,
              reconfig="shard-split", fault_focus="partition"),
    # Split concurrent with Ingestor crash/recover cycles.
    ShapeSpec(2, 2, 0, clients=2, sharded=True, spares=1,
              reconfig="shard-split", fault_focus="crash"),
)

#: Non-default compaction policies under crash/recover cycles: the
#: schedules that stress table handoff (minor compaction, forward,
#: absorb, Reader install) mid-crash, where a policy whose level shape
#: differs from leveling would corrupt reads if any replace/recover
#: path still assumed disjoint levels.  A separate corpus, like
#: :data:`LIVE_SHAPES`, so the main corpus fingerprints stay stable.
POLICY_SHAPES: tuple[ShapeSpec, ...] = (
    ShapeSpec(1, 2, 0, clients=2, fault_focus="crash", policy="tiering"),
    ShapeSpec(1, 2, 1, clients=2, fault_focus="crash", policy="lazy_leveling"),
    ShapeSpec(1, 2, 0, clients=2, fault_focus="crash", policy="one_leveling"),
)

#: Sorted-view shapes: analytics scans racing ``BackupUpdate`` installs
#: and Reader crash/recover cycles (view teardown + rebuild), including
#: the stacked lazy-leveling source levels whose replacement-set updates
#: drive the segment-invalidation rule.  A separate corpus, like
#: :data:`LIVE_SHAPES`, so the main corpus fingerprints stay stable.
SCAN_SHAPES: tuple[ShapeSpec, ...] = (
    # Scans racing installs under pure load — the coherence protocol.
    ShapeSpec(1, 2, 1, clients=2, fault_focus="none", sorted_view=True),
    # Scans racing Reader/Ingestor crash cycles: teardown, rebuild,
    # catch-up-triggered full refreshes.
    ShapeSpec(1, 2, 1, clients=2, fault_focus="crash", sorted_view=True),
    # Stacked source runs: replaced_ids-keyed installs under crashes.
    ShapeSpec(1, 2, 1, clients=2, fault_focus="crash",
              policy="lazy_leveling", sorted_view=True),
)


@dataclass(frozen=True, slots=True)
class PlannedOp:
    """One generated client operation.

    ``tag`` makes the written value unique across the whole schedule
    (the checkers' distinct-writes requirement); ``pace`` is the pause
    before issuing, which is what varies the interleaving.
    """

    index: int
    client: int
    kind: str  # "write" | "read" | "backup_read"
    key: int
    tag: int
    pace: float


@dataclass(frozen=True, slots=True)
class ScheduleSpec:
    """A complete, replayable experiment: shape × ops × faults."""

    seed: int
    shape: ShapeSpec
    ops: tuple[PlannedOp, ...]
    faults: tuple[NemesisEvent, ...]

    def value_of(self, op: PlannedOp) -> bytes:
        return b"s%d-%d" % (self.seed, op.tag)


def _machine_names(shape: ShapeSpec) -> list[str]:
    names = [
        f"m-ingestor-{i}" for i in range(shape.num_ingestors + shape.spares)
    ]
    names += [f"m-compactor-{i}" for i in range(shape.num_compactors)]
    names += [f"m-reader-{i}" for i in range(shape.num_readers)]
    return names


def generate_schedule(
    seed: int,
    ops: int = 40,
    faults: int = 2,
    shapes: tuple[ShapeSpec, ...] = SHAPES,
    key_space: int = 8,
) -> ScheduleSpec:
    """Draw one schedule from ``seed`` (same seed, same schedule).

    Keys are drawn from a small space so writes from different clients
    (and, in multi-Ingestor shapes, different Ingestors) collide often —
    collisions are where ordering bugs live.  Clock-skew faults are
    deliberately excluded: they violate the δ bound on purpose, which
    would make checker failures expected rather than reportable.
    """
    rng = random.Random(seed)
    shape = shapes[rng.randrange(len(shapes))]
    planned: list[PlannedOp] = []
    for index in range(ops):
        client = rng.randrange(shape.clients)
        roll = rng.random()
        if roll < 0.55:
            kind = "write"
        elif shape.num_readers and roll < 0.70:
            # Sorted-view shapes spend the Reader slot on range scans
            # (same rng draws, so other corpora's schedules are
            # byte-identical to before this kind existed).
            kind = "scan" if shape.sorted_view else "backup_read"
        else:
            kind = "read"
        planned.append(
            PlannedOp(
                index=index,
                client=client,
                kind=kind,
                key=rng.randrange(key_space),
                tag=index,
                pace=rng.uniform(0.002, 0.010),
            )
        )
    horizon = max(0.05, ops * 0.004)
    machines = _machine_names(shape)
    crash_targets = [
        f"ingestor-{i}" for i in range(shape.num_ingestors + shape.spares)
    ]
    crash_targets += [f"reader-{i}" for i in range(shape.num_readers)]
    events: list[NemesisEvent] = []
    if shape.fault_focus == "none":
        pass  # fault-free: the schedule exercises load + reconfig only
    elif shape.fault_focus in ("partition", "crash"):
        # Focused nemesis, timed to overlap the mid-run reconfig window
        # (the reconfig driver starts at 0.4 * horizon).
        for __ in range(faults):
            at = rng.uniform(0.25 * horizon, 0.75 * horizon)
            duration = rng.uniform(0.05, 0.20)
            if shape.fault_focus == "partition" and len(machines) >= 2:
                a, b = rng.sample(machines, 2)
                events.append(PartitionPair(a, b, at, duration))
            else:
                events.append(CrashNode(rng.choice(crash_targets), at, duration))
    else:
        for __ in range(faults):
            family = rng.randrange(4)
            at = rng.uniform(0.01, horizon)
            duration = rng.uniform(0.05, 0.20)
            if family == 0:
                events.append(CrashNode(rng.choice(crash_targets), at, duration))
            elif family == 1 and len(machines) >= 2:
                a, b = rng.sample(machines, 2)
                events.append(PartitionPair(a, b, at, duration))
            elif family == 2:
                events.append(DropBurst(rng.uniform(0.05, 0.30), at, duration))
            else:
                events.append(
                    SlowMachine(rng.choice(machines), at, duration, factor=rng.uniform(2.0, 6.0))
                )
    events.sort(key=lambda e: e.at)
    return ScheduleSpec(seed, shape, tuple(planned), tuple(events))


# ----------------------------------------------------------------------
# Running one schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ExecutedOp:
    """What actually happened to one planned operation."""

    index: int
    client: str
    kind: str
    key: int
    value: bytes | None
    invoked_at: float
    returned_at: float
    outcome: str  # "ok" | "timeout"


@dataclass(slots=True)
class ScheduleOutcome:
    """Everything one schedule run produced."""

    spec: ScheduleSpec
    history: History
    backup_history: History
    executed: list[ExecutedOp]
    violations: list[tuple[str, str]] = field(default_factory=list)
    model_mismatches: int = 0
    counters: ExplorationCounters = field(default_factory=ExplorationCounters)
    events_dispatched: int = 0
    schedule_digest: str = ""
    nemesis_log: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def fingerprint(self) -> str:
        """Digest of everything observable: executed schedule, history,
        fault log.  Byte-identical across replays of the same seed."""
        hasher = hashlib.sha256()
        hasher.update(self.schedule_digest.encode())
        hasher.update(repr(self.nemesis_log).encode())
        for op in self.history:
            hasher.update(
                repr((op.kind, op.key, op.value, op.invoked_at, op.returned_at, op.timestamp)).encode()
            )
        for op in self.backup_history:
            hasher.update(repr((op.kind, op.key, op.value, op.server)).encode())
        return hasher.hexdigest()[:16]


def _client_driver(cluster, strong, analyst, spec, ops, executed):
    """One client's generator: issue its planned ops in order.

    Writes and strong reads retry until acked — retries reuse the same
    value, so an applied-but-unacked attempt can never surface a value
    outside the recorded history.  Backup reads tolerate a dead Reader
    (bounded failure is the contract there).
    """

    def driver():
        for op in ops:
            yield cluster.kernel.timeout(op.pace)
            invoked = cluster.kernel.now
            if op.kind == "write":
                value = spec.value_of(op)
                while True:
                    try:
                        yield from strong.upsert(op.key, value)
                        break
                    except (RpcTimeout, RemoteError):
                        continue
                executed.append(
                    ExecutedOp(op.index, strong.name, "write", op.key, value,
                               invoked, cluster.kernel.now, "ok")
                )
            elif op.kind == "read":
                while True:
                    try:
                        got = yield from strong.read(op.key)
                        break
                    except (RpcTimeout, RemoteError):
                        continue
                executed.append(
                    ExecutedOp(op.index, strong.name, "read", op.key, got,
                               invoked, cluster.kernel.now, "ok")
                )
            elif op.kind == "scan":
                # Analytics range scan racing installs/crashes.  Bounded
                # failure is the contract (a crashed Reader times out);
                # the recorded value is a digest of the returned pairs,
                # which pins the executed schedule into the fingerprint.
                outcome = "ok"
                digest = None
                try:
                    pairs = yield from analyst.analytics_query(
                        op.key, op.key + 1 + op.tag % 8
                    )
                    digest = hashlib.sha256(repr(pairs).encode()).digest()[:8]
                except (RpcTimeout, RemoteError):
                    outcome = "timeout"
                executed.append(
                    ExecutedOp(op.index, analyst.name, "scan", op.key, digest,
                               invoked, cluster.kernel.now, outcome)
                )
            else:  # backup_read
                outcome = "ok"
                got = None
                try:
                    got = yield from analyst.read_from_backup(op.key)
                except (RpcTimeout, RemoteError):
                    outcome = "timeout"
                executed.append(
                    ExecutedOp(op.index, analyst.name, "backup_read", op.key, got,
                               invoked, cluster.kernel.now, outcome)
                )

    return driver


def _reconfig_driver(cluster, spec, start_at: float, admin=None):
    """Launch the shape's live reconfiguration mid-run."""

    def driver():
        yield cluster.kernel.timeout(start_at)
        if spec.shape.reconfig == "replace":
            yield from replace_compactor(cluster, "compactor-0", "compactor-0x")
        elif spec.shape.reconfig == "shard-split":
            # Online Ingestor shard split, driven by the *live* runtime's
            # coordinator running under the sim kernel — the exact code
            # the TCP cluster runs, model-checked here against faults.
            from repro.live.membership import split_ingestor_shard

            shape = spec.shape
            new_owner = f"ingestor-{shape.num_ingestors}"
            boundary = max(op.key for op in spec.ops) // 2 + 1
            yield from split_ingestor_shard(
                admin,
                cluster.spec.initial_shard_map(),
                boundary,
                new_owner,
                others=[node.name for node in cluster.ingestors],
                history=cluster.history,
            )
        else:
            # Explicit boundary: the node may not have forwarded data yet
            # by mid-run, and an empty compactor cannot infer a midpoint.
            boundary = max(op.key for op in spec.ops) // 2 + 1
            yield from split_partition(
                cluster, "compactor-0", "compactor-0x", boundary_key=boundary
            )

    return driver


def run_schedule(
    spec: ScheduleSpec, config: CooLSMConfig = VERIFY_CONFIG
) -> ScheduleOutcome:
    """Execute one schedule and check everything it observed."""
    shape = spec.shape
    if shape.policy is not None:
        config = replace(config, compaction_policy=shape.policy)
    if shape.sorted_view:
        config = replace(config, sorted_view=True)
    cluster = build_cluster(
        ClusterSpec(
            config=config,
            num_ingestors=shape.num_ingestors,
            num_compactors=shape.num_compactors,
            num_readers=shape.num_readers,
            sharded=shape.sharded,
            spare_ingestors=shape.spares,
            seed=spec.seed,
        )
    )
    kernel = cluster.kernel
    digest = hashlib.sha256()
    dispatched = 0

    def schedule_hook(time: float) -> None:
        nonlocal dispatched
        dispatched += 1
        digest.update(repr(time).encode())

    kernel.add_schedule_hook(schedule_hook)

    backup_history = History()
    strongs = []
    analysts = []
    for c in range(shape.clients):
        primary = f"ingestor-{c % shape.num_ingestors}"
        order = [
            f"ingestor-{(c + k) % shape.num_ingestors}"
            for k in range(shape.num_ingestors)
        ]
        strongs.append(cluster.add_client(colocate_with=primary, ingestors=order))
        if shape.num_readers:
            analyst = cluster.add_client(colocate_with=primary, ingestors=order,
                                         record_history=False)
            analyst.history = backup_history
            analysts.append(analyst)
        else:
            analysts.append(None)

    executed: list[ExecutedOp] = []
    drivers = []
    for c in range(shape.clients):
        ops = [op for op in spec.ops if op.client == c]
        if not ops:
            continue
        drivers.append(
            kernel.spawn(
                _client_driver(cluster, strongs[c], analysts[c], spec, ops, executed)(),
                f"verify.client-{c}",
            )
        )

    nemesis = Nemesis.for_cluster(cluster)
    fault_processes = nemesis.schedule(spec.faults)

    waits = list(drivers) + list(fault_processes)
    if shape.reconfig:
        horizon = max(0.05, len(spec.ops) * 0.004)
        admin = None
        if shape.reconfig == "shard-split":
            admin = cluster.add_client(
                colocate_with="ingestor-0", record_history=False
            )
        waits.append(
            kernel.spawn(
                _reconfig_driver(cluster, spec, 0.4 * horizon, admin)(),
                "verify.reconfig",
            )
        )

    def barrier():
        yield kernel.all_of(waits)

    cluster.run_process(barrier())
    cluster.run()  # drain forwards, compactions, backup updates

    # Final read-back: after quiescence every touched key is read once
    # through the strong path and recorded in the history — the checkers
    # then prove no acked write was lost.
    touched = sorted({op.key for op in spec.ops})

    def read_back():
        for key in touched:
            while True:
                try:
                    yield from strongs[0].read(key)
                    break
                except (RpcTimeout, RemoteError):
                    continue

    cluster.run_process(read_back())
    cluster.run()
    kernel.remove_schedule_hook(schedule_hook)

    outcome = ScheduleOutcome(
        spec=spec,
        history=cluster.history,
        backup_history=backup_history,
        executed=sorted(executed, key=lambda e: (e.invoked_at, e.index)),
        events_dispatched=dispatched,
        schedule_digest=digest.hexdigest()[:16],
        nemesis_log=nemesis.log.fingerprint(),
    )
    outcome.counters.schedules = 1
    outcome.counters.operations = len(spec.ops)
    outcome.counters.faults = len(spec.faults)
    outcome.counters.reconfigs = 1 if shape.reconfig else 0
    if shape.sorted_view:
        # Quiescence scan-identity check: after every install, crash,
        # and rebuild the schedule threw at it, the view-backed scan
        # must still be bit-identical to the streaming merge.
        outcome.counters.checker_calls += 1
        for reader in cluster.readers:
            manager = reader.view_mgr
            if manager is None or not manager.ready:
                continue
            if reader._view_scan(None, None, None) != reader._streaming_scan(
                None, None, None
            ):
                outcome.violations.append(
                    (
                        "scan-identity",
                        f"{reader.name}: view-backed scan diverged from "
                        "the streaming merge",
                    )
                )
                outcome.counters.violations += 1
    _check_outcome(outcome, config)
    return outcome


def _check_outcome(outcome: ScheduleOutcome, config: CooLSMConfig) -> None:
    """Apply the matrix-appropriate checkers plus the reference model."""
    spec = outcome.spec
    counters = outcome.counters

    def record(name: str, violations: Iterable) -> None:
        counters.checker_calls += 1
        for violation in violations:
            outcome.violations.append((name, f"{violation.rule}: {violation.detail}"))
            counters.violations += 1

    def record_model(name: str, report: ModelReport) -> None:
        counters.checker_calls += 1
        for mismatch in report.mismatches:
            outcome.violations.append((name, f"{mismatch.rule}: {mismatch.detail}"))
            counters.violations += 1
            counters.model_mismatches += 1
            outcome.model_mismatches += 1

    if spec.shape.num_ingestors > 1 and not spec.shape.sharded:
        record(
            "lin+conc",
            check_linearizable_concurrent(outcome.history, config.delta).violations,
        )
        record_model("model:loose-ts", check_history_loose_ts(outcome.history, config.delta))
    else:
        # Single Ingestor — or a sharded fleet, where single ownership
        # per key plus epoch fencing restores plain linearizability.
        record("linearizable", check_linearizable(outcome.history).violations)
        record_model("model:realtime", check_history_realtime(outcome.history))
    if spec.shape.num_readers:
        record(
            "snapshot",
            check_snapshot_linearizable(outcome.history, outcome.backup_history).violations,
        )
        record_model(
            "model:backup",
            check_backup_reads(outcome.history, outcome.backup_history),
        )
    if outcome.violations:
        counters.failing_schedules = 1


# ----------------------------------------------------------------------
# Differential sequential traces (cluster vs monolith vs model)
# ----------------------------------------------------------------------
def differential_run(
    seed: int,
    ops: int = 120,
    key_space: int = 16,
    config: CooLSMConfig = VERIFY_CONFIG,
    read_cache_capacity: int | None = None,
    compaction_policy: str | None = None,
) -> dict[str, object]:
    """Drive the identical sequential trace against the CooLSM cluster,
    the monolithic baseline, and the in-memory model.

    Sequential execution makes every read's legal result unique (the
    last written value), so all three implementations must agree
    *exactly* — any divergence is a bug in one of them.  Returns the
    two recorded result sequences and the mismatch list (empty = agree).
    """
    rng = random.Random(seed)
    trace: list[tuple[str, int, bytes | None]] = []
    counter = 0
    for __ in range(ops):
        key = rng.randrange(key_space)
        roll = rng.random()
        if roll < 0.5:
            counter += 1
            trace.append(("write", key, b"d%d-%d" % (seed, counter)))
        elif roll < 0.6:
            trace.append(("delete", key, None))
        else:
            trace.append(("read", key, None))

    if read_cache_capacity is not None:
        config = replace(config, read_cache_capacity=read_cache_capacity)
    if compaction_policy is not None:
        config = replace(config, compaction_policy=compaction_policy)

    def run_deployment(spec: ClusterSpec) -> list[bytes | None]:
        cluster = build_cluster(spec)
        client = cluster.add_client(
            colocate_with="mono-0" if spec.monolithic else "ingestor-0"
        )
        results: list[bytes | None] = []

        def driver():
            for kind, key, value in trace:
                if kind == "write":
                    yield from client.upsert(key, value)
                elif kind == "delete":
                    yield from client.delete(key)
                else:
                    results.append((yield from client.read(key)))

        cluster.run_process(driver())
        cluster.run()
        return results

    cluster_results = run_deployment(
        ClusterSpec(config=config, num_ingestors=1, num_compactors=2, seed=seed)
    )
    mono_results = run_deployment(ClusterSpec(config=config, monolithic=True, seed=seed))

    model = SequentialModel()
    model_results: list[bytes | None] = []
    for kind, key, value in trace:
        if kind == "write":
            model.write(key, value)
        elif kind == "delete":
            model.delete(key)
        else:
            model_results.append(model.read(key))

    mismatches: list[str] = []
    for index, (expect, got_cluster, got_mono) in enumerate(
        zip(model_results, cluster_results, mono_results)
    ):
        if got_cluster != expect:
            mismatches.append(
                f"read #{index}: cluster returned {got_cluster!r}, model says {expect!r}"
            )
        if got_mono != expect:
            mismatches.append(
                f"read #{index}: monolith returned {got_mono!r}, model says {expect!r}"
            )
    return {
        "trace_ops": len(trace),
        "reads": len(model_results),
        "cluster": cluster_results,
        "monolith": mono_results,
        "model": model_results,
        "mismatches": mismatches,
    }


# ----------------------------------------------------------------------
# Injectable protocol bugs (harness self-validation)
# ----------------------------------------------------------------------
#: name -> description of the deliberately broken invariant.
BUGS: dict[str, str] = {
    "trust-phase1": (
        "disable the two-phase read's ts_h/ts_c freshness comparison: the "
        "client trusts any phase-1 result and skips phase 2, so a newer "
        "version already forwarded to the Compactors is missed"
    ),
}


@contextmanager
def inject_bug(name: str | None):
    """Context manager that applies (and always reverts) a named bug."""
    if name is None:
        yield
        return
    if name not in BUGS:
        raise ValueError(f"unknown bug {name!r}; known: {', '.join(sorted(BUGS))}")
    import repro.core.client as client_module

    original = client_module.definitely_after
    client_module.definitely_after = lambda late, early, delta: True
    try:
        yield
    finally:
        client_module.definitely_after = original


# ----------------------------------------------------------------------
# The explorer: a seeded corpus of schedules
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ScheduleSummary:
    """One line of the exploration report."""

    index: int
    seed: int
    shape: str
    guarantee: str
    ops: int
    faults: int
    violations: int
    fingerprint: str


@dataclass(slots=True)
class ExplorationReport:
    """Deterministic, renderable outcome of one exploration run."""

    seed: int
    counters: ExplorationCounters
    summaries: list[ScheduleSummary]
    failing_seeds: list[int]

    @property
    def ok(self) -> bool:
        return not self.failing_seeds

    def render(self) -> str:
        """Byte-deterministic text report (no wall-clock anywhere)."""
        lines = [
            "# CooLSM verify report",
            f"seed: {self.seed}",
            f"status: {'PASS' if self.ok else 'FAIL'}",
        ]
        for name, value in sorted(self.counters.as_dict().items()):
            lines.append(f"{name}: {value}")
        if self.failing_seeds:
            lines.append("failing seeds: " + ", ".join(str(s) for s in self.failing_seeds))
        lines.append("")
        lines.append("index  seed        shape           guarantee        ops  faults  bad  fingerprint")
        for s in self.summaries:
            lines.append(
                f"{s.index:5d}  {s.seed:<10d}  {s.shape:<14s}  {s.guarantee:<15s}"
                f"  {s.ops:3d}  {s.faults:6d}  {s.violations:3d}  {s.fingerprint}"
            )
        return "\n".join(lines) + "\n"


#: Spacing between derived sub-seeds (any large odd constant works; the
#: value only needs to be stable forever for replayability).
SEED_STRIDE = 100_003


class Explorer:
    """Run a corpus of schedules derived from one root seed."""

    def __init__(
        self,
        seed: int,
        ops_per_schedule: int = 40,
        faults_per_schedule: int = 2,
        shapes: tuple[ShapeSpec, ...] = SHAPES,
        config: CooLSMConfig = VERIFY_CONFIG,
        on_outcome: Callable[[ScheduleOutcome], None] | None = None,
    ) -> None:
        self.seed = seed
        self.ops_per_schedule = ops_per_schedule
        self.faults_per_schedule = faults_per_schedule
        self.shapes = shapes
        self.config = config
        self.on_outcome = on_outcome

    def sub_seed(self, index: int) -> int:
        return self.seed * SEED_STRIDE + index

    def schedule_for(self, index: int) -> ScheduleSpec:
        return generate_schedule(
            self.sub_seed(index),
            ops=self.ops_per_schedule,
            faults=self.faults_per_schedule,
            shapes=self.shapes,
        )

    def explore(self, schedules: int) -> ExplorationReport:
        counters = ExplorationCounters()
        summaries: list[ScheduleSummary] = []
        failing: list[int] = []
        for index in range(schedules):
            spec = self.schedule_for(index)
            outcome = run_schedule(spec, self.config)
            counters.merge(outcome.counters)
            summaries.append(
                ScheduleSummary(
                    index=index,
                    seed=spec.seed,
                    shape=spec.shape.label,
                    guarantee=spec.shape.guarantee,
                    ops=len(spec.ops),
                    faults=len(spec.faults),
                    violations=len(outcome.violations),
                    fingerprint=outcome.fingerprint(),
                )
            )
            if outcome.violations:
                failing.append(spec.seed)
            if self.on_outcome is not None:
                self.on_outcome(outcome)
        return ExplorationReport(self.seed, counters, summaries, failing)
