"""Deterministic model checking for the Table I guarantees.

This package turns the consistency checkers of
:mod:`repro.core.consistency` into a *search* tool over the simulated
cluster:

* :mod:`repro.verify.model` — a sequential reference model (an
  in-memory oracle keyed map with loose-timestamp semantics) that
  replays a recorded :class:`~repro.core.history.History` and predicts
  the set of legal results for every read, cross-checked against both
  the CooLSM cluster and the monolithic baseline on identical traces;
* :mod:`repro.verify.explorer` — seeded random search over operation
  interleavings × nemesis fault schedules × cluster shapes, running
  the matrix-appropriate checker on every generated history, with
  replay-exact seeds;
* :mod:`repro.verify.shrink` — delta debugging that minimises a
  failing (ops, faults) schedule to a locally-minimal counterexample
  and pretty-prints it as a step-by-step timeline.

Entry point: ``python -m repro.cli verify --seed S``.
"""

from .explorer import (
    BUGS,
    LIVE_SHAPES,
    POLICY_SHAPES,
    SCAN_SHAPES,
    SHAPES,
    VERIFY_CONFIG,
    ExplorationReport,
    Explorer,
    PlannedOp,
    ScheduleOutcome,
    ScheduleSpec,
    ShapeSpec,
    differential_run,
    generate_schedule,
    inject_bug,
    run_schedule,
)
from .model import (
    ModelMismatch,
    ModelReport,
    SequentialModel,
    check_backup_reads,
    check_history_loose_ts,
    check_history_realtime,
)
from .shrink import ShrinkResult, ddmin, render_timeline, shrink_schedule

__all__ = [
    "BUGS",
    "ExplorationReport",
    "LIVE_SHAPES",
    "Explorer",
    "ModelMismatch",
    "ModelReport",
    "POLICY_SHAPES",
    "PlannedOp",
    "SCAN_SHAPES",
    "SHAPES",
    "ScheduleOutcome",
    "ScheduleSpec",
    "SequentialModel",
    "ShapeSpec",
    "ShrinkResult",
    "VERIFY_CONFIG",
    "check_backup_reads",
    "check_history_loose_ts",
    "check_history_realtime",
    "ddmin",
    "differential_run",
    "generate_schedule",
    "inject_bug",
    "render_timeline",
    "run_schedule",
    "shrink_schedule",
]
