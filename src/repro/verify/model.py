"""The sequential reference model: an independent oracle for reads.

The checkers in :mod:`repro.core.consistency` decide whether a whole
history admits a legal ordering.  This module attacks the same question
from the other side: replay the recorded operations against a trivial
in-memory keyed map and predict, *per read*, the set of values that
ordering rules allow — then flag any read outside its set.  Because the
two implementations share no code, a bug in either one surfaces as a
disagreement (differential checking).

Two ordering semantics are modelled, matching Table I's rows:

:func:`check_history_realtime`
    Real-time (single-Ingestor) semantics: a read may return a value
    ``v`` written by ``w`` only if ``w`` began before the read ended
    and no other write both started after ``w`` returned and returned
    before the read started (which would overwrite ``v`` in every
    linearisation).  ``None`` is legal only while no write has
    completed before the read began.

:func:`check_history_loose_ts`
    Loose-timestamp (multi-Ingestor, Definition 1) semantics: the same
    shape of rule, but intervals are replaced by the 2δ ordering
    predicate on loose clock stamps — two operations are ordered only
    when their stamps differ by at least 2δ, everything closer is
    concurrent and either outcome is legal.

Both are *necessary* conditions: a history that satisfies the paper's
guarantee always passes, so any mismatch is a true violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.history import History, Operation


@dataclass(frozen=True, slots=True)
class ModelMismatch:
    """One read whose observed value lies outside the model's legal set."""

    rule: str
    detail: str
    op_id: int


@dataclass(slots=True)
class ModelReport:
    """Outcome of cross-checking a history against the reference model."""

    semantics: str
    mismatches: list[ModelMismatch] = field(default_factory=list)
    reads_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def add(self, rule: str, detail: str, op: Operation) -> None:
        self.mismatches.append(ModelMismatch(rule, detail, op.op_id))


# ----------------------------------------------------------------------
# Real-time semantics (single Ingestor: linearizable reads)
# ----------------------------------------------------------------------
def check_history_realtime(history: History) -> ModelReport:
    """Predict each read's legal value set under real-time ordering."""
    report = ModelReport("realtime")
    for key in sorted(history.keys()):
        ops = history.for_key(key).operations
        writes = [o for o in ops if o.is_write]
        for read in ops:
            if not read.is_read:
                continue
            report.reads_checked += 1
            legal: set[bytes | None] = set()
            if not any(w.returned_at < read.invoked_at for w in writes):
                legal.add(None)
            for w in writes:
                if w.invoked_at > read.returned_at:
                    continue  # the write began after the read ended
                obscured = any(
                    other.invoked_at > w.returned_at
                    and other.returned_at < read.invoked_at
                    for other in writes
                    if other.op_id != w.op_id
                )
                if not obscured:
                    legal.add(w.value)
            if read.value not in legal:
                report.add(
                    "illegal-read",
                    f"read of {key!r} returned {read.value!r}; "
                    f"model allows {_render_set(legal)}",
                    read,
                )
    return report


# ----------------------------------------------------------------------
# Loose-timestamp semantics (multiple Ingestors: Definition 1)
# ----------------------------------------------------------------------
def check_history_loose_ts(history: History, delta: float) -> ModelReport:
    """Predict each read's legal value set under the 2δ ordering rule.

    With ts(x) the loose stamp of operation x, a write ``w`` is a legal
    result for read ``r`` unless ``w`` is definitely after ``r``
    (``ts(w) - ts(r) >= 2δ``) or some other write is definitely after
    ``w`` and definitely before ``r``.  ``None`` is legal only while no
    write is definitely before the read.
    """
    report = ModelReport("loose-ts")
    two_delta = 2.0 * delta
    for key in sorted(history.keys()):
        ops = history.for_key(key).operations
        writes = [o for o in ops if o.is_write]
        for read in ops:
            if not read.is_read:
                continue
            report.reads_checked += 1
            legal: set[bytes | None] = set()
            if not any(read.timestamp - w.timestamp >= two_delta for w in writes):
                legal.add(None)
            for w in writes:
                if w.timestamp - read.timestamp >= two_delta:
                    continue  # definitely after the read
                obscured = any(
                    other.timestamp - w.timestamp >= two_delta
                    and read.timestamp - other.timestamp >= two_delta
                    for other in writes
                    if other.op_id != w.op_id
                )
                if not obscured:
                    legal.add(w.value)
            if read.value not in legal:
                report.add(
                    "illegal-read",
                    f"read of {key!r} at ts {read.timestamp:.6f} returned "
                    f"{read.value!r}; model allows {_render_set(legal)}",
                    read,
                )
    return report


# ----------------------------------------------------------------------
# Backup (Reader) semantics: no values from the future, none invented
# ----------------------------------------------------------------------
def check_backup_reads(history: History, backup_reads: History) -> ModelReport:
    """Backup reads serve a lagging snapshot, so staleness is legal —
    but a Reader must never invent a value or serve one whose write had
    not even *started* when the read returned."""
    report = ModelReport("backup")
    writes_by_key: dict[bytes, dict[bytes | None, Operation]] = {}
    for w in history.writes():
        writes_by_key.setdefault(w.key, {})[w.value] = w
    for read in backup_reads.reads():
        report.reads_checked += 1
        if read.value is None:
            continue
        writer = writes_by_key.get(read.key, {}).get(read.value)
        if writer is None:
            report.add(
                "phantom-value",
                f"backup served {read.value!r} for {read.key!r}, "
                "which no write produced",
                read,
            )
        elif writer.invoked_at > read.returned_at:
            report.add(
                "future-value",
                f"backup served {read.value!r} for {read.key!r} before "
                "its write was invoked",
                read,
            )
    return report


def _render_set(values: set[bytes | None]) -> str:
    return "{" + ", ".join(repr(v) for v in sorted(values, key=lambda v: (v is not None, v))) + "}"


# ----------------------------------------------------------------------
# Sequential replay (for differential traces)
# ----------------------------------------------------------------------
class SequentialModel:
    """A plain keyed map replayed one operation at a time.

    On a strictly sequential trace (each operation awaited before the
    next is issued) every read has exactly one legal result — the last
    written value — so the model's prediction can be compared for
    equality against both the CooLSM cluster and the monolithic
    baseline running the identical trace.
    """

    def __init__(self) -> None:
        self._state: dict[object, bytes | None] = {}
        self.applied = 0

    def write(self, key, value: bytes) -> None:
        self._state[key] = value
        self.applied += 1

    def delete(self, key) -> None:
        self._state[key] = None
        self.applied += 1

    def read(self, key) -> bytes | None:
        return self._state.get(key)

    def state(self) -> dict[object, bytes | None]:
        """The full final keyed map (a copy)."""
        return dict(self._state)
