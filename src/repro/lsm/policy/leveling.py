"""The paper's hybrid policy: tiering at L0/L1, leveling above.

This is the default and reproduces the pre-policy hard-wired behaviour
exactly — same merges, same victim selection, same rotating pointers —
so the seed-0 verify corpus is unchanged by the refactor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

from ..compaction import (
    major_compaction,
    minor_compaction,
    select_overflow_rotating,
)
from ..manifest import LevelEdit
from .base import CompactionPolicy, register_policy

if TYPE_CHECKING:  # pragma: no cover
    from ..sstable import SSTable
    from ..tree import LSMTree


@register_policy
class LevelingPolicy(CompactionPolicy):
    """Tiering minor compaction into L1, leveled merges for L2+."""

    name: ClassVar[str] = "leveling"
    merges_on_absorb: ClassVar[bool] = True
    l2_is_bottom: ClassVar[bool] = False
    overflow_enabled: ClassVar[bool] = True
    merges_on_overflow: ClassVar[bool] = True

    def tree_overlapping(self, num_levels: int) -> frozenset[int]:
        return frozenset({0})

    def ingestor_overlapping(self) -> frozenset[int]:
        return frozenset({0})

    def compactor_overlapping(self) -> frozenset[int]:
        return frozenset()

    def compact_tree(self, tree: "LSMTree") -> None:
        config = tree.config
        manifest = tree.manifest
        # Minor compaction: tiering of L0 + L1 into a fresh L1 run.
        if len(manifest.level(0)) > config.level_thresholds[0]:
            l0 = list(reversed(manifest.level(0)))  # newest first
            l1 = manifest.level(1)
            result = minor_compaction(
                l0, l1, config.sstable_entries, tree._effective_keep_policy()
            )
            edit = LevelEdit().remove(0, l0).remove(1, list(l1)).add(1, result.tables)
            manifest.apply(edit)
            tree._record_compaction(1, result.stats)
        # Major compactions: leveling, cascading down while over threshold.
        for level in range(1, config.num_levels - 1):
            threshold = config.level_thresholds[level]
            tables = manifest.level(level)
            if threshold == 0 or len(tables) <= threshold:
                continue
            kept, overflow, tree._compaction_pointers[level] = select_overflow_rotating(
                tables, threshold, tree._compaction_pointers[level]
            )
            is_bottom_target = level + 1 == config.num_levels - 1
            policy = tree._effective_keep_policy(bottom=is_bottom_target)
            result, untouched = major_compaction(
                overflow,
                manifest.level(level + 1),
                config.sstable_entries,
                policy,
            )
            removed_next = [
                t for t in manifest.level(level + 1)
                if t not in untouched
            ]
            edit = (
                LevelEdit()
                .remove(level, overflow)
                .remove(level + 1, removed_next)
                .add(level + 1, result.tables)
            )
            manifest.apply(edit)
            tree._record_compaction(level + 1, result.stats)

    def minor_plan(
        self, l0_newest_first: list["SSTable"], l1_tables: list["SSTable"]
    ) -> tuple[list["SSTable"], list["SSTable"]]:
        # Tiering: everything in both levels merges into a fresh L1 run.
        return list(l0_newest_first) + list(l1_tables), list(l1_tables)

    def select_forward(
        self,
        l1_tables: list["SSTable"],
        threshold: int,
        pointer: bytes | None,
    ) -> tuple[list["SSTable"], bytes | None]:
        _kept, overflow, new_pointer = select_overflow_rotating(
            list(l1_tables), threshold, pointer
        )
        return overflow, new_pointer

    def select_l2_overflow(
        self,
        l2_tables: list["SSTable"],
        threshold: int,
        pointer: bytes | None,
    ) -> tuple[list["SSTable"], bytes | None]:
        _kept, overflow, new_pointer = select_overflow_rotating(
            list(l2_tables), threshold, pointer
        )
        return overflow, new_pointer
