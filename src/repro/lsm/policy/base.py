"""The :class:`CompactionPolicy` strategy interface and registry.

A policy answers the three design-space questions for every host that
runs compactions:

* the standalone :class:`~repro.lsm.tree.LSMTree` (the full cascade,
  :meth:`CompactionPolicy.compact_tree`);
* the Ingestor's L0/L1 minor-compaction path
  (:meth:`CompactionPolicy.minor_plan`,
  :meth:`CompactionPolicy.select_forward`);
* the Compactor's L2/L3 major-compaction path (the ``merges_on_*`` /
  ``overflow_*`` knobs and :meth:`CompactionPolicy.select_l2_overflow`).

Every method is a pure function of the tables it is handed: no kernel
effects, no randomness, no clock.  The hosts keep ownership of all
yields and compute-cost accounting, which is what keeps the default
policy byte-identical to the pre-policy code under the deterministic
simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, ClassVar

from ..errors import InvalidConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..sstable import SSTable
    from ..tree import LSMTree


class CompactionPolicy(ABC):
    """Trigger + victim selection + data movement for one policy.

    Class attributes describe the *shape* of the policy (which levels
    may hold overlapping runs, whether the Compactor merges or stacks);
    methods make the per-compaction decisions.
    """

    #: Canonical policy name, persisted in store manifests.
    name: ClassVar[str]

    #: Compactor absorbs forwarded tables by leveled merge into L2
    #: (True) or packs them into a fresh run stacked on L2 (False).
    merges_on_absorb: ClassVar[bool]

    #: L2 is the tree's bottom level: tombstones may be dropped when
    #: absorbing (only OneLeveling, which never populates L3).
    l2_is_bottom: ClassVar[bool]

    #: Whether L2 ever overflows into L3 at all.
    overflow_enabled: ClassVar[bool]

    #: L2 overflow merges into L3 as a leveled run (True) or is packed
    #: into a fresh run stacked on L3 (False).
    merges_on_overflow: ClassVar[bool]

    # ------------------------------------------------------------------
    # Structure: which levels may hold overlapping runs
    # ------------------------------------------------------------------
    @abstractmethod
    def tree_overlapping(self, num_levels: int) -> frozenset[int]:
        """Overlapping level set for a standalone tree's manifest."""

    @abstractmethod
    def ingestor_overlapping(self) -> frozenset[int]:
        """Overlapping level set over the Ingestor's local {L0, L1}."""

    @abstractmethod
    def compactor_overlapping(self) -> frozenset[int]:
        """Overlapping level set over the Compactor's local {L2, L3}
        (local indices 0 and 1)."""

    # ------------------------------------------------------------------
    # Standalone tree
    # ------------------------------------------------------------------
    @abstractmethod
    def compact_tree(self, tree: "LSMTree") -> None:
        """Run the policy's full compaction cascade on ``tree`` after a
        flush.  Implementations use the tree's manifest/keep-policy
        helpers and report via ``tree._record_compaction``."""

    # ------------------------------------------------------------------
    # Ingestor (L0 / L1)
    # ------------------------------------------------------------------
    @abstractmethod
    def minor_plan(
        self, l0_newest_first: list["SSTable"], l1_tables: list["SSTable"]
    ) -> tuple[list["SSTable"], list["SSTable"]]:
        """Plan a minor compaction: ``(merge_sources, replaced_l1)``.

        ``merge_sources`` (newest first) feed one k-way merge whose
        output lands in L1; ``replaced_l1`` are the L1 tables the output
        replaces (empty means the output stacks as a new run).
        """

    @abstractmethod
    def select_forward(
        self,
        l1_tables: list["SSTable"],
        threshold: int,
        pointer: bytes | None,
    ) -> tuple[list["SSTable"], bytes | None]:
        """Pick the L1 tables to forward downstream when L1 exceeds
        ``threshold``.  Returns ``(overflow, new_pointer)``."""

    # ------------------------------------------------------------------
    # Compactor (L2 / L3)
    # ------------------------------------------------------------------
    @abstractmethod
    def select_l2_overflow(
        self,
        l2_tables: list["SSTable"],
        threshold: int,
        pointer: bytes | None,
    ) -> tuple[list["SSTable"], bytes | None]:
        """Pick the L2 tables that overflow into L3.  Returns
        ``(overflow, new_pointer)``."""


_REGISTRY: dict[str, type[CompactionPolicy]] = {}

#: Accepted spellings -> canonical name.
_ALIASES = {
    "lazy-leveling": "lazy_leveling",
    "lazyleveling": "lazy_leveling",
    "one-leveling": "one_leveling",
    "oneleveling": "one_leveling",
    "1-leveling": "one_leveling",
    "1leveling": "one_leveling",
}


def register_policy(cls: type[CompactionPolicy]) -> type[CompactionPolicy]:
    """Class decorator adding a policy to the registry by its name."""
    _REGISTRY[cls.name] = cls
    return cls


def normalize_policy_name(name: str) -> str:
    """Canonical spelling of ``name`` (raises on unknown policies)."""
    key = name.strip().lower().replace(" ", "_")
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise InvalidConfigError(f"unknown compaction policy {name!r} (known: {known})")
    return key


def make_policy(name: str) -> CompactionPolicy:
    """Instantiate the policy registered under ``name`` (any alias)."""
    return _REGISTRY[normalize_policy_name(name)]()


def _policy_names() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


# Filled in by the concrete modules importing register_policy; the
# tuple below is rebuilt in __init__ import order, so keep it lazy.
class _PolicyNames:
    """Lazy view of the registered canonical names (import-order safe)."""

    def __iter__(self):
        return iter(_policy_names())

    def __contains__(self, item: object) -> bool:
        return item in _REGISTRY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(_policy_names())


POLICY_NAMES = _PolicyNames()
