"""1-leveling: the whole tree is a single leveled run.

Every minor compaction merges L0 straight into one disjoint sorted run
(L1 on a standalone tree, L2 at the Compactor); no deeper level is ever
populated.  Point reads and scans touch at most one table below L0 and
space amplification is minimal, at the cost of rewriting the whole run
proportionally to ingest — the read-optimised extreme of the design
space.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

from ..compaction import major_compaction, select_overflow_rotating
from ..manifest import LevelEdit
from .base import CompactionPolicy, register_policy

if TYPE_CHECKING:  # pragma: no cover
    from ..sstable import SSTable
    from ..tree import LSMTree


@register_policy
class OneLevelingPolicy(CompactionPolicy):
    """Single leveled level below L0; L2 is the distributed bottom."""

    name: ClassVar[str] = "one_leveling"
    merges_on_absorb: ClassVar[bool] = True
    l2_is_bottom: ClassVar[bool] = True
    overflow_enabled: ClassVar[bool] = False
    merges_on_overflow: ClassVar[bool] = True

    def tree_overlapping(self, num_levels: int) -> frozenset[int]:
        return frozenset({0})

    def ingestor_overlapping(self) -> frozenset[int]:
        return frozenset({0})

    def compactor_overlapping(self) -> frozenset[int]:
        return frozenset()

    def compact_tree(self, tree: "LSMTree") -> None:
        config = tree.config
        if len(tree.manifest.level(0)) <= config.level_thresholds[0]:
            return
        l0 = list(reversed(tree.manifest.level(0)))  # newest first
        # L1 is the bottom: leveled merge, tombstones dropped.
        result, untouched = major_compaction(
            l0,
            tree.manifest.level(1),
            config.sstable_entries,
            tree._effective_keep_policy(bottom=True),
        )
        removed_next = [t for t in tree.manifest.level(1) if t not in untouched]
        edit = (
            LevelEdit()
            .remove(0, l0)
            .remove(1, removed_next)
            .add(1, result.tables)
        )
        tree.manifest.apply(edit)
        tree._record_compaction(1, result.stats)

    def minor_plan(
        self, l0_newest_first: list["SSTable"], l1_tables: list["SSTable"]
    ) -> tuple[list["SSTable"], list["SSTable"]]:
        # Same movement as leveling's minor compaction: L0 + L1 fold
        # into a fresh leveled L1 run.
        return list(l0_newest_first) + list(l1_tables), list(l1_tables)

    def select_forward(
        self,
        l1_tables: list["SSTable"],
        threshold: int,
        pointer: bytes | None,
    ) -> tuple[list["SSTable"], bytes | None]:
        _kept, overflow, new_pointer = select_overflow_rotating(
            list(l1_tables), threshold, pointer
        )
        return overflow, new_pointer

    def select_l2_overflow(
        self,
        l2_tables: list["SSTable"],
        threshold: int,
        pointer: bytes | None,
    ) -> tuple[list["SSTable"], bytes | None]:
        # L2 never overflows: it is the bottom level.
        return [], pointer
