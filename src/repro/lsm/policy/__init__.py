"""Pluggable compaction policies over the LSM design space.

The paper hard-wires one point in the compaction design space: tiering
between L0 and L1 (minor compaction) and leveling above (major
compaction).  Sarkar et al.'s "Constructing and Analyzing the LSM
Compaction Design Space" decomposes a policy into *trigger* (when to
compact), *granularity* (what to pick), and *data movement* (how the
picked tables merge into the target level); this package makes those
three decisions a strategy object consulted by the standalone
:class:`~repro.lsm.tree.LSMTree`, the Ingestor's minor-compaction path,
and the Compactor's major-compaction path.

Policies are *pure deciders*: they never yield kernel effects, consume
randomness, or touch the clock, so the default (``leveling``, the
paper's hybrid) is byte-identical to the historical hard-wired
behaviour under the deterministic simulator.
"""

from .base import (
    CompactionPolicy,
    POLICY_NAMES,
    make_policy,
    normalize_policy_name,
)
from .leveling import LevelingPolicy
from .one_level import OneLevelingPolicy
from .tiering import LazyLevelingPolicy, TieringPolicy

__all__ = [
    "CompactionPolicy",
    "LevelingPolicy",
    "TieringPolicy",
    "LazyLevelingPolicy",
    "OneLevelingPolicy",
    "POLICY_NAMES",
    "make_policy",
    "normalize_policy_name",
]
