"""Tiering and lazy-leveling policies.

*Tiering* stacks sorted runs at every level: a compaction merges all
runs of a full level into one new run appended to the level below, so
each entry is rewritten once per level (write-optimised, read- and
space-amplified).  *Lazy leveling* (Dostoevsky) tiers every level
except the last, which stays a single leveled run — it keeps tiering's
write cost on the upper levels while bounding space and point-read
cost at the bottom where most data lives.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

from ..compaction import major_compaction, merge_tables
from ..manifest import LevelEdit
from .base import CompactionPolicy, register_policy

if TYPE_CHECKING:  # pragma: no cover
    from ..sstable import SSTable
    from ..tree import LSMTree


def _stack_oldest(
    tables: list["SSTable"], threshold: int, pointer: bytes | None
) -> tuple[list["SSTable"], bytes | None]:
    """Overflow selection for a stacked (run-per-flush) level: take the
    oldest runs first — they are the fullest and the least likely to be
    superseded — which is the level's list-prefix since runs append."""
    excess = len(tables) - threshold
    if excess <= 0:
        return [], pointer
    return list(tables)[:excess], pointer


@register_policy
class TieringPolicy(CompactionPolicy):
    """Pure tiering: overlapping runs at every level, merge-whole-level
    moves, no leveled merges anywhere (tombstones are never dropped,
    since no merge ever covers the whole bottom level)."""

    name: ClassVar[str] = "tiering"
    merges_on_absorb: ClassVar[bool] = False
    l2_is_bottom: ClassVar[bool] = False
    overflow_enabled: ClassVar[bool] = True
    merges_on_overflow: ClassVar[bool] = False

    def tree_overlapping(self, num_levels: int) -> frozenset[int]:
        return frozenset(range(num_levels))

    def ingestor_overlapping(self) -> frozenset[int]:
        return frozenset({0, 1})

    def compactor_overlapping(self) -> frozenset[int]:
        return frozenset({0, 1})

    def _tier_level_down(self, tree: "LSMTree", level: int) -> None:
        """Merge every run of ``level`` into one new run stacked on
        ``level + 1``."""
        config = tree.config
        tables = list(tree.manifest.level(level))
        result = merge_tables(
            list(reversed(tables)),  # newest run first
            config.sstable_entries,
            tree._effective_keep_policy(),
        )
        edit = LevelEdit().remove(level, tables).add(level + 1, result.tables)
        tree.manifest.apply(edit)
        tree._record_compaction(level + 1, result.stats)

    def compact_tree(self, tree: "LSMTree") -> None:
        config = tree.config
        for level in range(config.num_levels - 1):
            threshold = config.level_thresholds[level]
            if threshold == 0 or len(tree.manifest.level(level)) <= threshold:
                continue
            self._tier_level_down(tree, level)

    def minor_plan(
        self, l0_newest_first: list["SSTable"], l1_tables: list["SSTable"]
    ) -> tuple[list["SSTable"], list["SSTable"]]:
        # Only L0 merges; the output stacks on L1 as a new run.
        return list(l0_newest_first), []

    def select_forward(
        self,
        l1_tables: list["SSTable"],
        threshold: int,
        pointer: bytes | None,
    ) -> tuple[list["SSTable"], bytes | None]:
        return _stack_oldest(list(l1_tables), threshold, pointer)

    def select_l2_overflow(
        self,
        l2_tables: list["SSTable"],
        threshold: int,
        pointer: bytes | None,
    ) -> tuple[list["SSTable"], bytes | None]:
        # Merge-whole-level: every L2 run moves down together.
        return list(l2_tables), pointer


@register_policy
class LazyLevelingPolicy(TieringPolicy):
    """Tiering on every level except the last, which is leveled: the
    bottom merge is a classic major compaction (and, being the bottom,
    may drop tombstones)."""

    name: ClassVar[str] = "lazy_leveling"
    merges_on_absorb: ClassVar[bool] = False
    l2_is_bottom: ClassVar[bool] = False
    overflow_enabled: ClassVar[bool] = True
    merges_on_overflow: ClassVar[bool] = True

    def tree_overlapping(self, num_levels: int) -> frozenset[int]:
        return frozenset(range(num_levels - 1))

    def compactor_overlapping(self) -> frozenset[int]:
        return frozenset({0})  # L2 stacked, L3 leveled

    def compact_tree(self, tree: "LSMTree") -> None:
        config = tree.config
        bottom = config.num_levels - 1
        for level in range(config.num_levels - 1):
            threshold = config.level_thresholds[level]
            tables = list(tree.manifest.level(level))
            if threshold == 0 or len(tables) <= threshold:
                continue
            if level + 1 < bottom:
                self._tier_level_down(tree, level)
                continue
            # Leveled merge of the penultimate level into the bottom run.
            result, untouched = major_compaction(
                list(reversed(tables)),
                tree.manifest.level(bottom),
                config.sstable_entries,
                tree._effective_keep_policy(bottom=True),
            )
            removed_next = [
                t for t in tree.manifest.level(bottom) if t not in untouched
            ]
            edit = (
                LevelEdit()
                .remove(level, tables)
                .remove(bottom, removed_next)
                .add(bottom, result.tables)
            )
            tree.manifest.apply(edit)
            tree._record_compaction(bottom, result.stats)
