"""Key-value entries: the unit of data stored by every LSM level.

An :class:`Entry` is an immutable record of a single upsert or delete.
Two pieces of versioning metadata are carried on every entry:

``seqno``
    A monotonically increasing sequence number assigned by the node that
    accepted the write.  Within one node, a larger ``seqno`` always means
    a more recent write.

``timestamp``
    A loosely-synchronised wall-clock timestamp (see
    :mod:`repro.core.timesync`).  Across nodes, timestamps order events
    only when they differ by at least ``2 * delta``; CooLSM's
    Linearizable+Concurrent mode relies on this field.

Ordering of versions of the *same* key is ``(timestamp, seqno)``
lexicographically, newest first.  For single-ingestor deployments the
timestamp of every entry comes from a single clock, so this reduces to
plain seqno order, matching a classic LSM tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import InvalidKeyError

#: Sentinel timestamp for entries that were never timestamped (single
#: ingestor deployments stamp entries with their local clock anyway, so
#: this only shows up in unit tests that build entries by hand).
NO_TIMESTAMP = 0.0


@dataclass(frozen=True, slots=True)
class Entry:
    """A single versioned key-value record.

    Attributes:
        key: The user key.  Keys are arbitrary byte strings; helper
            constructors accept ``str`` and ``int`` and encode them in an
            order-preserving way.
        seqno: Per-node monotone sequence number.
        timestamp: Loose-clock timestamp (seconds, float).
        value: The payload, or ``b""`` for tombstones.
        tombstone: True if this entry marks a deletion.
    """

    key: bytes
    seqno: int
    timestamp: float
    value: bytes
    tombstone: bool = False

    def is_newer_than(self, other: "Entry") -> bool:
        """Return True if this version supersedes ``other`` for the same key."""
        if self.key != other.key:
            raise ValueError("is_newer_than compares versions of one key")
        return (self.timestamp, self.seqno) > (other.timestamp, other.seqno)

    @property
    def version(self) -> tuple[float, int]:
        """The (timestamp, seqno) version tuple used for newest-wins merges."""
        return (self.timestamp, self.seqno)


def encode_key(key: bytes | str | int) -> bytes:
    """Normalise a user key to bytes, preserving order within each type.

    Integers are encoded as zero-padded 20-digit decimal strings so that
    byte order matches numeric order for non-negative keys — the paper's
    workloads use dense integer keys in [0, 100K) and [0, 300K).
    """
    if isinstance(key, bytes):
        encoded = key
    elif isinstance(key, str):
        encoded = key.encode("utf-8")
    elif isinstance(key, int):
        if key < 0:
            raise InvalidKeyError("integer keys must be non-negative")
        encoded = b"%020d" % key
    else:
        raise InvalidKeyError(f"unsupported key type: {type(key).__name__}")
    if not encoded:
        raise InvalidKeyError("keys must be non-empty")
    return encoded


def encode_value(value: bytes | str) -> bytes:
    """Normalise a user value to bytes."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    raise InvalidKeyError(f"unsupported value type: {type(value).__name__}")


def make_upsert(
    key: bytes | str | int,
    value: bytes | str,
    seqno: int,
    timestamp: float = NO_TIMESTAMP,
) -> Entry:
    """Build an upsert entry from user-facing types."""
    return Entry(encode_key(key), seqno, timestamp, encode_value(value))


def make_tombstone(
    key: bytes | str | int,
    seqno: int,
    timestamp: float = NO_TIMESTAMP,
) -> Entry:
    """Build a delete (tombstone) entry from user-facing types."""
    return Entry(encode_key(key), seqno, timestamp, b"", tombstone=True)
