"""Write/read/space amplification accounting.

The trade-offs the paper's Related Work section describes — "size-tiered
compaction ... suffers from space amplification", "leveled compaction
... suffers from high write amplification" — made measurable:

* **write amplification** — bytes (here: entries) physically written per
  user entry ingested: flushes plus every compaction rewrite.
* **space amplification** — entries physically stored per live key
  (obsolete versions and tombstones are the overhead).
* **read amplification** — sstables a point lookup may touch.

Works over both the leveled :class:`~repro.lsm.tree.LSMTree` and the
universal :class:`~repro.baselines.tiered.TieredTree`, and over CooLSM
deployments (aggregate across Ingestors and Compactors).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class AmplificationReport:
    """The three amplification factors of one engine or deployment."""

    user_entries: int
    entries_flushed: int
    entries_rewritten: int  # compaction output entries
    entries_stored: int
    live_keys: int
    max_tables_probed: int

    @property
    def write_amplification(self) -> float:
        """(flushed + rewritten) / ingested — 1.0 means write-once."""
        if self.user_entries == 0:
            return 0.0
        return (self.entries_flushed + self.entries_rewritten) / self.user_entries

    @property
    def space_amplification(self) -> float:
        """stored / live — 1.0 means no obsolete versions retained."""
        if self.live_keys == 0:
            return 0.0
        return self.entries_stored / self.live_keys

    @property
    def read_amplification(self) -> int:
        """Upper bound on sstables probed by a point lookup."""
        return self.max_tables_probed


def measure_lsm_tree(tree) -> AmplificationReport:
    """Amplification of a (leveled) :class:`~repro.lsm.tree.LSMTree`."""
    stats = tree.stats
    entries_flushed = stats.flushes * tree.config.memtable_entries
    entries_rewritten = sum(e.stats.entries_out for e in stats.compactions)
    entries_stored = tree.manifest.total_entries()
    live_keys = sum(1 for __ in tree.scan())
    # Worst case probes: every table of an overlapping level, one per
    # disjoint level.  For the default leveling policy (only L0
    # overlapping) this is the classic len(L0) + depth.
    overlapping = tree.manifest.overlapping_levels
    max_probed = sum(
        len(tree.manifest.level(i)) if i in overlapping else 1
        for i in range(tree.manifest.num_levels)
    )
    return AmplificationReport(
        user_entries=stats.puts + stats.deletes,
        entries_flushed=entries_flushed,
        entries_rewritten=entries_rewritten,
        entries_stored=entries_stored,
        live_keys=live_keys,
        max_tables_probed=max_probed,
    )


def measure_tiered_tree(tree) -> AmplificationReport:
    """Amplification of a universal :class:`~repro.baselines.tiered.TieredTree`."""
    stats = tree.stats
    entries_flushed = stats.flushes * tree.config.memtable_entries
    entries_rewritten = sum(e.stats.entries_out for e in stats.compactions)
    return AmplificationReport(
        user_entries=stats.puts,
        entries_flushed=entries_flushed,
        entries_rewritten=entries_rewritten,
        entries_stored=tree.total_entries(),
        live_keys=tree.live_keys(),
        max_tables_probed=len(tree.runs),
    )


def measure_cluster(cluster) -> AmplificationReport:
    """Aggregate amplification of a CooLSM deployment.

    User entries are the upserts accepted at the Ingestors; physical
    writes are Ingestor flushes + minor compactions + Compactor major
    compactions; storage spans every node's levels (Readers excluded —
    they are replicas, not primary storage).
    """
    user_entries = sum(i.stats.upserts for i in cluster.ingestors)
    entries_flushed = sum(
        i.stats.flushes * cluster.config.memtable_entries for i in cluster.ingestors
    )
    # Minor compactions rewrite L0+L1 into fresh L1 runs; we approximate
    # output entries with the tables produced (tracked via timings on the
    # compactor side, exact on the compactor).
    entries_rewritten = sum(
        timing.entries_merged
        for compactor in cluster.compactors
        for timing in compactor.stats.compactions
    )
    stored = sum(
        node.manifest.total_entries()
        for node in [*cluster.ingestors, *cluster.compactors]
    )
    live = len(
        {
            entry.key
            for node in [*cluster.ingestors, *cluster.compactors]
            for level_index in range(node.manifest.num_levels)
            for table in node.manifest.level(level_index)
            for entry in table.entries
            if not entry.tombstone
        }
    )
    max_probed = max(
        (
            len(ingestor.level0) + 1 + 2  # L0 tables + L1 + L2 + L3
            for ingestor in cluster.ingestors
        ),
        default=0,
    )
    return AmplificationReport(
        user_entries=user_entries,
        entries_flushed=entries_flushed,
        entries_rewritten=entries_rewritten,
        entries_stored=stored,
        live_keys=live,
        max_tables_probed=max_probed,
    )
