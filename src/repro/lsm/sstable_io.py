"""On-disk sstable format: persistence for the embedded engine.

CooLSM's simulated deployments keep sstables in memory (the simulator
models I/O cost explicitly), but the library is also usable as a real
embedded LSM store, so sstables can be written to and read from disk.

File layout::

    [data block 0][data block 1]...[data block N-1]
    [index block]          # fence pointers: (first_key, offset, length)*
    [bloom block]          # serialised BloomFilter
    [footer]               # fixed size, at end of file:
        u64 index_offset | u32 index_length
        u64 bloom_offset | u32 bloom_length
        u32 crc32 of the 24 bytes above
        8-byte magic "COOLSST1"

Data blocks use :mod:`repro.lsm.block` encoding (per-block CRC32), so a
flipped bit anywhere is detected either by a block CRC or the footer CRC.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator

from repro.store.fsutil import fsync_dir

from .block import decode_entries, decode_varint, encode_entries, encode_varint
from .bloom import BloomFilter
from .cache import MISS, ReadCache
from .entry import Entry
from .errors import ClosedError, CorruptionError
from .sstable import DEFAULT_BLOCK_ENTRIES, SSTable, next_table_id

_MAGIC = b"COOLSST1"
_FOOTER = struct.Struct("<QIQII")  # index_off, index_len, bloom_off, bloom_len, crc


def write_sstable(
    table: SSTable,
    path: str,
    block_entries: int = DEFAULT_BLOCK_ENTRIES,
) -> None:
    """Persist an in-memory sstable to ``path`` (atomic via rename)."""
    tmp_path = path + ".tmp"
    fences: list[tuple[bytes, int, int]] = []
    with open(tmp_path, "wb") as f:
        offset = 0
        for start in range(0, len(table.entries), block_entries):
            chunk = table.entries[start : start + block_entries]
            encoded = encode_entries(chunk)
            f.write(encoded)
            fences.append((chunk[0].key, offset, len(encoded)))
            offset += len(encoded)
        index_offset = offset
        index_block = _encode_index(fences)
        f.write(index_block)
        bloom_offset = index_offset + len(index_block)
        bloom_block = table.bloom.to_bytes()
        f.write(bloom_block)
        footer_fields = struct.pack(
            "<QIQI", index_offset, len(index_block), bloom_offset, len(bloom_block)
        )
        crc = zlib.crc32(footer_fields) & 0xFFFFFFFF
        f.write(footer_fields + struct.pack("<I", crc) + _MAGIC)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp_path, path)
    # The rename lives in the directory's metadata: without this fsync a
    # power loss can forget the file ever appeared.
    fsync_dir(os.path.dirname(os.path.abspath(path)))


def _encode_index(fences: list[tuple[bytes, int, int]]) -> bytes:
    out = bytearray()
    out += encode_varint(len(fences))
    for first_key, offset, length in fences:
        out += encode_varint(len(first_key))
        out += first_key
        out += struct.pack("<QI", offset, length)
    return bytes(out)


def _decode_index(data: bytes) -> list[tuple[bytes, int, int]]:
    count, offset = decode_varint(data, 0)
    fences = []
    for _ in range(count):
        key_len, offset = decode_varint(data, offset)
        key = bytes(data[offset : offset + key_len])
        offset += key_len
        block_offset, block_len = struct.unpack_from("<QI", data, offset)
        offset += 12
        fences.append((key, block_offset, block_len))
    return fences


class SSTableReader:
    """Random and sequential access to an on-disk sstable.

    Reads one data block per point lookup, guided by the on-disk fence
    pointers and bloom filter — the same read path as the in-memory
    :class:`~repro.lsm.sstable.SSTable`.

    With a :class:`~repro.lsm.cache.ReadCache`, decoded blocks are
    cached under a per-reader id, so hot blocks skip both the file read
    and the CRC-checked decode.
    """

    def __init__(self, path: str, cache: ReadCache | None = None) -> None:
        self.path = path
        self.cache = cache
        self._cache_id = next_table_id()
        self._file = open(path, "rb")
        self._closed = False
        self._load_footer()

    def _load_footer(self) -> None:
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        footer_size = _FOOTER.size + len(_MAGIC)
        if size < footer_size:
            raise CorruptionError(f"{self.path}: file too small for footer")
        self._file.seek(size - footer_size)
        raw = self._file.read(footer_size)
        if raw[-len(_MAGIC) :] != _MAGIC:
            raise CorruptionError(f"{self.path}: bad magic")
        fields = raw[: _FOOTER.size - 4 + 4]
        index_off, index_len, bloom_off, bloom_len, crc = _FOOTER.unpack(
            raw[: _FOOTER.size]
        )
        if zlib.crc32(raw[: _FOOTER.size - 4]) & 0xFFFFFFFF != crc:
            raise CorruptionError(f"{self.path}: footer checksum mismatch")
        del fields
        self._file.seek(index_off)
        self._fences = _decode_index(self._file.read(index_len))
        self._file.seek(bloom_off)
        self.bloom = BloomFilter.from_bytes(self._file.read(bloom_len))
        if not self._fences:
            raise CorruptionError(f"{self.path}: empty index")

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def __enter__(self) -> "SSTableReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("reader is closed")

    def _read_block(self, index: int) -> list[Entry]:
        if self.cache is not None:
            cached = self.cache.get_block(self._cache_id, index)
            if cached is not MISS:
                return cached
        __, offset, length = self._fences[index]
        self._file.seek(offset)
        entries = decode_entries(self._file.read(length))
        if self.cache is not None:
            self.cache.put_block(self._cache_id, index, entries)
        return entries

    def get(self, key: bytes) -> Entry | None:
        """Newest version of ``key``, reading at most two data blocks.

        Versions are newest-first per key, so the newest version is the
        key's *first* occurrence in the file.  That occurrence lives in
        the last block whose first key is strictly below ``key``, or —
        when the key's versions start exactly at a block boundary — in
        the first block whose first key equals ``key``.
        """
        self._check_open()
        if not self.bloom.might_contain(key):
            return None
        # lower_bound over block first-keys.
        lo, hi = 0, len(self._fences)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._fences[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        # Block before the bound may hold the first occurrence.
        if lo > 0:
            for entry in self._read_block(lo - 1):
                if entry.key == key:
                    return entry
        # Otherwise the occurrence starts exactly at block `lo`.
        if lo < len(self._fences) and self._fences[lo][0] == key:
            for entry in self._read_block(lo):
                if entry.key == key:
                    return entry
        return None

    def scan(self) -> Iterator[Entry]:
        """Iterate all entries in sstable order."""
        self._check_open()
        for index in range(len(self._fences)):
            yield from self._read_block(index)

    def load(self) -> SSTable:
        """Materialise the whole file as an in-memory :class:`SSTable`,
        reusing the deserialised bloom filter instead of rebuilding it."""
        return SSTable(list(self.scan()), bloom=self.bloom)


def read_sstable(path: str) -> SSTable:
    """Load an on-disk sstable fully into memory."""
    with SSTableReader(path) as reader:
        return reader.load()
