"""Analytic LSM cost model and bloom-memory tuning.

The paper's Related Work points to Monkey and Dostoevsky for "a detailed
mathematical analysis of tuning LSM trees hyperparameters".  This module
provides that analysis for our engines:

* :class:`LSMShape` — derive the level structure (level count, per-level
  capacities) from entry count, buffer size, and size ratio.
* :func:`leveled_write_cost` / :func:`tiered_write_cost` — expected
  write amplification of the two compaction disciplines (the classic
  O(T·L) vs O(L) result).
* :func:`point_lookup_cost` — expected sstable probes per lookup given
  per-level bloom false-positive rates.
* :func:`optimal_bloom_allocation` — Monkey's headline idea: skew bloom
  memory toward smaller levels.  With equal bits everywhere the FP rate
  is uniform; reallocating the same total memory lowers the *sum* of
  per-level FP rates, i.e. the expected probes for a zero-result lookup.

The formulas are standard: a bloom filter with ``bits`` bits over ``n``
keys has false-positive rate ``exp(-(bits/n) * ln(2)^2)`` at the optimal
hash count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import InvalidConfigError

_LN2_SQ = math.log(2) ** 2


@dataclass(frozen=True, slots=True)
class LSMShape:
    """The level structure implied by (entries, buffer, ratio).

    Attributes:
        total_entries: Data set size, entries.
        buffer_entries: Memtable/L0 capacity, entries.
        size_ratio: Capacity ratio between adjacent levels (paper: 10).
    """

    total_entries: int
    buffer_entries: int
    size_ratio: float = 10.0

    def __post_init__(self) -> None:
        if self.total_entries <= 0 or self.buffer_entries <= 0:
            raise InvalidConfigError("entry counts must be positive")
        if self.size_ratio <= 1.0:
            raise InvalidConfigError("size_ratio must exceed 1")

    @property
    def num_levels(self) -> int:
        """Levels needed so the last one holds the residual data."""
        levels = 1
        capacity = self.buffer_entries
        while capacity < self.total_entries:
            capacity *= self.size_ratio
            levels += 1
        return max(1, levels - 1)

    def level_entries(self) -> list[int]:
        """Entries held per on-disk level when the tree is full, largest
        level last."""
        levels = self.num_levels
        return [
            min(
                self.total_entries,
                int(self.buffer_entries * self.size_ratio ** (i + 1)),
            )
            for i in range(levels)
        ]


def leveled_write_cost(shape: LSMShape) -> float:
    """Expected write amplification under leveling.

    Each entry is rewritten on average ``ratio/2`` times per level it
    descends through (it is merged into a level that is, on average,
    half full of its own data), plus the initial flush.
    """
    return 1.0 + shape.num_levels * shape.size_ratio / 2.0


def tiered_write_cost(shape: LSMShape) -> float:
    """Expected write amplification under tiering/universal compaction:
    one rewrite per level plus the flush."""
    return 1.0 + shape.num_levels


def lazy_leveling_write_cost(shape: LSMShape) -> float:
    """Expected write amplification under lazy leveling (Dostoevsky):
    tiering on every level but the last, leveling only at the largest.

    An entry pays the flush, one rewrite per tiered level it descends
    through (``L - 1`` of them), and the leveled merge into the last
    level (``ratio/2`` on average) — the leveled term is paid once, not
    per level, which is the whole point of the hybrid.
    """
    return 1.0 + max(0, shape.num_levels - 1) + shape.size_ratio / 2.0


def one_leveling_write_cost(shape: LSMShape) -> float:
    """Expected write amplification with a single leveled level.

    Every buffer flush is merged into the one on-disk level, rewriting
    it wholesale; by the time the data set reaches ``total`` entries the
    level has been rewritten once per flush at an average size of half
    the final one, so each entry is copied ``total / (2 * buffer)``
    times on top of its flush.
    """
    return 1.0 + shape.total_entries / (2.0 * shape.buffer_entries)


def leveled_space_amplification(shape: LSMShape) -> float:
    """Obsolete data is bounded by the next-to-last level: ~1 + 1/ratio."""
    return 1.0 + 1.0 / shape.size_ratio


def tiered_space_amplification(shape: LSMShape) -> float:
    """Up to ``ratio`` overlapping runs per level may hold stale
    versions of the same key: O(ratio) in the worst case; 2.0 is the
    standard planning number for ratio >= 2."""
    return 2.0


def lazy_leveling_space_amplification(shape: LSMShape) -> float:
    """The last (leveled) level holds ~``1 - 1/ratio`` of the data with
    no duplicates; only the tiered upper levels (a ``~1/ratio``
    fraction, up to ``ratio`` runs each) can hold stale versions —
    roughly twice the leveled bound."""
    return 1.0 + 2.0 / shape.size_ratio


def one_leveling_space_amplification(shape: LSMShape) -> float:
    """A single leveled level is fully deduplicated at every merge;
    stale versions survive only in the not-yet-merged buffer residue."""
    return 1.0 + shape.buffer_entries / shape.total_entries


#: Analytic (write_cost, space_amplification) estimators per compaction
#: policy name — keys match :data:`repro.lsm.policy.POLICY_NAMES`.
POLICY_COST_MODELS: dict[str, tuple] = {
    "leveling": (leveled_write_cost, leveled_space_amplification),
    "tiering": (tiered_write_cost, tiered_space_amplification),
    "lazy_leveling": (lazy_leveling_write_cost, lazy_leveling_space_amplification),
    "one_leveling": (one_leveling_write_cost, one_leveling_space_amplification),
}


def policy_write_cost(policy: str, shape: LSMShape) -> float:
    """Expected write amplification of ``policy`` (any accepted alias)
    at ``shape``."""
    from .policy import normalize_policy_name

    return POLICY_COST_MODELS[normalize_policy_name(policy)][0](shape)


def policy_space_amplification(policy: str, shape: LSMShape) -> float:
    """Expected space amplification of ``policy`` at ``shape``."""
    from .policy import normalize_policy_name

    return POLICY_COST_MODELS[normalize_policy_name(policy)][1](shape)


def bloom_false_positive_rate(bits_per_entry: float) -> float:
    """FP rate of a bloom filter at the optimal hash count."""
    if bits_per_entry < 0:
        raise InvalidConfigError("bits_per_entry must be non-negative")
    return math.exp(-bits_per_entry * _LN2_SQ)


def point_lookup_cost(level_fp_rates: list[float], hit: bool = False) -> float:
    """Expected sstable probes for a point lookup.

    A zero-result lookup probes each level with probability equal to its
    bloom FP rate; a hit additionally pays one true probe.
    """
    cost = sum(level_fp_rates)
    return cost + (1.0 if hit else 0.0)


def uniform_bloom_allocation(total_bits: float, level_entries: list[int]) -> list[float]:
    """The baseline every system used before Monkey: the same
    bits-per-entry everywhere."""
    total_entries = sum(level_entries)
    if total_entries == 0:
        return [0.0] * len(level_entries)
    per_entry = total_bits / total_entries
    return [per_entry * n for n in level_entries]


def optimal_bloom_allocation(
    total_bits: float, level_entries: list[int], iterations: int = 200
) -> list[float]:
    """Monkey-style memory allocation minimising Σ per-level FP rates.

    Minimise ``Σ exp(-(b_i/n_i)·ln2²)`` s.t. ``Σ b_i = total_bits``.
    By Lagrange multipliers the optimum equalises the marginal benefit
    ``(ln2²/n_i)·exp(-(b_i/n_i)·ln2²)`` across levels, giving

        b_i/n_i = (1/ln2²) · ln(ln2² / (λ n_i))   (clamped at 0)

    We solve for λ by bisection.  Smaller levels end up with more bits
    per entry — their filters are cheap to make near-perfect — while the
    largest level absorbs most of the FP budget.
    """
    if total_bits < 0:
        raise InvalidConfigError("total_bits must be non-negative")
    if not level_entries:
        return []
    if any(n <= 0 for n in level_entries):
        raise InvalidConfigError("level entry counts must be positive")

    def bits_for(lam: float) -> list[float]:
        out = []
        for n in level_entries:
            ratio = _LN2_SQ / (lam * n)
            per_entry = math.log(ratio) / _LN2_SQ if ratio > 1.0 else 0.0
            out.append(per_entry * n)
        return out

    # λ large -> allocate nothing; λ small -> allocate a lot.  Bisection
    # on total allocated bits (monotone decreasing in λ).
    lo, hi = 1e-18, 1e6
    for __ in range(iterations):
        mid = math.sqrt(lo * hi)  # geometric: λ spans many decades
        allocated = sum(bits_for(mid))
        if allocated > total_bits:
            lo = mid
        else:
            hi = mid
    allocation = bits_for(hi)
    scale = total_bits / sum(allocation) if sum(allocation) > 0 else 0.0
    return [b * scale for b in allocation]


def expected_zero_result_probes(allocation: list[float], level_entries: list[int]) -> float:
    """Σ per-level FP rates under a given bits allocation."""
    return sum(
        bloom_false_positive_rate(bits / n)
        for bits, n in zip(allocation, level_entries)
    )


@dataclass(frozen=True, slots=True)
class TuningComparison:
    """Leveling vs tiering at one shape, for reports and tests."""

    shape: LSMShape
    leveled_write: float
    tiered_write: float
    leveled_space: float
    tiered_space: float

    @classmethod
    def for_shape(cls, shape: LSMShape) -> "TuningComparison":
        return cls(
            shape,
            leveled_write_cost(shape),
            tiered_write_cost(shape),
            leveled_space_amplification(shape),
            tiered_space_amplification(shape),
        )
