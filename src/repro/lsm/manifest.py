"""Versioned level manifest: atomic level membership changes.

Compactions must replace whole sets of sstables atomically — "this step
is performed atomically" appears twice in Section III-C (minor and major
compaction).  The manifest provides that atomicity: each level is a list
of sstables, and a :class:`LevelEdit` describing removed and added
tables is validated and applied as a single step, producing a new
monotonically increasing version number.

Concurrent readers in the simulator capture the level lists before
iterating (lists are replaced, never mutated in place), so a reader
always observes either the pre- or post-compaction state, never a
mixture.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from .errors import ManifestError
from .sstable import SSTable


@dataclass(slots=True)
class LevelEdit:
    """A single atomic change to level membership."""

    removes: dict[int, list[SSTable]] = field(default_factory=dict)
    adds: dict[int, list[SSTable]] = field(default_factory=dict)

    def remove(self, level: int, tables: list[SSTable]) -> "LevelEdit":
        self.removes.setdefault(level, []).extend(tables)
        return self

    def add(self, level: int, tables: list[SSTable]) -> "LevelEdit":
        self.adds.setdefault(level, []).extend(tables)
        return self


class LevelFenceIndex:
    """Interval index over one level's tables: sorted min keys + a
    running max of max keys, so point and range lookups bisect straight
    to the overlapping tables instead of scanning the level.

    Works for overlapping levels too: the prefix-max array bounds the
    leftward walk from the bisect position, so a lookup inspects only
    tables that *could* contain the key.  For a non-overlapping level
    the walk visits at most one table — the paper's fence-pointer
    argument, lifted from blocks-within-a-table to tables-within-a-level.
    """

    __slots__ = ("_tables", "_positions", "_min_keys", "_prefix_max")

    def __init__(self, level_tables: list[SSTable]) -> None:
        order = sorted(range(len(level_tables)), key=lambda i: level_tables[i].min_key)
        self._tables = [level_tables[i] for i in order]
        self._positions = order  # original level-list position per sorted slot
        self._min_keys = [t.min_key for t in self._tables]
        prefix_max: list[bytes] = []
        running: bytes | None = None
        for table in self._tables:
            running = table.max_key if running is None else max(running, table.max_key)
            prefix_max.append(running)
        self._prefix_max = prefix_max

    def __len__(self) -> int:
        return len(self._tables)

    def candidates_for_key(self, key: bytes) -> list[SSTable]:
        """Tables whose [min_key, max_key] contains ``key``, in original
        level-list order (so L0's newest-first convention survives)."""
        hits: list[tuple[int, SSTable]] = []
        i = bisect.bisect_right(self._min_keys, key) - 1
        while i >= 0 and self._prefix_max[i] >= key:
            if self._tables[i].max_key >= key:
                hits.append((self._positions[i], self._tables[i]))
            i -= 1
        hits.sort(key=lambda pair: pair[0])
        return [table for __, table in hits]

    def candidates_for_range(
        self, lo: bytes | None, hi: bytes | None
    ) -> list[SSTable]:
        """Tables intersecting ``[lo, hi)``, sorted by min key (the
        order a chained level scan needs)."""
        start = 0 if lo is None else bisect.bisect_left(self._prefix_max, lo)
        end = len(self._tables) if hi is None else bisect.bisect_left(self._min_keys, hi)
        return [
            table
            for table in self._tables[start:end]
            if lo is None or table.max_key >= lo
        ]


class Manifest:
    """Tracks the sstables of each level and applies edits atomically.

    Args:
        num_levels: Number of levels managed (e.g. 2 for an Ingestor's
            L0/L1, indexed here as levels 0 and 1).
        overlapping_levels: Level indices whose tables may overlap in key
            range (level 0 in a classic tree).  Non-overlapping levels
            are kept sorted by min key and validated on every edit.
    """

    def __init__(self, num_levels: int, overlapping_levels: frozenset[int] = frozenset({0})) -> None:
        if num_levels <= 0:
            raise ManifestError("num_levels must be positive")
        self._levels: list[list[SSTable]] = [[] for __ in range(num_levels)]
        self._overlapping = overlapping_levels
        self._indexes: list[LevelFenceIndex | None] = [None] * num_levels
        self.version = 0

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def overlapping_levels(self) -> frozenset[int]:
        """Level indices whose tables may overlap in key range."""
        return self._overlapping

    def level(self, index: int) -> list[SSTable]:
        """The current table list of a level (treat as immutable)."""
        return self._levels[index]

    def level_sizes(self) -> list[int]:
        """Number of tables per level."""
        return [len(tables) for tables in self._levels]

    def total_entries(self) -> int:
        return sum(len(t) for tables in self._levels for t in tables)

    def fence_index(self, level: int) -> LevelFenceIndex:
        """The level's interval index, built lazily and cached until the
        next :meth:`apply` (level lists are replaced, never mutated, so
        a cached index is valid for the manifest version it was built at)."""
        index = self._indexes[level]
        if index is None:
            index = LevelFenceIndex(self._levels[level])
            self._indexes[level] = index
        return index

    def tables_for_key(self, level: int, key: bytes) -> list[SSTable]:
        """Tables of ``level`` whose key range contains ``key``, in
        level-list order — at most one for a non-overlapping level."""
        return self.fence_index(level).candidates_for_key(key)

    def tables_for_range(
        self, level: int, lo: bytes | None, hi: bytes | None
    ) -> list[SSTable]:
        """Tables of ``level`` intersecting ``[lo, hi)``, by min key."""
        return self.fence_index(level).candidates_for_range(lo, hi)

    def apply(self, edit: LevelEdit) -> int:
        """Validate and apply an edit atomically; return the new version.

        Raises :class:`ManifestError` (leaving state untouched) if a
        removed table is absent or if the edit would create overlapping
        tables in a non-overlapping level.
        """
        new_levels = [list(tables) for tables in self._levels]
        for level_index, tables in edit.removes.items():
            current = new_levels[level_index]
            current_ids = {t.table_id for t in current}
            for table in tables:
                if table.table_id not in current_ids:
                    raise ManifestError(
                        f"table {table.table_id} not present in level {level_index}"
                    )
            remove_ids = {t.table_id for t in tables}
            new_levels[level_index] = [
                t for t in current if t.table_id not in remove_ids
            ]
        present_ids = {
            t.table_id for tables in new_levels for t in tables
        }
        for level_index, tables in edit.adds.items():
            for table in tables:
                if table.table_id in present_ids:
                    raise ManifestError(
                        f"table {table.table_id} already present (double add)"
                    )
                present_ids.add(table.table_id)
            new_levels[level_index] = new_levels[level_index] + list(tables)
        for level_index, tables in enumerate(new_levels):
            if level_index in self._overlapping or len(tables) < 2:
                continue
            ordered = sorted(tables, key=lambda t: t.min_key)
            for left, right in zip(ordered, ordered[1:]):
                if left.max_key >= right.min_key:
                    raise ManifestError(
                        f"edit creates overlap in level {level_index}: "
                        f"{left.table_id} and {right.table_id}"
                    )
            new_levels[level_index] = ordered
        self._levels = new_levels
        self._indexes = [None] * len(new_levels)
        self.version += 1
        return self.version

    def snapshot(self) -> list[list[SSTable]]:
        """A point-in-time copy of all level lists (tables shared)."""
        return [list(tables) for tables in self._levels]
