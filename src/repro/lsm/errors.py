"""Exception hierarchy for the LSM storage engine.

Every error raised by :mod:`repro.lsm` derives from :class:`LSMError` so
callers can catch storage failures with a single ``except`` clause while
still being able to distinguish corruption from misuse.
"""

from __future__ import annotations


class LSMError(Exception):
    """Base class for all storage-engine errors."""


class CorruptionError(LSMError):
    """Raised when on-disk data fails a checksum or structural check."""


class InvalidKeyError(LSMError):
    """Raised when a key is empty or of an unsupported type."""


class InvalidConfigError(LSMError):
    """Raised when engine configuration parameters are inconsistent."""


class ClosedError(LSMError):
    """Raised when operating on a closed tree, WAL, or sstable reader."""


class ManifestError(LSMError):
    """Raised when a manifest edit cannot be applied consistently."""
