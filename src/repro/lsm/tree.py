"""The monolithic LSM tree: an embeddable key-value engine.

This is the classic single-machine structure of Figure 1(a): a memtable
feeding L0 (tiering into L1) with leveled compaction above.  CooLSM's
components are built from the same parts (levels, compaction policies,
merge iterators) but split across nodes; this class keeps them together
and is therefore also the "monolithic" baseline of the evaluation.

Usage::

    tree = LSMTree(LSMConfig.for_key_range(100_000))
    tree.put(b"k", b"v")
    assert tree.get(b"k") == b"v"

With ``directory`` set, writes go through a WAL and flushed sstables are
persisted, so :meth:`LSMTree.open` can recover the full state after a
crash.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.store.fsutil import fsync_dir

from .cache import CacheStats, ReadCache
from .compaction import CompactionStats, KeepPolicy, NEWEST_WINS
from .entry import Entry, encode_key, make_tombstone, make_upsert
from .errors import ClosedError, CorruptionError, InvalidConfigError
from .manifest import LevelEdit, Manifest
from .memtable import Memtable
from .policy import make_policy, normalize_policy_name
from .sstable import SSTable
from .sstable_io import read_sstable, write_sstable
from .wal import WriteAheadLog, replay


@dataclass(frozen=True, slots=True)
class LSMConfig:
    """Structural parameters of the tree.

    The defaults follow the paper's experimental setup: four levels,
    thresholds of 10 sstables for L0 and L1, and a 10x size ratio for
    the levels above (Section II-B and IV).

    Attributes:
        memtable_entries: Batch size buffered before a flush to L0.
        sstable_entries: Entries per sstable ("the size of an sstable is
            predetermined").
        level_thresholds: Max table count per level; the last level is
            unbounded if its threshold is 0.
        keep_policy: Version retention during merges.
        wal_sync: fsync the WAL on every batch (persistent mode only).
        enable_snapshots: Retain old versions while snapshots are open
            so :meth:`LSMTree.snapshot` gives consistent point-in-time
            reads (LevelDB-style).  Costs memory proportional to the
            churn since the oldest open snapshot.
        cache_capacity: Entries in the shared read cache (row results
            keyed by immutable table id, so the cache never needs
            invalidation).  0 disables caching.
        cache_policy: Eviction policy, ``"lru"`` or ``"clock"``.
        compaction_policy: Which :mod:`repro.lsm.policy` strategy runs
            the compaction cascade (``"leveling"`` — the paper's hybrid
            and the historical behaviour — ``"tiering"``,
            ``"lazy_leveling"``, or ``"one_leveling"``).
    """

    memtable_entries: int = 1_000
    sstable_entries: int = 100
    level_thresholds: tuple[int, ...] = (10, 10, 100, 1_000)
    keep_policy: KeepPolicy = NEWEST_WINS
    wal_sync: bool = True
    enable_snapshots: bool = False
    cache_capacity: int = 4_096
    cache_policy: str = "lru"
    compaction_policy: str = "leveling"

    def __post_init__(self) -> None:
        if self.memtable_entries <= 0 or self.sstable_entries <= 0:
            raise InvalidConfigError("entry counts must be positive")
        if len(self.level_thresholds) < 2:
            raise InvalidConfigError("need at least levels L0 and L1")
        if any(t < 0 for t in self.level_thresholds):
            raise InvalidConfigError("thresholds must be non-negative")
        if self.cache_capacity < 0:
            raise InvalidConfigError("cache_capacity must be non-negative")
        normalize_policy_name(self.compaction_policy)  # raises if unknown

    @classmethod
    def for_key_range(cls, key_range: int, **overrides) -> "LSMConfig":
        """The paper's configurations: 100K and 300K key ranges.

        100K: L0/L1 hold 10 sstables, L2 100, L3 1000.
        300K: L0/L1 hold 10 sstables, L2 300, L3 3000.
        """
        if key_range >= 300_000:
            thresholds = (10, 10, 300, 3_000)
        else:
            thresholds = (10, 10, 100, 1_000)
        defaults = dict(level_thresholds=thresholds)
        defaults.update(overrides)
        return cls(**defaults)

    @property
    def num_levels(self) -> int:
        return len(self.level_thresholds)


@dataclass(slots=True)
class CompactionEvent:
    """One compaction occurrence, for stats collection (Figure 4)."""

    level: int  # target level of the merge
    stats: CompactionStats


@dataclass(slots=True)
class TreeStats:
    """Cumulative counters exposed by :attr:`LSMTree.stats`.

    ``cache`` is the same object the tree's :class:`ReadCache` updates,
    so hit/miss/eviction and bloom-probe counters are readable here
    without reaching into the cache.
    """

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    flushes: int = 0
    compactions: list[CompactionEvent] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)

    def compaction_count(self, level: int | None = None) -> int:
        if level is None:
            return len(self.compactions)
        return sum(1 for c in self.compactions if c.level == level)


class Snapshot:
    """A consistent point-in-time view of an :class:`LSMTree`.

    Reads through a snapshot see exactly the data as of its creation:
    later writes and deletes are invisible.  Close (or use as a context
    manager) to release the version-retention it pins.
    """

    __slots__ = ("_tree", "timestamp", "closed")

    def __init__(self, tree: "LSMTree", timestamp: float) -> None:
        self._tree = tree
        self.timestamp = timestamp
        self.closed = False

    def get(self, key: bytes | str | int) -> bytes | None:
        """Value of ``key`` as of this snapshot, or None."""
        if self.closed:
            raise ClosedError("snapshot is closed")
        entry = self._tree._get_entry_as_of(encode_key(key), self.timestamp)
        if entry is None or entry.tombstone:
            return None
        return entry.value

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._tree._release_snapshot(self.timestamp)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LSMTree:
    """A single-node LSM key-value store.

    Args:
        config: Structural parameters.
        directory: If given, persist the WAL, sstables, and manifest
            here; otherwise the tree is purely in-memory.
        clock: Source of entry timestamps (defaults to a logical counter
            so that standalone trees are deterministic).
    """

    def __init__(
        self,
        config: LSMConfig | None = None,
        directory: str | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.config = config or LSMConfig()
        self.directory = directory
        self._clock = clock or self._logical_clock
        self._logical_time = 0.0
        self._seqno = 0
        self._closed = False
        self._policy = make_policy(self.config.compaction_policy)
        self.manifest = Manifest(
            self.config.num_levels,
            overlapping_levels=self._policy.tree_overlapping(self.config.num_levels),
        )
        self.stats = TreeStats()
        self._cache: ReadCache | None = (
            ReadCache(
                self.config.cache_capacity,
                policy=self.config.cache_policy,
                stats=self.stats.cache,
            )
            if self.config.cache_capacity > 0
            else None
        )
        # Per-level rotating compaction pointers (LevelDB-style sweep).
        self._compaction_pointers: list[bytes | None] = [None] * self.config.num_levels
        self._active_snapshots: list[float] = []
        self._memtable = Memtable(
            self.config.memtable_entries, retain_versions=self._retain_versions()
        )
        self._wal: WriteAheadLog | None = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._wal = WriteAheadLog(
                os.path.join(directory, "wal.log"), sync=self.config.wal_sync
            )

    # ------------------------------------------------------------------
    # Construction / recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str, config: LSMConfig | None = None) -> "LSMTree":
        """Recover a persistent tree: load the manifest's sstables and
        replay the WAL into a fresh memtable."""
        manifest_path = os.path.join(directory, "MANIFEST.json")
        tables_by_level: dict[int, list[SSTable]] = {}
        max_seqno = 0
        referenced: set[str] = set()
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as f:
                listing = json.load(f)
            # Refuse to reinterpret another policy's level structure:
            # e.g. a tiered manifest holds overlapping runs a leveled
            # tree would mis-read.  Manifests written before policies
            # existed carry no field and are accepted as leveling-shaped.
            persisted_policy = listing.get("policy")
            expected_policy = normalize_policy_name(
                (config or LSMConfig()).compaction_policy
            )
            if persisted_policy is not None and persisted_policy != expected_policy:
                raise CorruptionError(
                    f"{manifest_path}: written by compaction policy "
                    f"{persisted_policy!r}, refusing to open as {expected_policy!r}"
                )
            for level_str, filenames in listing["levels"].items():
                level = int(level_str)
                loaded = []
                for name in filenames:
                    path = os.path.join(directory, name)
                    if not os.path.exists(path):
                        raise CorruptionError(
                            f"{manifest_path}: references missing sstable {name}"
                        )
                    loaded.append(read_sstable(path))
                    referenced.add(name)
                tables_by_level[level] = loaded
        # Orphans: a crash between sstable write and manifest install
        # leaves files no manifest references (plus .tmp leftovers) —
        # delete them so disk usage cannot grow without bound.
        removed = False
        for name in os.listdir(directory):
            orphan_table = (
                name.startswith("sst-")
                and name.endswith(".sst")
                and name not in referenced
            )
            if orphan_table or name.endswith(".tmp"):
                os.remove(os.path.join(directory, name))
                removed = True
        if removed:
            fsync_dir(directory)
        tree = cls(config, directory=None)  # WAL opened after replay
        tree.directory = directory
        edit = LevelEdit()
        for level, tables in tables_by_level.items():
            edit.add(level, tables)
            for table in tables:
                max_seqno = max(max_seqno, max(e.seqno for e in table.entries))
        tree.manifest.apply(edit)
        wal_path = os.path.join(directory, "wal.log")
        for entry in replay(wal_path):
            tree._memtable.put(entry)
            max_seqno = max(max_seqno, entry.seqno)
            tree._logical_time = max(tree._logical_time, entry.timestamp)
        tree._seqno = max_seqno
        tree._wal = WriteAheadLog(wal_path, sync=tree.config.wal_sync)
        return tree

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
        self._closed = True

    def __enter__(self) -> "LSMTree":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("tree is closed")

    def _logical_clock(self) -> float:
        self._logical_time += 1.0
        return self._logical_time

    def _next_seqno(self) -> int:
        self._seqno += 1
        return self._seqno

    def _retain_versions(self) -> bool:
        return (
            self.config.enable_snapshots
            or self.config.keep_policy.retain_horizon is not None
        )

    def _effective_keep_policy(self, bottom: bool = False) -> KeepPolicy:
        """The merge policy, pinned below any open snapshot."""
        policy = self.config.keep_policy
        if self.config.enable_snapshots and self._active_snapshots:
            horizon = min(self._active_snapshots)
            existing = policy.retain_horizon
            pinned = horizon if existing is None else min(existing, horizon)
            # Never drop tombstones while a snapshot might need to see
            # through them.
            return KeepPolicy(retain_horizon=pinned)
        if bottom and policy.retain_horizon is None:
            return KeepPolicy(drop_tombstones=True)
        return policy

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """Open a consistent point-in-time view (requires
        ``config.enable_snapshots``)."""
        if not self.config.enable_snapshots:
            raise InvalidConfigError("snapshots require enable_snapshots=True")
        timestamp = self._current_time()
        self._active_snapshots.append(timestamp)
        return Snapshot(self, timestamp)

    def _current_time(self) -> float:
        """The timestamp of the most recent write (snapshot boundary)."""
        return self._logical_time

    def _release_snapshot(self, timestamp: float) -> None:
        try:
            self._active_snapshots.remove(timestamp)
        except ValueError:
            pass

    def _get_entry_as_of(self, key: bytes, as_of: float) -> Entry | None:
        """Newest entry with timestamp <= as_of, across all versions."""
        candidates = [
            v for v in self._memtable.versions(key) if v.timestamp <= as_of
        ]
        for level in range(self.manifest.num_levels):
            for table in self.manifest.tables_for_key(level, key):
                candidates.extend(
                    v
                    for v in table.versions(key, self._cache)
                    if v.timestamp <= as_of
                )
        if not candidates:
            return None
        return max(candidates, key=lambda e: e.version)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: bytes | str | int, value: bytes | str) -> Entry:
        """Insert or overwrite a key (the paper's *upsert*)."""
        self._check_open()
        entry = make_upsert(key, value, self._next_seqno(), self._clock())
        self._write(entry)
        self.stats.puts += 1
        return entry

    def delete(self, key: bytes | str | int) -> Entry:
        """Delete a key by writing a tombstone."""
        self._check_open()
        entry = make_tombstone(key, self._next_seqno(), self._clock())
        self._write(entry)
        self.stats.deletes += 1
        return entry

    def put_entry(self, entry: Entry) -> None:
        """Insert a pre-built entry (used by CooLSM components, which
        assign seqnos and loose-clock timestamps themselves)."""
        self._check_open()
        self._seqno = max(self._seqno, entry.seqno)
        self._write(entry)
        self.stats.puts += 1

    def _write(self, entry: Entry) -> None:
        if self._wal is not None:
            self._wal.append(entry)
        self._memtable.put(entry)
        if self._memtable.is_full():
            self.flush()

    def flush(self) -> None:
        """Freeze the memtable into a new L0 sstable and cascade
        compactions as thresholds are exceeded."""
        self._check_open()
        entries = self._memtable.entries()
        if not entries:
            return
        table = SSTable(entries)
        self.manifest.apply(LevelEdit().add(0, [table]))
        self._memtable = Memtable(
            self.config.memtable_entries, retain_versions=self._retain_versions()
        )
        if self._wal is not None:
            self._persist_table(table)
            self._wal.truncate()
        self.stats.flushes += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Run the configured policy's compaction cascade."""
        self._policy.compact_tree(self)

    def _record_compaction(self, level: int, stats: CompactionStats) -> None:
        """Policy callback after each applied compaction: collect stats
        and re-sync the on-disk sstable set with the manifest."""
        self.stats.compactions.append(CompactionEvent(level, stats))
        self._sync_persisted_tables()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: bytes | str | int) -> bytes | None:
        """Return the newest value for ``key``, or None if absent/deleted."""
        entry = self.get_entry(key)
        if entry is None or entry.tombstone:
            return None
        return entry.value

    def get_entry(self, key: bytes | str | int) -> Entry | None:
        """Newest entry for ``key`` (including tombstones), or None.

        Search order is the paper's read flow: memtable, then L0 newest
        table first, then each level in order.  Levels below L0 go
        through the manifest's fence index, so a non-overlapping level
        costs one bisect and at most one table probe — and probes go
        through the shared read cache, so a hot key's block search runs
        at most once per table.
        """
        self._check_open()
        self.stats.gets += 1
        encoded = encode_key(key)
        cache = self._cache
        best = self._memtable.get(encoded)
        for table in reversed(self.manifest.level(0)):
            found = table.get(encoded, cache)
            if found is not None and (best is None or found.version > best.version):
                best = found
            if best is not None:
                # L0 tables are newest-first; the first hit wins unless the
                # memtable already had a newer one.
                break
        if best is not None:
            return best
        for level in range(1, self.manifest.num_levels):
            # A non-overlapping level has at most one candidate; an
            # overlapping (tiered) level may hold several versions, so
            # the newest across the level's runs wins.  Either way, data
            # only moves downward, so the first level with a hit is it.
            for table in self.manifest.tables_for_key(level, encoded):
                found = table.get(encoded, cache)
                if found is not None and (best is None or found.version > best.version):
                    best = found
            if best is not None:
                return best
        return None

    def scan(
        self, lo: bytes | str | int | None = None, hi: bytes | str | int | None = None
    ) -> Iterator[tuple[bytes, bytes]]:
        """Yield (key, value) pairs with lo <= key < hi, newest versions,
        tombstones elided.

        Fully streaming: one lazy cursor per L0 table plus one
        :func:`~repro.lsm.iterators.level_scan` cursor per deeper level
        feed a k-way merge, so an early-terminated scan costs
        O(result + tables primed at the frontier), not O(level).  The
        iterator reflects the tree as of its first element; interleaving
        writes with iteration is undefined (finish or drop the iterator
        before mutating).
        """
        self._check_open()
        lo_b = encode_key(lo) if lo is not None else None
        hi_b = encode_key(hi) if hi is not None else None
        from .iterators import dedup_newest, k_way_merge, level_scan

        sources: list = [self._memtable.iter_range(lo_b, hi_b)]
        for table in reversed(self.manifest.level(0)):
            if (hi_b is None or table.min_key < hi_b) and (
                lo_b is None or table.max_key >= lo_b
            ):
                sources.append(table.scan(lo_b, hi_b))
        overlapping = self.manifest.overlapping_levels
        for level in range(1, self.manifest.num_levels):
            run = self.manifest.tables_for_range(level, lo_b, hi_b)
            if not run:
                continue
            if level in overlapping:
                # Tiered level: runs overlap, so each table is its own
                # merge source (chaining would break sort order).
                sources.extend(t.scan(lo_b, hi_b) for t in run)
            else:
                sources.append(level_scan(run, lo_b, hi_b))
        for entry in dedup_newest(k_way_merge(sources)):
            if not entry.tombstone:
                yield entry.key, entry.value

    def __len__(self) -> int:
        """Exact number of live keys, counted via the streaming dedup
        iterator (O(total entries) time, O(levels) memory)."""
        return sum(1 for __ in self.scan())

    def approximate_len(self) -> int:
        """Upper bound on the key count from per-table entry counts
        alone — O(tables), no entry is touched.  Counts duplicate
        versions and tombstones, so it is exact only when every key is
        live and held once."""
        return len(self._memtable) + self.manifest.total_entries()

    @property
    def cache(self) -> ReadCache | None:
        """The shared read cache (None when disabled)."""
        return self._cache

    # ------------------------------------------------------------------
    # Persistence helpers
    # ------------------------------------------------------------------
    def _persist_table(self, table: SSTable) -> None:
        assert self.directory is not None
        path = os.path.join(self.directory, f"sst-{table.table_id:08d}.sst")
        write_sstable(table, path)
        self._write_manifest_file()

    def _sync_persisted_tables(self) -> None:
        """Write new tables, delete dropped ones, rewrite the manifest."""
        if self.directory is None:
            return
        live: set[str] = set()
        for level in range(self.manifest.num_levels):
            for table in self.manifest.level(level):
                name = f"sst-{table.table_id:08d}.sst"
                live.add(name)
                path = os.path.join(self.directory, name)
                if not os.path.exists(path):
                    write_sstable(table, path)
        self._write_manifest_file()
        removed = False
        for name in os.listdir(self.directory):
            if name.startswith("sst-") and name not in live:
                os.remove(os.path.join(self.directory, name))
                removed = True
        if removed:
            fsync_dir(self.directory)

    def _write_manifest_file(self) -> None:
        assert self.directory is not None
        listing = {
            "policy": self._policy.name,
            "levels": {
                str(level): [
                    f"sst-{t.table_id:08d}.sst" for t in self.manifest.level(level)
                ]
                for level in range(self.manifest.num_levels)
            },
        }
        tmp = os.path.join(self.directory, "MANIFEST.json.tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(listing, f)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, os.path.join(self.directory, "MANIFEST.json"))
        # Durability of the rename itself requires syncing the directory.
        fsync_dir(self.directory)
