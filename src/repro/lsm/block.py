"""Binary encoding of sorted entry blocks.

An sstable's data is split into fixed-fanout *blocks* of consecutive
entries.  Each block is encoded independently so readers can fetch and
decode one block per point lookup (the fence pointers in
:mod:`repro.lsm.sstable` map a key to its block).

Layout of one encoded block::

    u32   crc32 of everything after this field
    u32   entry count
    entry*:
        varint key_len | key bytes
        u64    seqno
        f64    timestamp
        u8     tombstone flag
        varint value_len | value bytes

Varints are LEB128 (unsigned).  All fixed-width integers little-endian.
"""

from __future__ import annotations

import struct
import zlib

from .entry import Entry
from .errors import CorruptionError

_FIXED = struct.Struct("<Qd B")  # seqno, timestamp, tombstone


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError("varints are unsigned")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a LEB128 varint at ``offset``; return (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CorruptionError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 63:
            raise CorruptionError("varint too long")


def encode_entries(entries: list[Entry]) -> bytes:
    """Encode entries (already sorted by the caller) into one block."""
    body = bytearray()
    body += struct.pack("<I", len(entries))
    for entry in entries:
        body += encode_varint(len(entry.key))
        body += entry.key
        body += _FIXED.pack(entry.seqno, entry.timestamp, 1 if entry.tombstone else 0)
        body += encode_varint(len(entry.value))
        body += entry.value
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return struct.pack("<I", crc) + bytes(body)


def decode_entries(data: bytes) -> list[Entry]:
    """Decode a block produced by :func:`encode_entries`."""
    if len(data) < 8:
        raise CorruptionError("block too short")
    (stored_crc,) = struct.unpack_from("<I", data, 0)
    body = data[4:]
    if zlib.crc32(body) & 0xFFFFFFFF != stored_crc:
        raise CorruptionError("block checksum mismatch")
    (count,) = struct.unpack_from("<I", body, 0)
    offset = 4
    entries: list[Entry] = []
    for _ in range(count):
        key_len, offset = decode_varint(body, offset)
        key = bytes(body[offset : offset + key_len])
        offset += key_len
        if offset + _FIXED.size > len(body):
            raise CorruptionError("truncated entry header")
        seqno, timestamp, tomb = _FIXED.unpack_from(body, offset)
        offset += _FIXED.size
        value_len, offset = decode_varint(body, offset)
        value = bytes(body[offset : offset + value_len])
        if len(value) != value_len:
            raise CorruptionError("truncated entry value")
        offset += value_len
        entries.append(Entry(key, seqno, timestamp, value, tombstone=bool(tomb)))
    return entries
