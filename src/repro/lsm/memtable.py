"""In-memory write buffer: a hand-rolled skip list memtable.

The memtable is the L0-feeding buffer of the LSM tree.  Writes are
appended here first; when the memtable reaches its threshold the sorted
contents are frozen into an L0 sstable (the paper's "batch ... ordered
and added as a new table in L0").

A skip list gives O(log n) insert and lookup with sorted iteration and no
rebalancing, which is why LevelDB and RocksDB use one.  Ours stores the
newest version per key (newest-wins by ``Entry.version``) plus retains
older versions optionally when a version-retention horizon is configured
(needed by CooLSM's Linearizable+Concurrent garbage-collection rule).
"""

from __future__ import annotations

import random
from typing import Iterator

from .entry import Entry

_MAX_LEVEL = 16
_P = 0.25


class _Node:
    __slots__ = ("key", "versions", "forward")

    def __init__(self, key: bytes | None, level: int) -> None:
        self.key = key
        # Versions of this key, newest first.  Most keys hold exactly one.
        self.versions: list[Entry] = []
        self.forward: list["_Node | None"] = [None] * level


class SkipList:
    """Sorted map from key to a newest-first list of entry versions."""

    def __init__(self, seed: int = 0) -> None:
        self._head = _Node(None, _MAX_LEVEL)
        self._level = 1
        self._rng = random.Random(seed)
        self._num_keys = 0

    def __len__(self) -> int:
        return self._num_keys

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: bytes) -> list[_Node]:
        update = [self._head] * _MAX_LEVEL
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[i]
            update[i] = node
        return update

    def insert(self, entry: Entry, retain_versions: bool = False) -> None:
        """Insert an entry, keeping versions newest-first.

        With ``retain_versions=False`` only the newest version per key is
        kept (classic LSM semantics).  With ``retain_versions=True`` all
        versions are retained for later horizon-aware garbage collection.
        """
        update = self._find_predecessors(entry.key)
        node = update[0].forward[0]
        if node is not None and node.key == entry.key:
            if retain_versions:
                node.versions.append(entry)
                node.versions.sort(key=lambda e: e.version, reverse=True)
            elif not node.versions or entry.version >= node.versions[0].version:
                node.versions = [entry]
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        new_node = _Node(entry.key, level)
        new_node.versions = [entry]
        for i in range(level):
            new_node.forward[i] = update[i].forward[i]
            update[i].forward[i] = new_node
        self._num_keys += 1

    def get(self, key: bytes) -> Entry | None:
        """Return the newest version of ``key``, or None."""
        versions = self.versions(key)
        return versions[0] if versions else None

    def versions(self, key: bytes) -> list[Entry]:
        """All stored versions of ``key``, newest first."""
        node = self._head
        for i in range(self._level - 1, -1, -1):
            nxt = node.forward[i]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[i]
        node = node.forward[0]
        if node is not None and node.key == key:
            return list(node.versions)
        return []

    def __iter__(self) -> Iterator[Entry]:
        """Yield all versions in key order, newest version first per key."""
        node = self._head.forward[0]
        while node is not None:
            yield from node.versions
            node = node.forward[0]

    def range(self, lo: bytes | None, hi: bytes | None) -> Iterator[Entry]:
        """Yield versions with lo <= key < hi (None = unbounded)."""
        node = self._head
        if lo is not None:
            for i in range(self._level - 1, -1, -1):
                nxt = node.forward[i]
                while nxt is not None and nxt.key < lo:  # type: ignore[operator]
                    node = nxt
                    nxt = node.forward[i]
        node = node.forward[0]
        while node is not None and (hi is None or node.key < hi):  # type: ignore[operator]
            yield from node.versions
            node = node.forward[0]


class Memtable:
    """The mutable in-memory buffer at the top of the LSM tree.

    Args:
        capacity_entries: Number of entries after which :meth:`is_full`
            becomes true and the owner should freeze this memtable into
            an L0 sstable.
        retain_versions: Keep all versions per key (CooLSM multi-ingestor
            mode) instead of newest-wins.
        seed: Seed for the skip list's level RNG, for reproducibility.
    """

    def __init__(
        self,
        capacity_entries: int,
        retain_versions: bool = False,
        seed: int = 0,
    ) -> None:
        self.capacity_entries = capacity_entries
        self.retain_versions = retain_versions
        self._list = SkipList(seed=seed)
        self._num_entries = 0

    def __len__(self) -> int:
        return self._num_entries

    @property
    def num_keys(self) -> int:
        return len(self._list)

    def put(self, entry: Entry) -> None:
        """Insert or overwrite an entry."""
        self._list.insert(entry, retain_versions=self.retain_versions)
        self._num_entries += 1

    def get(self, key: bytes) -> Entry | None:
        """Newest version of ``key`` in this memtable, or None."""
        return self._list.get(key)

    def versions(self, key: bytes) -> list[Entry]:
        """All buffered versions of ``key``, newest first."""
        return self._list.versions(key)

    def is_full(self) -> bool:
        return self._num_entries >= self.capacity_entries

    def entries(self) -> list[Entry]:
        """All buffered versions in sorted key order (newest first per key)."""
        return list(self._list)

    def range(self, lo: bytes | None, hi: bytes | None) -> list[Entry]:
        """All buffered versions with lo <= key < hi."""
        return list(self._list.range(lo, hi))

    def iter_range(self, lo: bytes | None, hi: bytes | None) -> Iterator[Entry]:
        """Lazy variant of :meth:`range`.  The iterator walks the live
        skip list, so interleaving writes with iteration is undefined —
        callers that mutate mid-scan should use :meth:`range`."""
        return self._list.range(lo, hi)
