"""Merge iterators: the k-way merge at the heart of every compaction.

Both minor compaction (Ingestor, L0+L1 tiering) and major compaction
(Compactor, L2/L3 leveling) are "k-way merge operations ... removing any
redundancies by only keeping the most recent key-value pair of each key"
(Section III-C).  These generators implement that pipeline:

:func:`k_way_merge`
    Merge sorted entry streams into one stream in sstable order, with a
    deterministic tie-break that prefers streams listed earlier (callers
    list newer sources first).

:func:`dedup_newest`
    Collapse a merged stream to the newest version per key.

:func:`retain_versions_above`
    Horizon-aware garbage collection for Linearizable+Concurrent mode:
    keep the newest version, plus every older version that some ongoing
    or future read (with read-timestamp > horizon) might still need.

:func:`drop_tombstones`
    Remove delete markers (only safe at the bottom level).

:func:`level_scan`
    A lazy cursor over a whole sorted level: chains the per-table scans
    of non-overlapping tables (sorted by min key) into one sorted
    stream, opening each table only when the cursor reaches it.  This is
    the REMIX-style cross-run sorted view that lets an early-terminated
    scan cost O(result) instead of O(level): a k-way merge over one
    ``level_scan`` per level primes one entry per *level*, not one per
    table, and tables beyond the cursor frontier are never touched.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from .entry import Entry


def level_scan(
    tables: "Iterable",
    lo: bytes | None = None,
    hi: bytes | None = None,
) -> Iterator[Entry]:
    """Lazily scan a run of non-overlapping tables in min-key order.

    ``tables`` must be sorted by ``min_key`` and pairwise disjoint (a
    leveled level, or :meth:`Manifest.tables_for_range` output), so
    simple chaining yields globally sorted output.  Tables outside
    ``[lo, hi)`` are skipped via their fence metadata without opening a
    cursor on them; iteration stops at the first table past ``hi``.
    """
    for table in tables:
        if hi is not None and table.min_key >= hi:
            return
        if lo is not None and table.max_key < lo:
            continue
        yield from table.scan(lo, hi)


def k_way_merge(streams: list[Iterable[Entry]]) -> Iterator[Entry]:
    """Merge sorted streams into one stream sorted by (key, version desc).

    Each input stream must already be in sstable order.  Between equal
    (key, version) pairs, entries from earlier streams win, so callers
    should pass newer sources first.
    """
    heap: list[tuple[bytes, float, int, int, Entry, Iterator[Entry]]] = []
    for index, stream in enumerate(streams):
        iterator = iter(stream)
        first = next(iterator, None)
        if first is not None:
            heap.append(_heap_item(first, index, iterator))
    heapq.heapify(heap)
    while heap:
        key, neg_ts, neg_seq, index, entry, iterator = heapq.heappop(heap)
        yield entry
        nxt = next(iterator, None)
        if nxt is not None:
            heapq.heappush(heap, _heap_item(nxt, index, iterator))


def _heap_item(entry: Entry, index: int, iterator: Iterator[Entry]):
    # Sort by key asc, then version desc (newest first), then stream index.
    return (entry.key, -entry.timestamp, -entry.seqno, index, entry, iterator)


def dedup_newest(merged: Iterable[Entry]) -> Iterator[Entry]:
    """Keep only the newest version of each key from a merged stream."""
    last_key: bytes | None = None
    for entry in merged:
        if entry.key != last_key:
            yield entry
            last_key = entry.key


def retain_versions_above(merged: Iterable[Entry], horizon: float) -> Iterator[Entry]:
    """Horizon-aware version retention (Section III-E, GC rule).

    A version may be garbage collected only if the *newer* version that
    supersedes it has a timestamp <= ``horizon`` — i.e. no current or
    future read (whose read timestamps are all > horizon) could still
    need the old version.  The newest version of each key is always kept.
    """
    last_key: bytes | None = None
    superseding_ts = 0.0
    for entry in merged:
        if entry.key != last_key:
            yield entry
            last_key = entry.key
            superseding_ts = entry.timestamp
        elif superseding_ts > horizon:
            yield entry
            superseding_ts = entry.timestamp


def drop_tombstones(stream: Iterable[Entry]) -> Iterator[Entry]:
    """Filter out tombstones (safe only when merging into the last level)."""
    return (entry for entry in stream if not entry.tombstone)


def chunk_into_runs(stream: Iterable[Entry], run_size: int) -> Iterator[list[Entry]]:
    """Split a sorted stream into consecutive chunks of ``run_size`` entries.

    Used after a merge to cut the output back into fixed-size sstables
    ("divided into ordered sstables, where the size of an sstable is
    predetermined" — Section III-C).  Never splits versions of one key
    across two chunks, so per-table version lists stay intact.
    """
    chunk: list[Entry] = []
    for entry in stream:
        if len(chunk) >= run_size and chunk[-1].key != entry.key:
            yield chunk
            chunk = []
        chunk.append(entry)
    if chunk:
        yield chunk
