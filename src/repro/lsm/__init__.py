"""Single-node LSM tree substrate, built from scratch.

This subpackage implements everything a classic LSM engine needs —
memtable, sstables with bloom filters and fence pointers, WAL, manifest,
tiering and leveling compaction — and exposes :class:`LSMTree` as an
embeddable key-value store.  CooLSM (:mod:`repro.core`) deconstructs
these same parts across Ingestor, Compactor, and Reader nodes.
"""

from .amplification import (
    AmplificationReport,
    measure_cluster,
    measure_lsm_tree,
    measure_tiered_tree,
)
from .bloom import BloomFilter
from .cache import MISS, CacheStats, ReadCache
from .compaction import (
    CompactionResult,
    CompactionStats,
    KeepPolicy,
    NEWEST_WINS,
    major_compaction,
    merge_tables,
    minor_compaction,
    select_overflow,
    select_overflow_rotating,
)
from .entry import Entry, encode_key, encode_value, make_tombstone, make_upsert
from .errors import (
    ClosedError,
    CorruptionError,
    InvalidConfigError,
    InvalidKeyError,
    LSMError,
    ManifestError,
)
from .iterators import (
    chunk_into_runs,
    dedup_newest,
    drop_tombstones,
    k_way_merge,
    level_scan,
    retain_versions_above,
)
from .manifest import LevelEdit, LevelFenceIndex, Manifest
from .memtable import Memtable, SkipList
from .sortedview import SortedView, SortedViewManager, ViewSegment
from .sstable import SSTable, sort_run
from .sstable_io import SSTableReader, read_sstable, write_sstable
from .tree import CompactionEvent, LSMConfig, LSMTree, Snapshot, TreeStats
from .tuning import (
    LSMShape,
    TuningComparison,
    bloom_false_positive_rate,
    expected_zero_result_probes,
    leveled_space_amplification,
    leveled_write_cost,
    optimal_bloom_allocation,
    point_lookup_cost,
    tiered_space_amplification,
    tiered_write_cost,
    uniform_bloom_allocation,
)
from .wal import WriteAheadLog, replay

__all__ = [
    "AmplificationReport",
    "BloomFilter",
    "CacheStats",
    "ClosedError",
    "CompactionEvent",
    "CompactionResult",
    "CompactionStats",
    "CorruptionError",
    "Entry",
    "InvalidConfigError",
    "InvalidKeyError",
    "KeepPolicy",
    "LSMConfig",
    "LSMError",
    "LSMShape",
    "LSMTree",
    "LevelEdit",
    "LevelFenceIndex",
    "MISS",
    "Manifest",
    "ManifestError",
    "Memtable",
    "NEWEST_WINS",
    "ReadCache",
    "SSTable",
    "SSTableReader",
    "SkipList",
    "Snapshot",
    "SortedView",
    "SortedViewManager",
    "TreeStats",
    "ViewSegment",
    "TuningComparison",
    "WriteAheadLog",
    "bloom_false_positive_rate",
    "chunk_into_runs",
    "dedup_newest",
    "drop_tombstones",
    "encode_key",
    "encode_value",
    "expected_zero_result_probes",
    "k_way_merge",
    "level_scan",
    "leveled_space_amplification",
    "leveled_write_cost",
    "major_compaction",
    "make_tombstone",
    "make_upsert",
    "measure_cluster",
    "measure_lsm_tree",
    "measure_tiered_tree",
    "merge_tables",
    "minor_compaction",
    "optimal_bloom_allocation",
    "point_lookup_cost",
    "read_sstable",
    "replay",
    "retain_versions_above",
    "select_overflow",
    "select_overflow_rotating",
    "sort_run",
    "tiered_space_amplification",
    "tiered_write_cost",
    "uniform_bloom_allocation",
    "write_sstable",
]
