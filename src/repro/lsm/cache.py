"""Read cache: a capacity-bounded block-and-row cache shared per tree.

LSM read performance is dominated by repeated work on hot keys: the same
bloom probes, fence-pointer bisects, and block fetches run over and over
for a zipfian read mix.  An LSM-aware cache (cf. *Re-enabling high-speed
caching for LSM-trees*, arXiv:1606.02015) removes that repetition while
staying trivially coherent, because it exploits the engine's core
invariant: **sstables are immutable**.  Every cache key is scoped by a
``table_id`` that is never reused, so a cached result can never become
stale — compactions simply stop referencing old tables and their cached
rows age out via normal eviction.  No invalidation protocol is needed.

Two kinds of entries share one capacity budget:

* **row entries** ``(ROW, table_id, key) -> tuple[Entry, ...]`` — the
  result of a key lookup inside one table (all versions, newest first;
  the empty tuple caches a confirmed miss after a bloom false positive);
* **block entries** ``(BLOCK, table_id, block_index) -> list[Entry]`` —
  a decoded data block (used by the on-disk reader to skip file I/O).

Two eviction policies are provided: classic **LRU** (ordered-dict
move-to-end) and **CLOCK** (second-chance ring), selectable per cache.
LRU is the default; CLOCK trades a little hit rate for O(1) updates on
hit, which matters when the cache front-runs every single read.

Counters (:class:`CacheStats`) record hits, misses, insertions, and
evictions, plus bloom-filter probe accounting filled in by
:meth:`~repro.lsm.sstable.SSTable.versions` — the observability surface
for ``BENCH_read_path.json`` and the cluster monitor.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from .errors import InvalidConfigError

#: Sentinel returned by :meth:`ReadCache.get` on a miss (``None`` is a
#: legitimate cached value: "this table does not contain the key").
MISS = object()

#: Cache-key namespaces.
ROW = "row"
BLOCK = "block"
BLOCK_RANGE = "brange"


@dataclass(slots=True)
class CacheStats:
    """Cumulative counters of one :class:`ReadCache`.

    ``bloom_probes`` / ``bloom_negatives`` are incremented by the
    sstable lookup path when it consults a bloom filter on the way to
    (or instead of) the cache, so one stats object tells the whole
    read-path story: how often the bloom filter short-circuited, how
    often the cache absorbed the block search, and how often real work
    happened.
    """

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0
    bloom_probes: int = 0
    bloom_negatives: int = 0
    #: Block-range lookups (sorted-view scans), counted separately so
    #: the scan bench and monitor can tell span reuse from row traffic;
    #: these lookups also count into the generic hits/misses above.
    block_range_hits: int = 0
    block_range_misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.bloom_probes = 0
        self.bloom_negatives = 0
        self.block_range_hits = 0
        self.block_range_misses = 0


class ReadCache:
    """A bounded cache over hashable keys with pluggable eviction.

    Args:
        capacity: Maximum number of cached entries (> 0).
        policy: ``"lru"`` (default) or ``"clock"``.
        stats: Optionally share an external :class:`CacheStats` (the
            tree embeds the same object in :class:`~repro.lsm.tree.TreeStats`).
    """

    __slots__ = ("capacity", "policy", "stats", "_entries", "_hand")

    def __init__(
        self,
        capacity: int,
        policy: str = "lru",
        stats: CacheStats | None = None,
    ) -> None:
        if capacity <= 0:
            raise InvalidConfigError("cache capacity must be positive")
        if policy not in ("lru", "clock"):
            raise InvalidConfigError(f"unknown cache policy: {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self.stats = stats if stats is not None else CacheStats()
        # LRU: key -> value, ordered oldest-first.
        # CLOCK: key -> [value, referenced_bit], insertion-ordered ring.
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hand = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    # Core get/put
    # ------------------------------------------------------------------
    def get(self, key: Hashable):
        """The cached value for ``key``, or :data:`MISS`."""
        entry = self._entries.get(key, MISS)
        if entry is MISS:
            self.stats.misses += 1
            return MISS
        self.stats.hits += 1
        if self.policy == "lru":
            self._entries.move_to_end(key)
            return entry
        entry[1] = True  # CLOCK: second chance
        return entry[0]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``; evicts per policy when full."""
        if key in self._entries:
            if self.policy == "lru":
                self._entries[key] = value
                self._entries.move_to_end(key)
            else:
                self._entries[key][0] = value
                self._entries[key][1] = True
            return
        while len(self._entries) >= self.capacity:
            self._evict_one()
        self._entries[key] = value if self.policy == "lru" else [value, False]
        self.stats.inserts += 1

    def _evict_one(self) -> None:
        if self.policy == "lru":
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            return
        # CLOCK: sweep the ring from the hand, clearing referenced bits
        # until an unreferenced victim is found.  Bounded: after one full
        # sweep every bit is clear.
        keys = list(self._entries.keys())
        hand = self._hand % len(keys)
        for _ in range(2 * len(keys)):
            key = keys[hand]
            slot = self._entries[key]
            if slot[1]:
                slot[1] = False
                hand = (hand + 1) % len(keys)
                continue
            del self._entries[key]
            self._hand = hand
            self.stats.evictions += 1
            return
        # Unreachable, but never loop forever on an inconsistent ring.
        self._entries.popitem(last=False)  # pragma: no cover
        self.stats.evictions += 1  # pragma: no cover

    def clear(self) -> None:
        """Drop every entry (counters survive; crash/recovery path)."""
        self._entries.clear()
        self._hand = 0

    # ------------------------------------------------------------------
    # Namespaced helpers
    # ------------------------------------------------------------------
    def get_row(self, table_id: int, key: bytes):
        """Cached version tuple for ``key`` in table ``table_id``, or MISS."""
        return self.get((ROW, table_id, key))

    def put_row(self, table_id: int, key: bytes, versions: tuple) -> None:
        self.put((ROW, table_id, key), versions)

    def get_block(self, table_id: int, block_index: int):
        """Cached decoded block, or MISS."""
        return self.get((BLOCK, table_id, block_index))

    def put_block(self, table_id: int, block_index: int, entries: list) -> None:
        self.put((BLOCK, table_id, block_index), entries)

    def get_block_range(self, table_id: int, block_range: tuple[int, int]):
        """Cached contiguous block span ``(first_block, last_block)`` of
        one table — the sorted view's per-(segment, table) fetch unit —
        or MISS.  Immutability keeps span entries permanently valid, same
        as rows and single blocks."""
        value = self.get((BLOCK_RANGE, table_id, block_range))
        if value is MISS:
            self.stats.block_range_misses += 1
        else:
            self.stats.block_range_hits += 1
        return value

    def put_block_range(
        self, table_id: int, block_range: tuple[int, int], entries: list
    ) -> None:
        self.put((BLOCK_RANGE, table_id, block_range), entries)
