"""Write-ahead log: durability for the memtable.

Entries buffered in the memtable would be lost on a crash, so the
embedded engine appends every write to a WAL first.  On restart,
:func:`replay` reconstructs the memtable contents.  CooLSM's recovery
story (Section III-H) relies on each node being able to "recover a
consistent, recent state of operation after a failure" — the WAL plus
the sstable manifest provide exactly that for a single node.

Record format (length-prefixed, individually checksummed)::

    u32 crc32 | u32 payload_length | payload

where ``payload`` is one entry encoded with :mod:`repro.lsm.block`'s
entry layout.  A torn final record (partial write during a crash) is
detected by length/CRC and silently discarded; anything corrupt before
the tail raises :class:`~repro.lsm.errors.CorruptionError`.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Iterator

from .block import decode_entries, encode_entries
from .entry import Entry
from .errors import ClosedError, CorruptionError

_HEADER = struct.Struct("<II")


class WriteAheadLog:
    """Append-only durable log of entries.

    Args:
        path: Log file path (created if missing).
        sync: If True, fsync after every append (the paper runs LevelDB
            and RocksDB "with configuration to persist and sync to
            disk"; set False to trade durability for speed).
    """

    def __init__(self, path: str, sync: bool = True) -> None:
        self.path = path
        self.sync = sync
        self._file = open(path, "ab")
        self._closed = False

    def append(self, entry: Entry) -> None:
        """Durably append one entry."""
        self.append_batch([entry])

    def append_batch(self, entries: list[Entry]) -> None:
        """Durably append a batch of entries as one record."""
        if self._closed:
            raise ClosedError("WAL is closed")
        payload = encode_entries(entries)
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        self._file.write(_HEADER.pack(crc, len(payload)) + payload)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def truncate(self) -> None:
        """Discard all records (called after the memtable is flushed)."""
        if self._closed:
            raise ClosedError("WAL is closed")
        self._file.truncate(0)
        self._file.seek(0)
        self._file.flush()
        if self.sync:
            os.fsync(self._file.fileno())


def replay(path: str) -> Iterator[Entry]:
    """Yield all entries recorded in the WAL at ``path``, oldest first.

    A torn record at the very end of the file (the result of a crash
    mid-append) is ignored; corruption anywhere else raises
    :class:`CorruptionError`.
    """
    if not os.path.exists(path):
        return
    with open(path, "rb") as f:
        data = f.read()
    offset = 0
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            return  # torn header at tail
        crc, length = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            return  # torn payload at tail
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            if end == len(data):
                return  # corrupt tail record: treat as torn
            raise CorruptionError(f"{path}: corrupt WAL record at offset {offset}")
        yield from decode_entries(payload)
        offset = end
