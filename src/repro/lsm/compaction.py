"""Compaction policies: tiering (L0/L1) and leveling (L2/L3).

The paper's tree (Figure 1a) uses *tiering* between L0 and L1 — minor
compaction merges everything in both levels into a fresh L1 run — and
*leveling* for higher levels — major compaction merges incoming tables
only with the overlapping tables of the target level.

These are pure functions over immutable sstables; the caller (an
``LSMTree``, Ingestor, or Compactor) applies the results atomically via
a :class:`~repro.lsm.manifest.LevelEdit`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .entry import Entry
from .iterators import (
    chunk_into_runs,
    dedup_newest,
    drop_tombstones,
    k_way_merge,
    level_scan,
    retain_versions_above,
)
from .sstable import SSTable


@dataclass(frozen=True, slots=True)
class KeepPolicy:
    """What survives a merge.

    Attributes:
        retain_horizon: If None, classic newest-wins dedup.  Otherwise,
            retain old versions whose superseding version has timestamp
            greater than this horizon (the Linearizable+Concurrent GC
            rule of Section III-E: never collect a version that an
            in-flight read might still need).
        drop_tombstones: Remove delete markers from the output.  Only
            safe when merging into the bottom level.
    """

    retain_horizon: float | None = None
    drop_tombstones: bool = False

    def apply(self, merged: Iterable[Entry]) -> Iterable[Entry]:
        """Run the policy over a merged, sorted entry stream."""
        if self.retain_horizon is None:
            stream = dedup_newest(merged)
        else:
            stream = retain_versions_above(merged, self.retain_horizon)
        if self.drop_tombstones:
            stream = drop_tombstones(stream)
        return stream


#: Classic LSM semantics: newest version wins, tombstones kept.
NEWEST_WINS = KeepPolicy()


@dataclass(slots=True)
class CompactionStats:
    """Accounting for one compaction, used by the cost model and Figure 4."""

    entries_in: int = 0
    entries_out: int = 0
    tables_in: int = 0
    tables_out: int = 0
    overlap_tables: int = 0

    @property
    def entries_dropped(self) -> int:
        return self.entries_in - self.entries_out


@dataclass(slots=True)
class CompactionResult:
    """Output of a compaction: new tables plus accounting."""

    tables: list[SSTable]
    stats: CompactionStats = field(default_factory=CompactionStats)


def merge_tables(
    tables: list[SSTable],
    run_size: int,
    policy: KeepPolicy = NEWEST_WINS,
    level_run: list[SSTable] | None = None,
) -> CompactionResult:
    """K-way merge ``tables`` (newer sources first) into fixed-size runs.

    ``level_run``, if given, is a disjoint min-key-sorted run (a leveled
    target level) merged as the *oldest* source: its tables are chained
    into one lazy :func:`level_scan` cursor, so the merge heap holds one
    entry for the whole run instead of one per table.
    """
    level_run = level_run or []
    stats = CompactionStats(
        entries_in=sum(len(t) for t in tables) + sum(len(t) for t in level_run),
        tables_in=len(tables) + len(level_run),
    )
    streams: list = [t.entries for t in tables]
    if level_run:
        streams.append(level_scan(level_run))
    merged = k_way_merge(streams)
    kept = policy.apply(merged)
    out_tables = [SSTable(chunk) for chunk in chunk_into_runs(kept, run_size)]
    stats.entries_out = sum(len(t) for t in out_tables)
    stats.tables_out = len(out_tables)
    return CompactionResult(out_tables, stats)


def _is_disjoint_run(tables: list[SSTable]) -> bool:
    """True when ``tables`` are min-key-sorted and pairwise disjoint —
    the precondition for chaining them into one sorted stream."""
    for left, right in zip(tables, tables[1:]):
        if left.max_key >= right.min_key:
            return False
    return True


def minor_compaction(
    l0_tables: list[SSTable],
    l1_tables: list[SSTable],
    run_size: int,
    policy: KeepPolicy = NEWEST_WINS,
) -> CompactionResult:
    """Tiering compaction of all of L0 and L1 into a fresh L1 run.

    "The Ingestor sorts all the key-value pairs in L0 and L1, removing
    any redundancies ... divided into ordered sstables" (Section III-C).
    L0 tables must be passed newest-first; they take precedence over L1.
    """
    return merge_tables(list(l0_tables) + list(l1_tables), run_size, policy)


def select_overflow(
    tables: list[SSTable], threshold: int
) -> tuple[list[SSTable], list[SSTable]]:
    """Split a sorted run into (kept, overflow) when over threshold.

    The paper forwards "the extra sstables that exceed the threshold".
    This variant deterministically picks the tables at the *high-key
    tail* of the run (a contiguous key range, which minimises partition
    splitting).  Prefer :func:`select_overflow_rotating` in steady-state
    pipelines: always taking the tail starves low keys and concentrates
    repeated merges onto one region of the next level.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if len(tables) <= threshold:
        return list(tables), []
    ordered = sorted(tables, key=lambda t: t.min_key)
    return ordered[:threshold], ordered[threshold:]


def select_overflow_rotating(
    tables: list[SSTable], threshold: int, pointer: bytes | None
) -> tuple[list[SSTable], list[SSTable], bytes | None]:
    """Overflow selection with a rotating compaction pointer.

    Picks the excess tables as a contiguous (wrapping) window starting
    just above ``pointer``, LevelDB-style, so successive compactions
    sweep the whole key space instead of hammering one region.  Returns
    ``(kept, overflow, new_pointer)`` where ``new_pointer`` is the max
    key of the last selected table (None resets to the start).
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if len(tables) <= threshold:
        return list(tables), [], pointer
    ordered = sorted(tables, key=lambda t: t.min_key)
    excess = len(ordered) - threshold
    start = 0
    if pointer is not None:
        for index, table in enumerate(ordered):
            if table.min_key > pointer:
                start = index
                break
    selected_indices = [(start + i) % len(ordered) for i in range(excess)]
    selected_set = set(selected_indices)
    overflow = [ordered[i] for i in selected_indices]
    kept = [t for i, t in enumerate(ordered) if i not in selected_set]
    new_pointer = ordered[selected_indices[-1]].max_key
    if selected_indices[-1] == len(ordered) - 1:
        new_pointer = None  # wrapped past the end: restart the sweep
    return kept, overflow, new_pointer


def find_overlaps(
    level_tables: list[SSTable], lo: bytes, hi: bytes
) -> tuple[list[SSTable], list[SSTable]]:
    """Partition a level into (overlapping, disjoint) w.r.t. [lo, hi]."""
    overlapping = [t for t in level_tables if t.overlaps(lo, hi)]
    disjoint = [t for t in level_tables if not t.overlaps(lo, hi)]
    return overlapping, disjoint


def major_compaction(
    incoming: list[SSTable],
    level_tables: list[SSTable],
    run_size: int,
    policy: KeepPolicy = NEWEST_WINS,
) -> tuple[CompactionResult, list[SSTable]]:
    """Leveling compaction of ``incoming`` tables into a level.

    Only tables of the level that overlap the incoming key range take
    part in the merge ("the compaction process affects sstables in L2
    that overlaps with the range of the received sstable" — III-C).

    Returns ``(result, untouched)`` where ``result.tables`` replace the
    overlapping tables and ``untouched`` are the level's tables that did
    not participate.  The caller swaps them in atomically.
    """
    if not incoming:
        return CompactionResult([], CompactionStats()), list(level_tables)
    lo = min(t.min_key for t in incoming)
    hi = max(t.max_key for t in incoming)
    overlapping, untouched = find_overlaps(level_tables, lo, hi)
    if _is_disjoint_run(overlapping):
        result = merge_tables(
            list(incoming), run_size, policy, level_run=overlapping
        )
    else:
        # Defensive: a caller handed us an overlapping target level —
        # merge table-by-table, which is always order-correct.
        result = merge_tables(list(incoming) + overlapping, run_size, policy)
    result.stats.overlap_tables = len(overlapping)
    return result, untouched
