"""Immutable sorted string tables (sstables) with bloom filters and
fence pointers.

An :class:`SSTable` is the unit that moves through the LSM tree — and,
in CooLSM, the unit that moves *between machines* (Ingestor → Compactor
→ Reader).  It is an immutable, key-sorted run of entries:

* a **bloom filter** over the keys answers "definitely absent" cheaply;
* **fence pointers** (the first key of each block) narrow a point lookup
  to a single block, which is then binary-searched.

The paper attributes CooLSM's flat read latency (Figure 6) to exactly
these two structures.

Entries within a table are sorted by ``(key, version descending)`` so a
table may hold several versions of one key (needed when CooLSM's
GC-horizon retains versions).  Classic tables hold one version per key.

Lookups optionally go through a :class:`~repro.lsm.cache.ReadCache`:
because tables are immutable and ``table_id`` is never reused, a cached
``(table_id, key) -> versions`` result is valid forever, so the cache
needs no invalidation — only eviction.

Observability: each table counts how many scan cursors were actually
opened on it (:attr:`SSTable.opens`) and how many point lookups reached
its block search (:attr:`SSTable.probes`).  Laziness tests use these to
prove an early-terminated scan never touched tables beyond its cursor
frontier.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Iterator, Sequence

from .bloom import BloomFilter
from .cache import MISS, ReadCache
from .entry import Entry
from .errors import InvalidConfigError

#: Number of entries per data block (fence-pointer granularity).
DEFAULT_BLOCK_ENTRIES = 64

_next_table_id = 1

#: Bits reserved for the per-process counter under :func:`seed_table_ids`.
_TABLE_ID_NAMESPACE_SHIFT = 40


def next_table_id() -> int:
    """Process-wide unique id for newly built sstables."""
    global _next_table_id
    table_id = _next_table_id
    _next_table_id += 1
    return table_id


def seed_table_ids(namespace: int) -> None:
    """Re-base the table-id counter into a private per-process range.

    Table ids must be unique across every node of a deployment (they key
    read caches and the Reader's seen-removals set).  In the simulator
    all nodes share one process so the plain counter suffices; in the
    live runtime each node is its own process, so each calls this once
    at startup with its distinct node index and draws ids from
    ``(namespace << 40) + 1`` upward — disjoint ranges, no coordination.
    """
    if not 0 <= namespace < (1 << 20):
        raise InvalidConfigError(f"table-id namespace out of range: {namespace}")
    global _next_table_id
    _next_table_id = (namespace << _TABLE_ID_NAMESPACE_SHIFT) + 1


def advance_table_ids(minimum: int) -> None:
    """Ensure future ids are ``>= minimum`` (never rewinds).

    A restarted live node re-seeds its namespace from scratch, which
    would re-issue ids its recovered on-disk sstables already hold;
    recovery calls this with ``max recovered id + 1`` so fresh tables
    never collide with persisted ones.
    """
    global _next_table_id
    _next_table_id = max(_next_table_id, minimum)


def sort_run(entries: Sequence[Entry]) -> list[Entry]:
    """Sort entries into sstable order: key ascending, version descending."""
    return sorted(entries, key=lambda e: (e.key, (-e.timestamp, -e.seqno)))


class SSTable:
    """An immutable sorted run of entries.

    Build with :meth:`from_entries` (sorts and validates) or pass
    pre-sorted entries to the constructor.

    Args:
        entries: Entries in sstable order (see :func:`sort_run`).
        block_entries: Fence-pointer granularity.
        bloom_fp_rate: Target bloom false-positive rate (retained on the
            table so derived tables — e.g. :meth:`split_at` pieces —
            inherit it).
        table_id: Unique id; allocated automatically if omitted.
        bloom: A pre-built filter over exactly these entries' keys (the
            on-disk reader passes its deserialised filter to avoid a
            rebuild); built from scratch when omitted.
    """

    __slots__ = (
        "table_id",
        "entries",
        "min_key",
        "max_key",
        "bloom",
        "bloom_fp_rate",
        "opens",
        "probes",
        "_fences",
        "_keys",
        "_block_entries",
    )

    def __init__(
        self,
        entries: list[Entry],
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        bloom_fp_rate: float = 0.01,
        table_id: int | None = None,
        bloom: BloomFilter | None = None,
    ) -> None:
        if not entries:
            raise InvalidConfigError("an sstable must contain at least one entry")
        if block_entries <= 0:
            raise InvalidConfigError("block_entries must be positive")
        self.table_id = next_table_id() if table_id is None else table_id
        self.entries = entries
        self.min_key = entries[0].key
        self.max_key = entries[-1].key
        self._block_entries = block_entries
        self.bloom_fp_rate = bloom_fp_rate
        # Fence pointers: first key of each block.
        self._fences = [entries[i].key for i in range(0, len(entries), block_entries)]
        self._keys = [e.key for e in entries]
        self.bloom = (
            bloom
            if bloom is not None
            else BloomFilter.build((e.key for e in entries), bloom_fp_rate)
        )
        self.opens = 0
        self.probes = 0

    @classmethod
    def from_entries(
        cls,
        entries: Sequence[Entry],
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        bloom_fp_rate: float = 0.01,
    ) -> "SSTable":
        """Sort arbitrary entries into sstable order and build a table."""
        return cls(sort_run(entries), block_entries, bloom_fp_rate)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSTable(id={self.table_id}, n={len(self.entries)}, "
            f"range=[{self.min_key!r}, {self.max_key!r}])"
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def key_in_range(self, key: bytes) -> bool:
        """True if ``key`` falls within [min_key, max_key]."""
        return self.min_key <= key <= self.max_key

    def overlaps(self, lo: bytes, hi: bytes) -> bool:
        """True if this table's key range intersects [lo, hi]."""
        return self.min_key <= hi and lo <= self.max_key

    def overlaps_table(self, other: "SSTable") -> bool:
        """True if this table's key range intersects ``other``'s."""
        return self.overlaps(other.min_key, other.max_key)

    def get(self, key: bytes, cache: ReadCache | None = None) -> Entry | None:
        """Newest version of ``key`` in this table, or None.

        Consults the row cache (if given), then the bloom filter, then
        fence pointers and binary search within the run — the read path
        the paper describes.
        """
        versions = self.versions(key, cache)
        return versions[0] if versions else None

    def versions(self, key: bytes, cache: ReadCache | None = None) -> list[Entry]:
        """All versions of ``key`` in this table, newest first.

        With a cache, the ``(table_id, key) -> versions`` result —
        including the empty "bloom false positive" outcome — is served
        from and stored into the cache; immutability makes the cached
        value permanently valid.
        """
        if not self.key_in_range(key):
            return []
        if cache is not None:
            cached = cache.get_row(self.table_id, key)
            if cached is not MISS:
                return list(cached)
            cache.stats.bloom_probes += 1
            if not self.bloom.might_contain(key):
                cache.stats.bloom_negatives += 1
                # Memoise the negative too: re-reads of a hot key skip
                # even the bloom probe on tables that lack the key.
                cache.put_row(self.table_id, key, ())
                return []
        elif not self.bloom.might_contain(key):
            return []
        self.probes += 1
        idx = bisect.bisect_left(self._keys, key)
        out = []
        # Versions are stored newest-first per key, so the *first*
        # occurrence in the run is the newest — found directly with a
        # lower-bound search (a key's versions may span block
        # boundaries, so a per-block search could land on older ones).
        while idx < len(self.entries) and self.entries[idx].key == key:
            out.append(self.entries[idx])
            idx += 1
        if cache is not None:
            cache.put_row(self.table_id, key, tuple(out))
        return out

    def scan(self, lo: bytes | None = None, hi: bytes | None = None) -> Iterator[Entry]:
        """Iterate entries with lo <= key < hi (None = unbounded).

        Lazy: no work happens (and :attr:`opens` is not incremented)
        until the first entry is requested, so a k-way merge that never
        reaches this table never touches it.
        """
        self.opens += 1
        start = 0
        if lo is not None:
            start = bisect.bisect_left(self._keys, lo)
        for entry in itertools.islice(self.entries, start, None):
            if hi is not None and entry.key >= hi:
                return
            yield entry

    @property
    def block_entries(self) -> int:
        """Entries per data block (fence-pointer granularity)."""
        return self._block_entries

    def scan_with_offsets(
        self, lo: bytes | None = None, hi: bytes | None = None
    ) -> Iterator[tuple[int, Entry]]:
        """Like :meth:`scan`, but yields ``(offset, entry)`` where
        ``offset`` indexes :attr:`entries` — a stable anchor, since the
        table is immutable and the on-disk format round-trips entries in
        order.  The sorted view records these anchors instead of values.
        """
        self.opens += 1
        start = 0
        if lo is not None:
            start = bisect.bisect_left(self._keys, lo)
        for offset in range(start, len(self.entries)):
            entry = self.entries[offset]
            if hi is not None and entry.key >= hi:
                return
            yield offset, entry

    # ------------------------------------------------------------------
    # Splitting (used when an sstable straddles compactor partitions)
    # ------------------------------------------------------------------
    def split_at(self, boundaries: list[bytes]) -> list["SSTable"]:
        """Split this table at the given sorted key boundaries.

        Returns one table per non-empty segment; segment *i* holds keys
        in ``[boundaries[i-1], boundaries[i])`` with open ends at the
        extremes.  Used by the Ingestor when a forwarded sstable spans
        more than one Compactor's range (Section III-C).

        Pieces inherit this table's block granularity and bloom
        false-positive rate, and are sliced directly out of the parent's
        already-sorted run (no per-entry re-accumulation).
        """
        cuts = [0]
        for bound in boundaries:
            cuts.append(bisect.bisect_left(self._keys, bound))
        cuts.append(len(self.entries))
        pieces: list[SSTable] = []
        for start, stop in zip(cuts, cuts[1:]):
            if stop > start:
                pieces.append(
                    SSTable(
                        self.entries[start:stop],
                        self._block_entries,
                        self.bloom_fp_rate,
                    )
                )
        return pieces
