"""Immutable sorted string tables (sstables) with bloom filters and
fence pointers.

An :class:`SSTable` is the unit that moves through the LSM tree — and,
in CooLSM, the unit that moves *between machines* (Ingestor → Compactor
→ Reader).  It is an immutable, key-sorted run of entries:

* a **bloom filter** over the keys answers "definitely absent" cheaply;
* **fence pointers** (the first key of each block) narrow a point lookup
  to a single block, which is then binary-searched.

The paper attributes CooLSM's flat read latency (Figure 6) to exactly
these two structures.

Entries within a table are sorted by ``(key, version descending)`` so a
table may hold several versions of one key (needed when CooLSM's
GC-horizon retains versions).  Classic tables hold one version per key.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Iterator, Sequence

from .bloom import BloomFilter
from .entry import Entry
from .errors import InvalidConfigError

#: Number of entries per data block (fence-pointer granularity).
DEFAULT_BLOCK_ENTRIES = 64

_table_id_counter = itertools.count(1)


def next_table_id() -> int:
    """Process-wide unique id for newly built sstables."""
    return next(_table_id_counter)


def sort_run(entries: Sequence[Entry]) -> list[Entry]:
    """Sort entries into sstable order: key ascending, version descending."""
    return sorted(entries, key=lambda e: (e.key, (-e.timestamp, -e.seqno)))


class SSTable:
    """An immutable sorted run of entries.

    Build with :meth:`from_entries` (sorts and validates) or pass
    pre-sorted entries to the constructor.

    Args:
        entries: Entries in sstable order (see :func:`sort_run`).
        block_entries: Fence-pointer granularity.
        bloom_fp_rate: Target bloom false-positive rate.
        table_id: Unique id; allocated automatically if omitted.
    """

    __slots__ = (
        "table_id",
        "entries",
        "min_key",
        "max_key",
        "bloom",
        "_fences",
        "_keys",
        "_block_entries",
    )

    def __init__(
        self,
        entries: list[Entry],
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        bloom_fp_rate: float = 0.01,
        table_id: int | None = None,
    ) -> None:
        if not entries:
            raise InvalidConfigError("an sstable must contain at least one entry")
        if block_entries <= 0:
            raise InvalidConfigError("block_entries must be positive")
        self.table_id = next_table_id() if table_id is None else table_id
        self.entries = entries
        self.min_key = entries[0].key
        self.max_key = entries[-1].key
        self._block_entries = block_entries
        # Fence pointers: first key of each block.
        self._fences = [entries[i].key for i in range(0, len(entries), block_entries)]
        self._keys = [e.key for e in entries]
        self.bloom = BloomFilter.build((e.key for e in entries), bloom_fp_rate)

    @classmethod
    def from_entries(
        cls,
        entries: Sequence[Entry],
        block_entries: int = DEFAULT_BLOCK_ENTRIES,
        bloom_fp_rate: float = 0.01,
    ) -> "SSTable":
        """Sort arbitrary entries into sstable order and build a table."""
        return cls(sort_run(entries), block_entries, bloom_fp_rate)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SSTable(id={self.table_id}, n={len(self.entries)}, "
            f"range=[{self.min_key!r}, {self.max_key!r}])"
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def key_in_range(self, key: bytes) -> bool:
        """True if ``key`` falls within [min_key, max_key]."""
        return self.min_key <= key <= self.max_key

    def overlaps(self, lo: bytes, hi: bytes) -> bool:
        """True if this table's key range intersects [lo, hi]."""
        return self.min_key <= hi and lo <= self.max_key

    def overlaps_table(self, other: "SSTable") -> bool:
        """True if this table's key range intersects ``other``'s."""
        return self.overlaps(other.min_key, other.max_key)

    def get(self, key: bytes) -> Entry | None:
        """Newest version of ``key`` in this table, or None.

        Consults the bloom filter, then fence pointers, then binary
        search within the selected block — the read path the paper
        describes.  Returns the number of probes via :meth:`probe_cost`
        style accounting on the caller side.
        """
        if not self.key_in_range(key) or not self.bloom.might_contain(key):
            return None
        # Versions are stored newest-first per key, so the *first*
        # occurrence in the run is the newest — found directly with a
        # lower-bound search (a key's versions may span block
        # boundaries, so a per-block search could land on older ones).
        index = bisect.bisect_left(self._keys, key)
        if index < len(self.entries) and self.entries[index].key == key:
            return self.entries[index]
        return None

    def versions(self, key: bytes) -> list[Entry]:
        """All versions of ``key`` in this table, newest first."""
        if not self.key_in_range(key) or not self.bloom.might_contain(key):
            return []
        idx = bisect.bisect_left(self._keys, key)
        out = []
        while idx < len(self.entries) and self.entries[idx].key == key:
            out.append(self.entries[idx])
            idx += 1
        return out

    def scan(self, lo: bytes | None = None, hi: bytes | None = None) -> Iterator[Entry]:
        """Iterate entries with lo <= key < hi (None = unbounded)."""
        start = 0
        if lo is not None:
            start = bisect.bisect_left(self._keys, lo)
        for entry in itertools.islice(self.entries, start, None):
            if hi is not None and entry.key >= hi:
                return
            yield entry

    # ------------------------------------------------------------------
    # Splitting (used when an sstable straddles compactor partitions)
    # ------------------------------------------------------------------
    def split_at(self, boundaries: list[bytes]) -> list["SSTable"]:
        """Split this table at the given sorted key boundaries.

        Returns one table per non-empty segment; segment *i* holds keys
        in ``[boundaries[i-1], boundaries[i])`` with open ends at the
        extremes.  Used by the Ingestor when a forwarded sstable spans
        more than one Compactor's range (Section III-C).
        """
        pieces: list[SSTable] = []
        segment: list[Entry] = []
        bound_iter = iter(boundaries)
        bound = next(bound_iter, None)
        for entry in self.entries:
            while bound is not None and entry.key >= bound:
                if segment:
                    pieces.append(SSTable(segment, self._block_entries))
                    segment = []
                bound = next(bound_iter, None)
            segment.append(entry)
        if segment:
            pieces.append(SSTable(segment, self._block_entries))
        return pieces
