"""REMIX-style cross-run sorted views (arXiv:2010.12734) for Readers.

A Reader's snapshot is a set of immutable sorted runs (per-Compactor
areas, two overlap-tolerant levels each).  The streaming read path
answers every range query with a k-way merge over per-table cursors:
correct, lazy, but each short scan re-pays cursor priming, heap
shuffling, and per-key dedup over the same never-changing runs.  REMIX's
observation is that between run-set changes this work is pure
recomputation — a *persisted globally-sorted view* over the runs lets a
scan binary-search once and walk forward, touching only winners.

:class:`SortedView` is that structure, adapted to CooLSM's Reader:

* The view is a list of :class:`ViewSegment`\\ s, each a bounded run of
  ``(key, table_id, offset)`` anchors — one per distinct key, pointing
  at the entry a streaming merge would have yielded for that key (the
  globally newest version, ties broken by stream order).  Tombstone
  winners are anchored too: the view must *shadow* older live versions,
  so filtering deletes is scan-time work, exactly as in the streaming
  path.
* Segments carry fence keys (``lo``/``hi``, the first and last anchored
  key) and the set of tables they reference, so a scan bisects straight
  to its entry point and an install invalidates only the segments it
  actually touches.
* :meth:`SortedView.rebuild` is the incremental path run on every
  ``BackupUpdate`` install: a segment is reused verbatim iff it
  references only still-live tables and its key span intersects no
  newly added table's span; the gaps between kept segments are re-merged
  from the new run set.  Both conditions are necessary — a dropped
  table can only change winners for keys it anchored (caught by the
  reference check), and a new table can only change winners inside its
  own key span (caught by the span check).
* :meth:`SortedView.to_document` / :meth:`SortedView.from_document`
  serialise the view for the Reader's ``NodeStore`` sidecar;
  ``from_document`` *refuses* (raises
  :class:`~repro.lsm.errors.CorruptionError`) unless every anchor
  resolves into the recovered tables and the source table-id set matches
  exactly — recovery then deletes the sidecar and rebuilds, mirroring
  the manifest's refuse-don't-guess rule.

Scans resolve anchors through the shared
:class:`~repro.lsm.cache.ReadCache` as *block-range* entries: per
segment and table, the contiguous block span covering that segment's
anchors is fetched (and cached) as one unit, so a re-scan of a warm
segment does one cache hit per (segment, table) instead of one entry
probe per key.

Bit-identity with the streaming path is a hard requirement, not an
aspiration: the view is built with exactly
:func:`~repro.lsm.iterators.k_way_merge`'s ordering — ``(key,
-timestamp, -seqno, stream index)`` — over the runs enumerated in the
same order the Reader lists its merge sources, so the anchored winner is
the entry the streaming merge's dedup would keep.  (When two live
tables hold byte-equal copies of one version — the L2→L3 overlap window
— a rebuild may re-anchor to the other copy; both carry the same key
and value, so scan output is unaffected.)
"""

from __future__ import annotations

import bisect
import heapq
import itertools
from typing import Iterable, Iterator

from .cache import MISS, ReadCache
from .entry import Entry
from .errors import CorruptionError, InvalidConfigError
from .sstable import SSTable

#: Anchors per segment (rebuild/invalidate granularity).  Segments cut
#: from a gap re-merge may be smaller; reused segments keep their size.
DEFAULT_SEGMENT_ENTRIES = 256

#: On-disk sidecar format version.
SIDECAR_FORMAT = 1


def _merge_winners(
    runs: list[SSTable],
    lo: bytes | None = None,
    hi: bytes | None = None,
) -> Iterator[tuple[Entry, int, int]]:
    """Yield ``(entry, table_id, offset)`` for the newest version of
    each distinct key in ``[lo, hi)`` across ``runs``.

    The heap ordering replicates :func:`~repro.lsm.iterators.k_way_merge`
    exactly — key ascending, version descending, then stream index (so
    runs listed earlier win exact-version ties) — and the first entry
    per key is the winner, replicating ``dedup_newest``.
    """
    heap: list = []
    for index, table in enumerate(runs):
        if lo is not None and table.max_key < lo:
            continue
        if hi is not None and table.min_key >= hi:
            continue
        iterator = table.scan_with_offsets(lo, hi)
        first = next(iterator, None)
        if first is not None:
            offset, entry = first
            heap.append(
                (
                    entry.key,
                    -entry.timestamp,
                    -entry.seqno,
                    index,
                    offset,
                    entry,
                    table.table_id,
                    iterator,
                )
            )
    heapq.heapify(heap)
    last_key: bytes | None = None
    while heap:
        key, __, __, index, offset, entry, table_id, iterator = heapq.heappop(heap)
        if key != last_key:
            yield entry, table_id, offset
            last_key = key
        nxt = next(iterator, None)
        if nxt is not None:
            next_offset, next_entry = nxt
            heapq.heappush(
                heap,
                (
                    next_entry.key,
                    -next_entry.timestamp,
                    -next_entry.seqno,
                    index,
                    next_offset,
                    next_entry,
                    table_id,
                    iterator,
                ),
            )


def _cut_segments(
    winners: Iterable[tuple[Entry, int, int]], segment_entries: int
) -> Iterator["ViewSegment"]:
    """Chunk a winner stream into segments of ``segment_entries`` anchors
    (one anchor per key, so segments never split a key)."""
    pointers: list[tuple[bytes, int, int]] = []
    for entry, table_id, offset in winners:
        pointers.append((entry.key, table_id, offset))
        if len(pointers) >= segment_entries:
            yield ViewSegment(pointers)
            pointers = []
    if pointers:
        yield ViewSegment(pointers)


class ViewSegment:
    """A bounded, immutable run of ``(key, table_id, offset)`` anchors.

    ``lo`` / ``hi`` are the segment's fence keys (first and last
    anchored key, both inclusive); ``source_ids`` the tables any anchor
    references — the two facts the incremental rebuild's reuse test
    needs.
    """

    __slots__ = ("pointers", "lo", "hi", "source_ids", "_keys", "_spans")

    def __init__(self, pointers: list[tuple[bytes, int, int]]) -> None:
        if not pointers:
            raise InvalidConfigError("a view segment must hold at least one anchor")
        self.pointers = pointers
        self.lo = pointers[0][0]
        self.hi = pointers[-1][0]
        self.source_ids = frozenset(table_id for __, table_id, __ in pointers)
        self._keys = [key for key, __, __ in pointers]
        self._spans: dict[int, tuple[int, int]] | None = None

    def __len__(self) -> int:
        return len(self.pointers)

    def block_spans(self, tables: dict[int, SSTable]) -> dict[int, tuple[int, int]]:
        """Per referenced table, the contiguous ``(first_block,
        last_block)`` span covering this segment's anchors — the unit the
        block-range cache stores."""
        if self._spans is None:
            offsets: dict[int, tuple[int, int]] = {}
            for __, table_id, offset in self.pointers:
                current = offsets.get(table_id)
                if current is None:
                    offsets[table_id] = (offset, offset)
                else:
                    offsets[table_id] = (
                        min(current[0], offset),
                        max(current[1], offset),
                    )
            self._spans = {
                table_id: (first // tables[table_id].block_entries,
                           last // tables[table_id].block_entries)
                for table_id, (first, last) in offsets.items()
            }
        return self._spans

    def resolve(
        self,
        lo: bytes | None,
        hi: bytes | None,
        tables: dict[int, SSTable],
        cache: ReadCache | None = None,
    ) -> Iterator[Entry]:
        """Yield the anchored entries with lo <= key < hi.

        With a cache, anchors are resolved through block-range entries:
        one fetch per (segment, table) covers every anchor into that
        table, and a warm re-scan touches no sstable at all.
        """
        start = 0 if lo is None else bisect.bisect_left(self._keys, lo)
        fetched: dict[int, tuple[int, list[Entry]]] = {}
        for key, table_id, offset in itertools.islice(self.pointers, start, None):
            if hi is not None and key >= hi:
                return
            table = tables[table_id]
            if cache is None:
                yield table.entries[offset]
                continue
            span = fetched.get(table_id)
            if span is None:
                first_block, last_block = self.block_spans(tables)[table_id]
                entries = cache.get_block_range(table_id, (first_block, last_block))
                if entries is MISS:
                    base = first_block * table.block_entries
                    entries = table.entries[
                        base : (last_block + 1) * table.block_entries
                    ]
                    cache.put_block_range(
                        table_id, (first_block, last_block), entries
                    )
                span = (first_block * table.block_entries, entries)
                fetched[table_id] = span
            base, entries = span
            yield entries[offset - base]


class SortedView:
    """An immutable compacted sorted view over a fixed set of runs."""

    __slots__ = ("segments", "source_ids", "segment_entries", "_segment_his")

    def __init__(
        self,
        segments: list[ViewSegment],
        source_ids: Iterable[int],
        segment_entries: int,
    ) -> None:
        if segment_entries <= 0:
            raise InvalidConfigError("segment_entries must be positive")
        self.segments = segments
        self.source_ids = frozenset(source_ids)
        self.segment_entries = segment_entries
        self._segment_his = [segment.hi for segment in segments]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        runs: list[SSTable],
        segment_entries: int = DEFAULT_SEGMENT_ENTRIES,
    ) -> "SortedView":
        """Full build over ``runs`` (in the Reader's merge-source order,
        which fixes exact-version tie-breaks)."""
        segments = list(_cut_segments(_merge_winners(runs), segment_entries))
        return cls(segments, (t.table_id for t in runs), segment_entries)

    def rebuild(self, runs: list[SSTable]) -> tuple["SortedView", int]:
        """Incrementally rebuild against a changed run set.

        Returns ``(new_view, reused_segments)``.  A segment survives iff
        it references only still-live tables *and* no newly added table's
        key span intersects its fence span; everything between surviving
        segments is re-merged from ``runs``.
        """
        live_ids = frozenset(t.table_id for t in runs)
        added = [t for t in runs if t.table_id not in self.source_ids]
        dirty = [(t.min_key, t.max_key) for t in added]
        kept = [
            segment
            for segment in self.segments
            if segment.source_ids <= live_ids
            and not any(d_lo <= segment.hi and segment.lo <= d_hi for d_lo, d_hi in dirty)
        ]
        if not kept:
            return SortedView.build(runs, self.segment_entries), 0
        segments: list[ViewSegment] = []
        previous_hi: bytes | None = None
        for segment in kept:
            gap_lo = None if previous_hi is None else previous_hi + b"\x00"
            segments.extend(
                _cut_segments(
                    _merge_winners(runs, gap_lo, segment.lo), self.segment_entries
                )
            )
            segments.append(segment)
            previous_hi = segment.hi
        segments.extend(
            _cut_segments(
                _merge_winners(runs, previous_hi + b"\x00", None),
                self.segment_entries,
            )
        )
        return SortedView(segments, live_ids, self.segment_entries), len(kept)

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def scan(
        self,
        lo: bytes | None,
        hi: bytes | None,
        tables: dict[int, SSTable],
        cache: ReadCache | None = None,
    ) -> Iterator[Entry]:
        """Winner entries with lo <= key < hi, in key order.

        One bisect finds the entry segment; from there the scan walks
        anchors forward.  Tombstone winners are yielded (callers filter),
        exactly as ``dedup_newest`` would.
        """
        start = 0 if lo is None else bisect.bisect_left(self._segment_his, lo)
        for segment in itertools.islice(self.segments, start, None):
            if hi is not None and segment.lo >= hi:
                return
            yield from segment.resolve(lo, hi, tables, cache)

    def total_anchors(self) -> int:
        return sum(len(segment) for segment in self.segments)

    # ------------------------------------------------------------------
    # Persistence (NodeStore sidecar)
    # ------------------------------------------------------------------
    def to_document(self) -> dict:
        """A JSON-safe document for the ``SORTED_VIEW.json`` sidecar."""
        return {
            "format": SIDECAR_FORMAT,
            "segment_entries": self.segment_entries,
            "source_ids": sorted(self.source_ids),
            "segments": [
                [[key.hex(), table_id, offset] for key, table_id, offset in seg.pointers]
                for seg in self.segments
            ],
        }

    @classmethod
    def from_document(
        cls,
        document: dict,
        tables: dict[int, SSTable],
        segment_entries: int,
    ) -> "SortedView":
        """Revive a persisted view against recovered tables.

        Raises :class:`CorruptionError` — the caller's cue to delete the
        sidecar and rebuild — unless the persisted source table-id set
        matches ``tables`` exactly, the configured segment granularity is
        unchanged, and **every** anchor resolves to an entry with its
        recorded key.  Guessing is never cheaper than rebuilding.
        """
        if document.get("format") != SIDECAR_FORMAT:
            raise CorruptionError(
                f"unknown sorted-view format {document.get('format')!r}"
            )
        if int(document.get("segment_entries", 0)) != segment_entries:
            raise CorruptionError(
                "sorted view was persisted with a different segment granularity"
            )
        source_ids = frozenset(int(i) for i in document.get("source_ids", []))
        if source_ids != frozenset(tables):
            raise CorruptionError(
                "sorted view source tables do not match the recovered areas"
            )
        segments: list[ViewSegment] = []
        previous_hi: bytes | None = None
        for raw_segment in document.get("segments", []):
            pointers: list[tuple[bytes, int, int]] = []
            for key_hex, table_id, offset in raw_segment:
                key = bytes.fromhex(key_hex)
                table_id = int(table_id)
                offset = int(offset)
                table = tables.get(table_id)
                if (
                    table is None
                    or not 0 <= offset < len(table.entries)
                    or table.entries[offset].key != key
                ):
                    raise CorruptionError(
                        "sorted view anchor does not resolve into its sstable"
                    )
                if pointers and key <= pointers[-1][0]:
                    raise CorruptionError("sorted view anchors out of order")
                pointers.append((key, table_id, offset))
            if not pointers:
                raise CorruptionError("sorted view holds an empty segment")
            if previous_hi is not None and pointers[0][0] <= previous_hi:
                raise CorruptionError("sorted view segments out of order")
            previous_hi = pointers[-1][0]
            segments.append(ViewSegment(pointers))
        return cls(segments, source_ids, segment_entries)


class SortedViewManager:
    """The Reader-side owner of one :class:`SortedView`.

    Tracks the table map scans resolve anchors through, and the rebuild
    statistics (``view_rebuild_count`` / ``view_reused_segments`` /
    ``view_invalidations``) surfaced by ``health_gauges()`` and the
    cluster monitor.  ``view`` is ``None`` until the first refresh and
    after :meth:`teardown` (crash) — callers fall back to the streaming
    merge while it is down.
    """

    __slots__ = (
        "segment_entries",
        "view",
        "tables",
        "rebuild_count",
        "reused_segments",
        "invalidations",
    )

    def __init__(self, segment_entries: int = DEFAULT_SEGMENT_ENTRIES) -> None:
        if segment_entries <= 0:
            raise InvalidConfigError("segment_entries must be positive")
        self.segment_entries = segment_entries
        self.view: SortedView | None = None
        self.tables: dict[int, SSTable] = {}
        self.rebuild_count = 0
        self.reused_segments = 0
        self.invalidations = 0

    @property
    def ready(self) -> bool:
        return self.view is not None

    def refresh(self, runs: Iterable[SSTable]) -> None:
        """(Re)build the view over ``runs`` — incrementally when a view
        is standing, from scratch otherwise.  Synchronous: the Reader
        calls this inside the install step, so no scan ever observes a
        view/area mismatch."""
        run_list = list(runs)
        if self.view is None:
            self.view = SortedView.build(run_list, self.segment_entries)
        else:
            self.view, reused = self.view.rebuild(run_list)
            self.reused_segments += reused
        self.tables = {t.table_id: t for t in run_list}
        self.rebuild_count += 1

    def adopt(self, view: SortedView, runs: Iterable[SSTable]) -> None:
        """Install a recovered (already-validated) view without paying a
        rebuild."""
        self.view = view
        self.tables = {t.table_id: t for t in runs}

    def teardown(self) -> None:
        """Drop the view (crash path: the in-memory view is volatile)."""
        self.view = None
        self.tables = {}

    def scan(
        self,
        lo: bytes | None,
        hi: bytes | None,
        cache: ReadCache | None = None,
    ) -> Iterator[Entry]:
        if self.view is None:
            raise InvalidConfigError("sorted view is not built")
        return self.view.scan(lo, hi, self.tables, cache)

    def gauges(self) -> dict:
        return {
            "sorted_view_segments": len(self.view.segments) if self.view else 0,
            "view_rebuild_count": self.rebuild_count,
            "view_reused_segments": self.reused_segments,
            "view_invalidations": self.invalidations,
        }
