"""Bloom filter, built from scratch.

CooLSM (like LevelDB/RocksDB) attaches a bloom filter to every sstable so
that point reads can skip tables that definitely do not contain the key.
The paper credits bloom filters (together with fence pointers) for the
flat read latency across tree sizes (Section IV-C / Figure 6).

The implementation uses the standard Kirsch–Mitzenmacher double-hashing
scheme: ``k`` probe positions are derived from two independent 64-bit
hashes, giving the same asymptotic false-positive rate as ``k``
independent hash functions.
"""

from __future__ import annotations

import hashlib
import math
import struct

from .errors import CorruptionError, InvalidConfigError

_MAGIC = b"BLM1"


def _hash_pair(data: bytes) -> tuple[int, int]:
    """Two independent 64-bit hashes of ``data`` (from one blake2b call)."""
    digest = hashlib.blake2b(data, digest_size=16).digest()
    h1, h2 = struct.unpack("<QQ", digest)
    # h2 must be odd so successive probes cycle through all positions.
    return h1, h2 | 1


def optimal_num_bits(num_keys: int, false_positive_rate: float) -> int:
    """Bits needed for ``num_keys`` at the target false-positive rate."""
    if not 0.0 < false_positive_rate < 1.0:
        raise InvalidConfigError("false_positive_rate must be in (0, 1)")
    if num_keys <= 0:
        return 8
    bits = -num_keys * math.log(false_positive_rate) / (math.log(2) ** 2)
    return max(8, int(math.ceil(bits)))


def optimal_num_hashes(num_bits: int, num_keys: int) -> int:
    """Probe count minimising the false-positive rate."""
    if num_keys <= 0:
        return 1
    return max(1, int(round(num_bits / num_keys * math.log(2))))


class BloomFilter:
    """A fixed-size bloom filter over byte-string keys.

    Args:
        num_bits: Size of the bit array (rounded up to a whole byte).
        num_hashes: Number of probe positions per key.
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "_count")

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0 or num_hashes <= 0:
            raise InvalidConfigError("num_bits and num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._count = 0

    @classmethod
    def for_keys(cls, num_keys: int, false_positive_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for an expected key count and target FP rate."""
        num_bits = optimal_num_bits(num_keys, false_positive_rate)
        return cls(num_bits, optimal_num_hashes(num_bits, num_keys))

    @classmethod
    def build(cls, keys, false_positive_rate: float = 0.01) -> "BloomFilter":
        """Build a filter over an iterable of keys (materialised once)."""
        key_list = list(keys)
        bloom = cls.for_keys(len(key_list), false_positive_rate)
        for key in key_list:
            bloom.add(key)
        return bloom

    def __len__(self) -> int:
        return self._count

    def add(self, key: bytes) -> None:
        """Insert a key."""
        h1, h2 = _hash_pair(key)
        for i in range(self.num_hashes):
            pos = (h1 + i * h2) % self.num_bits
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self._count += 1

    def might_contain(self, key: bytes) -> bool:
        """Return False only if the key was definitely never added."""
        h1, h2 = _hash_pair(key)
        for i in range(self.num_hashes):
            pos = (h1 + i * h2) % self.num_bits
            if not self._bits[pos >> 3] & (1 << (pos & 7)):
                return False
        return True

    def __contains__(self, key: bytes) -> bool:
        return self.might_contain(key)

    def expected_false_positive_rate(self) -> float:
        """The theoretical FP rate given the current fill level."""
        if self._count == 0:
            return 0.0
        exponent = -self.num_hashes * self._count / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def to_bytes(self) -> bytes:
        """Serialise for embedding in an sstable footer."""
        header = _MAGIC + struct.pack("<IIQ", self.num_bits, self.num_hashes, self._count)
        return header + bytes(self._bits)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BloomFilter":
        """Deserialise a filter produced by :meth:`to_bytes`."""
        if len(data) < 20 or data[:4] != _MAGIC:
            raise CorruptionError("bad bloom filter header")
        num_bits, num_hashes, count = struct.unpack("<IIQ", data[4:20])
        bloom = cls(num_bits, num_hashes)
        bits = data[20:]
        if len(bits) != (num_bits + 7) // 8:
            raise CorruptionError("bloom filter bit array truncated")
        bloom._bits = bytearray(bits)
        bloom._count = count
        return bloom
