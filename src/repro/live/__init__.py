"""The live runtime: CooLSM nodes on asyncio over real TCP sockets.

The simulator (:mod:`repro.sim`) and this package are two interpreters
for the *same* node code.  Every Ingestor/Compactor/Reader/Client is a
set of generator coroutines written against the effect protocol
(:mod:`repro.effects`); the simulator drives them on a virtual-time
event heap, this package drives them on the asyncio event loop with
messages serialised by :mod:`repro.live.wire` and moved by
:mod:`repro.live.transport`.

Modules:

``wire``
    Self-contained binary codec: tagged values, a registry covering
    every message dataclass (including nested Entry/SSTable payloads),
    CRC32-protected length-prefixed frames.

``transport``
    Framed TCP client/server: per-peer pooled connections with
    reconnect-and-exponential-backoff, FIFO per channel, frame ids.

``runtime``
    The asyncio effect interpreter: :class:`AsyncioKernel` (events,
    processes, timeouts, barriers — same semantics as the sim kernel,
    scheduled on the loop), :class:`LiveMachine`, :class:`LiveNetwork`.

``node``
    Process entrypoints: build one node from a cluster spec + address
    map, serve it with graceful SIGTERM drain (``repro.cli serve``).

``harness``
    Drive a real localhost cluster from tests and benchmarks: subprocess
    lifecycle, readiness probes, client sessions with history recording.
"""

from .node import LiveSpec, load_spec  # noqa: F401
from .runtime import AsyncioKernel, LiveMachine, LiveNetwork  # noqa: F401
