"""Supervision for live clusters: restart-on-crash and health probing.

Two independent tools:

**:class:`Supervisor`** watches a
:class:`~repro.live.harness.LocalCluster`'s processes and relaunches
any that exit *unexpectedly* — the process-level half of fault
tolerance the paper assumes of its deployment substrate.  Two
refinements matter in practice:

* **Expected-down coordination.**  A nemesis that SIGKILLs a node on a
  schedule owns that node's downtime; :meth:`Supervisor.expect_down`
  parks the name so the supervisor does not race the scheduled
  recovery, and :meth:`expect_up` hands it back.  A node crashed with
  no scheduled recovery stays parked — "leave it dead" is a valid
  experiment.
* **Crash-loop backoff.**  A node that dies again within
  ``stable_after`` seconds of its last relaunch is crash-looping (bad
  data dir, port clash, poisoned state); each successive relaunch waits
  ``base * 2^k`` capped at ``cap``, so a hopeless node costs bounded
  CPU instead of a fork storm.  Surviving ``stable_after`` seconds
  resets the backoff.

**:class:`HealthMonitor`** drives the ``health`` RPC every node answers
(:meth:`repro.sim.rpc.RpcNode._handle_health`) from a driver-side
client, recording the latest :class:`~repro.core.messages.HealthReply`
per node.  Because it is written against the effect protocol, the same
monitor runs over the sim kernel and over TCP; a node that is down (or
partitioned from the driver) simply stops refreshing, which is exactly
the failure-detector signal :meth:`alive` exposes.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass

from repro.core.messages import HealthPing
from repro.sim.kernel import SimError

logger = logging.getLogger("repro.live.supervisor")

__all__ = ["RestartPolicy", "SupervisorStats", "Supervisor", "HealthMonitor"]


@dataclass(frozen=True, slots=True)
class RestartPolicy:
    """Crash-loop backoff parameters."""

    base: float = 0.25
    cap: float = 8.0
    #: A node alive this long after a relaunch is considered stable and
    #: its backoff resets.
    stable_after: float = 10.0

    def next_backoff(self, backoff: float) -> float:
        return self.base if backoff <= 0.0 else min(backoff * 2.0, self.cap)


@dataclass(slots=True)
class SupervisorStats:
    restarts: int = 0
    #: Restarts that had to wait out a crash-loop backoff.
    crash_loops: int = 0
    #: Relaunch attempts that raised (e.g. lost a race with the nemesis).
    failures: int = 0


class Supervisor:
    """Poll a cluster's processes; relaunch unexpected deaths.

    Runs as one asyncio task in the driver process::

        supervisor = Supervisor(cluster)
        supervisor.start()
        ...
        await supervisor.stop()
    """

    def __init__(
        self,
        cluster,
        policy: RestartPolicy | None = None,
        poll_interval: float = 0.2,
    ) -> None:
        self.cluster = cluster
        self.policy = policy or RestartPolicy()
        self.poll_interval = poll_interval
        self.stats = SupervisorStats()
        self.expected_down: set[str] = set()
        #: (wall time, node) for every successful relaunch, in order.
        self.restarts: list[tuple[float, str]] = []
        self._backoff: dict[str, float] = {}
        self._last_restart: dict[str, float] = {}
        self._task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Nemesis coordination
    # ------------------------------------------------------------------
    def expect_down(self, name: str) -> None:
        """Mark a node as intentionally down: hands-off until
        :meth:`expect_up`."""
        self.expected_down.add(name)

    def expect_up(self, name: str) -> None:
        self.expected_down.discard(name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is not None:
            return
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="supervisor"
        )

    async def stop(self) -> None:
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.poll_interval)
            for name, process in list(self.cluster.processes.items()):
                if name in self.expected_down:
                    continue
                if process.poll() is None:
                    continue
                await self._restart(name)

    async def _restart(self, name: str) -> None:
        now = time.monotonic()
        last = self._last_restart.get(name)
        if last is None or now - last >= self.policy.stable_after:
            backoff = 0.0
        else:
            backoff = self.policy.next_backoff(self._backoff.get(name, 0.0))
            self.stats.crash_loops += 1
            logger.warning(
                "%s crash-looping; backing off %.2fs before relaunch",
                name,
                backoff,
            )
        self._backoff[name] = backoff
        if backoff > 0.0:
            await asyncio.sleep(backoff)
        if name in self.expected_down:
            return  # the nemesis claimed it while we were backing off
        try:
            await asyncio.to_thread(self.cluster.restart, name)
        except Exception as error:  # noqa: BLE001 - supervision must survive
            self.stats.failures += 1
            logger.warning("relaunch of %s failed: %r", name, error)
            return
        self._last_restart[name] = time.monotonic()
        self.stats.restarts += 1
        self.restarts.append((time.monotonic(), name))
        logger.info("relaunched %s", name)


class HealthMonitor:
    """Probe every target with the ``health`` RPC on a fixed cadence.

    ``client`` is any :class:`~repro.sim.rpc.RpcNode` (typically a
    driver-side :class:`~repro.core.client.Client`); the monitor runs
    as a process on that node's kernel, so it works identically under
    the sim kernel and the live runtime.
    """

    def __init__(
        self,
        client,
        targets,
        interval: float = 0.5,
        timeout: float = 1.0,
    ) -> None:
        self.client = client
        self.targets = list(targets)
        self.interval = interval
        self.timeout = timeout
        #: node -> most recent reply (survives later probe failures).
        self.latest: dict[str, object] = {}
        #: node -> kernel time of the most recent successful probe.
        self.last_seen: dict[str, float] = {}
        self.probe_failures: dict[str, int] = {}
        self._running = False
        self._nonce = 0
        self._process = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._process = self.client.kernel.spawn(self._loop(), "health-monitor")

    def stop(self) -> None:
        self._running = False

    def alive(self, target: str, within: float) -> bool:
        """Answered a probe within the last ``within`` kernel seconds?"""
        last = self.last_seen.get(target)
        return last is not None and self.client.kernel.now - last <= within

    def probe_once(self, target: str):
        """One probe as a process generator (``yield from``-able)."""
        self._nonce += 1
        reply = yield self.client.call(
            target, "health", HealthPing(self._nonce), timeout=self.timeout
        )
        self.latest[target] = reply
        self.last_seen[target] = self.client.kernel.now
        return reply

    def _loop(self):
        while self._running:
            for target in self.targets:
                if not self._running:
                    break
                try:
                    yield from self.probe_once(target)
                except SimError:  # RpcTimeout / RemoteError: node is sick
                    self.probe_failures[target] = (
                        self.probe_failures.get(target, 0) + 1
                    )
            yield self.client.kernel.timeout(self.interval)
