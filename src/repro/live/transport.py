"""Framed TCP transport: pooled peer connections + a frame server.

One process = one :class:`Transport`.  It listens on the process's own
address and keeps at most one outbound connection per peer, created on
first use and replaced after failures with the same bounded
exponential-backoff-plus-jitter retry policy the Ingestor uses for
forward retries (PR 1): ``delay = backoff * (0.5 + 0.5 * rng())``,
doubling up to a cap.

Delivery semantics match what the node layer already assumes of TCP
(Section III-H: ordered delivery, drops appear as delay):

* **FIFO per channel** — each peer has a single outbound queue drained
  by a single writer task over a single connection, so a later frame
  never overtakes an earlier one to the same destination.
* **At-most-once per frame, retried forever at the connection level** —
  a frame is written to exactly one socket; if the connection dies the
  writer reconnects (with backoff) and resumes from the unsent queue.
  Frames already handed to a dead socket may be lost — exactly the
  window the node layer's RPC timeouts + idempotent retries cover.
* **Bounded queues with an explicit overflow policy** — a peer that
  stays down cannot OOM the process.  Beyond ``max_queued`` frames per
  peer the transport applies its configured policy: ``"drop"`` (the
  default) counts the frame in ``TransportStats.frames_dropped`` and
  discards it (the upper layer's retry produces a fresh frame later);
  ``"raise"`` raises :class:`BackpressureError` to the sender, turning
  a cut link into an immediate, visible signal instead of silent
  buffering.  Either way the high-water mark of every queue is tracked
  in ``TransportStats.queue_high_water``.

The server side reads CRC-checked frames and hands each payload to the
``on_payload`` callback on the event loop; a malformed frame closes
that connection (the peer reconnects and retries).
"""

from __future__ import annotations

import asyncio
import logging
import random
import zlib
from dataclasses import dataclass, field

from . import wire

logger = logging.getLogger("repro.live.transport")

#: Valid values for the transport's queue-overflow policy.
OVERFLOW_POLICIES = ("drop", "raise")


class BackpressureError(Exception):
    """A peer's outbound queue is full and the transport was configured
    with ``overflow="raise"``: the caller must slow down (or shed) —
    the frame was NOT enqueued."""

    def __init__(self, peer: str, queued: int) -> None:
        super().__init__(f"outbound queue to {peer} full ({queued} frames)")
        self.peer = peer
        self.queued = queued


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Reconnect backoff parameters (shape of the PR 1 forward-retry
    policy: exponential with jitter, bounded by a cap)."""

    base: float = 0.05
    cap: float = 2.0

    def next_backoff(self, backoff: float) -> float:
        return min(backoff * 2.0, self.cap)

    def jittered(self, backoff: float, rng: random.Random) -> float:
        return backoff * (0.5 + 0.5 * rng.random())


@dataclass(slots=True)
class TransportStats:
    """Counters for the live fabric.

    ``send_drops`` counts every frame the transport gave up on at the
    send side, whatever the reason (unknown destination, closed peer,
    queue overflow under the drop policy); ``frames_dropped`` is the
    queue-overflow subset — the number a cut or stalled link silently
    cost, which the monitor gauges surface so "the link was down and we
    shed N frames" is a measurement, not a guess.
    """

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    #: Socket writes issued; ``frames_sent / write_calls`` is the
    #: coalescing factor the drain-the-queue writer achieves.
    write_calls: int = 0
    #: Frames that rode along in a write started for an earlier frame
    #: (``frames_sent - write_calls`` when nothing was retried).
    frames_coalesced: int = 0
    frames_compressed: int = 0
    #: Payload bytes saved by zlib frames (original - compressed).
    compression_saved_bytes: int = 0
    reconnects: int = 0
    send_drops: int = 0
    frames_dropped: int = 0
    backpressure_raised: int = 0
    queue_high_water: int = 0
    decode_errors: int = 0
    peers: set = field(default_factory=set)

    def as_gauges(self) -> dict[str, float]:
        """Numeric counters, keyed for monitor timelines."""
        return {
            "transport_frames_sent": self.frames_sent,
            "transport_frames_received": self.frames_received,
            "transport_bytes_sent": self.bytes_sent,
            "transport_bytes_received": self.bytes_received,
            "transport_write_calls": self.write_calls,
            "transport_frames_coalesced": self.frames_coalesced,
            "transport_bytes_per_write": (
                self.bytes_sent / self.write_calls if self.write_calls else 0.0
            ),
            "transport_frames_compressed": self.frames_compressed,
            "transport_compression_saved_bytes": self.compression_saved_bytes,
            "transport_reconnects": self.reconnects,
            "transport_send_drops": self.send_drops,
            "transport_frames_dropped": self.frames_dropped,
            "transport_backpressure_raised": self.backpressure_raised,
            "transport_queue_high_water": self.queue_high_water,
            "transport_decode_errors": self.decode_errors,
        }


class _Peer:
    """One outbound channel: a queue and a writer task with reconnect."""

    def __init__(
        self,
        name: str,
        address: tuple[str, int],
        policy: RetryPolicy,
        rng: random.Random,
        stats: TransportStats,
        max_queued: int,
        overflow: str = "drop",
    ) -> None:
        self.name = name
        self.address = address
        self.policy = policy
        self.rng = rng
        self.stats = stats
        self.max_queued = max_queued
        self.overflow = overflow
        # Unframed (payload, flags) pairs; framing happens in the writer
        # task, many frames at a time into one reused scratch buffer.
        self.queue: asyncio.Queue[tuple[bytes, int]] = asyncio.Queue()
        self._scratch = bytearray()
        self.writer: asyncio.StreamWriter | None = None
        self.task: asyncio.Task | None = None
        self.closed = False

    def post(self, payload: bytes, flags: int = 0) -> None:
        """Enqueue a payload for delivery, applying the overflow policy.

        Raises :class:`BackpressureError` when the queue is full and the
        transport was configured with ``overflow="raise"``.
        """
        if self.closed:
            self.stats.send_drops += 1
            return
        queued = self.queue.qsize()
        if queued >= self.max_queued:
            if self.overflow == "raise":
                self.stats.backpressure_raised += 1
                raise BackpressureError(self.name, queued)
            self.stats.send_drops += 1
            self.stats.frames_dropped += 1
            logger.warning("outbound queue to %s full; dropping frame", self.name)
            return
        self.queue.put_nowait((payload, flags))
        if queued + 1 > self.stats.queue_high_water:
            self.stats.queue_high_water = queued + 1
        if self.task is None:
            self.task = asyncio.get_running_loop().create_task(
                self._run(), name=f"transport.send.{self.name}"
            )

    async def _connect(self) -> asyncio.StreamWriter | None:
        """Open a connection, retrying with jittered exponential backoff
        until it succeeds or the peer is closed."""
        backoff = self.policy.base
        host, port = self.address
        while not self.closed:
            try:
                __, writer = await asyncio.open_connection(host, port)
                return writer
            except OSError:
                self.stats.reconnects += 1
                await asyncio.sleep(self.policy.jittered(backoff, self.rng))
                backoff = self.policy.next_backoff(backoff)
        return None

    async def _run(self) -> None:
        try:
            while not self.closed:
                first = await self.queue.get()
                # Drain everything already queued: one wakeup frames the
                # whole backlog into the reused scratch buffer and hands
                # the kernel ONE write instead of a syscall per frame.
                batch = [first]
                while True:
                    try:
                        batch.append(self.queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                buffer = self._scratch
                # Safe to reuse: the previous write was fully handed to
                # the (selector) socket transport, which copies anything
                # it could not send immediately, before drain returned.
                buffer.clear()
                for payload, flags in batch:
                    wire.encode_frame_into(buffer, payload, flags)
                while not self.closed:
                    if self.writer is None:
                        self.writer = await self._connect()
                        if self.writer is None:
                            return  # closed while connecting
                    try:
                        self.writer.write(buffer)
                        await self.writer.drain()
                        self.stats.frames_sent += len(batch)
                        self.stats.bytes_sent += len(buffer)
                        self.stats.write_calls += 1
                        self.stats.frames_coalesced += len(batch) - 1
                        break
                    except (ConnectionError, OSError):
                        self._drop_connection()
        except asyncio.CancelledError:
            raise
        finally:
            self._drop_connection()

    def _drop_connection(self) -> None:
        writer, self.writer = self.writer, None
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass

    async def close(self) -> None:
        self.closed = True
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except asyncio.CancelledError:
                pass
            self.task = None
        self._drop_connection()


class Transport:
    """Send frames to named peers; receive frames on a local server.

    Args:
        addresses: Node name -> (host, port) for every reachable peer.
        on_payload: Called with each received, CRC-verified payload.
        policy: Reconnect backoff policy (``cap`` bounds the backoff, so
            a long outage retries at a steady, finite cadence).
        rng: Jitter stream (seed it for reproducible backoff schedules).
        max_queued: Per-peer outbound queue bound.
        overflow: Queue-overflow policy: ``"drop"`` or ``"raise"``.
        compress_min_bytes: Payloads at least this large are sent as
            zlib frames (``FLAG_ZLIB``) when that actually shrinks them
            — sized so only bulk transfers (forwarded sstables, area
            snapshots) pay the CPU, for WAN-shaped links.  0 (default)
            disables compression; localhost bandwidth is free.
    """

    def __init__(
        self,
        addresses: dict[str, tuple[str, int]],
        on_payload,
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        max_queued: int = 10_000,
        overflow: str = "drop",
        compress_min_bytes: int = 0,
    ) -> None:
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, got {overflow!r}"
            )
        if compress_min_bytes < 0:
            raise ValueError("compress_min_bytes must be non-negative")
        self.addresses = dict(addresses)
        self.on_payload = on_payload
        self.policy = policy or RetryPolicy()
        self.rng = rng or random.Random(0x7C9)
        self.max_queued = max_queued
        self.overflow = overflow
        self.compress_min_bytes = compress_min_bytes
        self.stats = TransportStats()
        self._peers: dict[str, _Peer] = {}
        self._server: asyncio.base_events.Server | None = None
        self._server_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def post(self, dst: str, payload: bytes) -> None:
        """Frame and enqueue ``payload`` for peer ``dst``.

        Unknown destinations are counted as drops (the sim network would
        raise — here an address map that lags a reconfig shows up as
        timeouts at the caller, not a crash in the sender).
        """
        address = self.addresses.get(dst)
        if address is None:
            self.stats.send_drops += 1
            logger.warning("no address for %s; dropping frame", dst)
            return
        peer = self._peers.get(dst)
        if peer is None:
            peer = _Peer(
                dst,
                address,
                self.policy,
                self.rng,
                self.stats,
                self.max_queued,
                overflow=self.overflow,
            )
            self._peers[dst] = peer
            self.stats.peers.add(dst)
        flags = 0
        if self.compress_min_bytes and len(payload) >= self.compress_min_bytes:
            packed = zlib.compress(bytes(payload))
            if len(packed) < len(payload):
                self.stats.frames_compressed += 1
                self.stats.compression_saved_bytes += len(payload) - len(packed)
                payload, flags = packed, wire.FLAG_ZLIB
        peer.post(payload, flags)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    async def listen(self, host: str, port: int) -> None:
        """Start the frame server on (host, port)."""
        self._server = await asyncio.start_server(self._serve_connection, host, port)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._server_tasks.add(task)
            task.add_done_callback(self._server_tasks.discard)
        try:
            while True:
                header = await reader.readexactly(wire.HEADER_SIZE)
                length, crc, flags = wire.decode_header_full(header)
                if flags & ~wire.KNOWN_FLAGS:
                    raise wire.WireError(f"unknown frame flags {flags:#x}")
                payload = await reader.readexactly(length)
                wire.check_payload(payload, crc)
                if flags & wire.FLAG_ZLIB:
                    try:
                        payload = zlib.decompress(payload)
                    except zlib.error as error:
                        raise wire.WireError(f"bad zlib payload: {error}") from error
                self.stats.frames_received += 1
                self.stats.bytes_received += wire.HEADER_SIZE + length
                self.on_payload(payload)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # peer went away: normal
        except asyncio.CancelledError:
            pass  # transport closing; end the task cleanly (streams.py
            # would log a cancelled reader task as a callback error)
        except wire.WireError as error:
            self.stats.decode_errors += 1
            logger.warning("closing connection on wire error: %s", error)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def close(self) -> None:
        """Stop the server and tear down every peer connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._server_tasks):
            task.cancel()
        for peer in self._peers.values():
            await peer.close()
        self._peers.clear()
