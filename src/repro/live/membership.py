"""Shard membership: the live cluster's routing/reconfiguration layer.

This module is the live-facing home of the versioned shard map
(:class:`~repro.core.shard.ShardMap`, re-exported here) and of the
online split coordinator that moves half of an Ingestor's key range to
a new owner **while the cluster serves traffic**.

The protocol is the sim reconfig machinery's Expand → Migrate → Detach
shape (``core/reconfig.py``) recast for Ingestor shards, with the
ordering that makes it safe over real, lossy TCP:

1. **Fence** — install the successor map (epoch E+1) on the *old*
   owner.  From this instant it rejects every op for the moving range
   with a WrongShard redirect, so no new acked write for that range can
   land anywhere but the eventual new owner.  Epoch monotonicity at the
   install handler means a delayed or replayed install can never undo
   this.
2. **Drain** — tell the old owner to flush its memtable (raising the
   durable WAL floor via the PR 5 store), minor-compact, and forward
   *all* of L0/L1 to the Compactors through the normal retained/
   acked/idempotent forward path.  The drain reply snapshots the
   in-flight forward batch ids; the coordinator polls ``shard_status``
   until those exact batches are acked.  At that point every write
   acked before the fence is readable at the Compactors — lower-half
   writes accepted *after* the fence simply keep flowing through the
   same path and do not gate the split.
3. **Activate** — install E+1 on the new owner, carrying the old
   owner's timestamp watermark as ``clock_floor`` so everything the new
   owner stamps is strictly newer than everything it inherited
   (newest-wins stays correct across the handoff).  Only now does any
   node accept ops for the moving range again.
4. **Propagate** — install E+1 on the remaining Ingestors so they
   redirect correctly.  Clients are *not* told: they discover the new
   map lazily when a write bounces (WrongShard → ``shard_map`` fetch →
   re-route), exactly like the redirect-driven routing of classic
   range-sharded stores.

The coordinator is a plain effect-protocol generator driven through any
node with a ``call`` method (a :class:`~repro.core.client.Client`
works), so the *same* code runs under the simulation kernel — where the
verify explorer model-checks it against faults — and over live TCP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.messages import (
    InstallShardMap,
    InstallShardMapReply,
    ShardDrainReply,
    ShardDrainRequest,
)
from repro.core.shard import (  # noqa: F401  (re-exports: the live API surface)
    Shard,
    ShardMap,
    WrongShardError,
    is_wrong_shard,
)
from repro.sim.rpc import RemoteError, RpcTimeout

__all__ = [
    "Shard",
    "ShardMap",
    "SplitStats",
    "WrongShardError",
    "fetch_shard_map",
    "is_wrong_shard",
    "split_ingestor_shard",
]


@dataclass(slots=True)
class SplitStats:
    """Outcome of one online shard split."""

    source: str = ""
    new_owner: str = ""
    epoch: int = 0
    drain_polls: int = 0
    drained_batches: int = 0
    watermark: float = float("-inf")
    installed_on: list[str] = field(default_factory=list)


def _call_retry(admin, target: str, method: str, request, *, budget: int, backoff: float):
    """Bounded-retry RPC through ``admin`` (any node with ``call``)."""
    last_error: Exception | None = None
    delay = backoff
    for attempt in range(budget):
        try:
            reply = yield admin.call(
                target, method, request, timeout=admin.config.request_timeout
            )
            return reply
        except (RpcTimeout, RemoteError) as error:
            last_error = error
            yield admin.kernel.timeout(delay)
            delay = min(delay * 2.0, admin.config.forward_backoff_cap)
    raise last_error


def _install(admin, target: str, shard_map: ShardMap, clock_floor: float, *, budget: int):
    """Install ``shard_map`` on ``target``; idempotent under retries.

    A reply with the target already at (or past) the map's epoch counts
    as success — a retried install whose first ack was lost must not
    fail the split.
    """
    reply = yield from _call_retry(
        admin,
        target,
        "install_shard_map",
        InstallShardMap(shard_map, clock_floor),
        budget=budget,
        backoff=admin.config.forward_backoff_base,
    )
    assert isinstance(reply, InstallShardMapReply)
    if reply.epoch < shard_map.epoch:
        raise RuntimeError(
            f"{target} rejected shard map epoch {shard_map.epoch} "
            f"(holds epoch {reply.epoch})"
        )
    return reply


def fetch_shard_map(admin, targets, *, budget: int = 8):
    """Fetch the highest-epoch shard map any of ``targets`` serves."""
    from repro.core.messages import ShardMapRequest

    best: ShardMap | None = None
    last_error: Exception | None = None
    for target in targets:
        try:
            reply = yield from _call_retry(
                admin,
                target,
                "shard_map",
                ShardMapRequest(),
                budget=budget,
                backoff=admin.config.forward_backoff_base,
            )
        except (RpcTimeout, RemoteError) as error:
            last_error = error
            continue
        if reply.shard_map is not None and (
            best is None or reply.shard_map.epoch > best.epoch
        ):
            best = reply.shard_map
    if best is None and last_error is not None:
        raise last_error
    return best


def split_ingestor_shard(
    admin,
    current: ShardMap,
    boundary,
    new_owner: str,
    *,
    others: tuple[str, ...] = (),
    history=None,
    poll_interval: float = 0.05,
    budget: int = 60,
):
    """Online shard split: fence → drain → activate → propagate.

    Args:
        admin: Any RPC-capable node (e.g. a history-less Client) whose
            kernel this generator runs under — sim or live.
        current: The map the coordinator believes is installed; its
            split successor (epoch + 1) is what gets rolled out.
        boundary: Key at which to cut; the range ``[boundary, next)``
            moves from its current owner to ``new_owner``.
        new_owner: Name of the (already listening) Ingestor that takes
            over the upper half.  The live harness spawns the process
            (``LocalCluster.add_node``) before the coordinator runs; in
            the simulator spare Ingestors are built with the cluster.
        others: Remaining Ingestors to eagerly hand the new map
            (clients would teach them lazily anyway via redirects).
        history: Optional shared History; phase marks interleave with
            client ops in verification timelines.
        poll_interval: Drain poll spacing (seconds, kernel time).
        budget: Retry/poll budget per step.

    Returns:
        ``(new_map, SplitStats)``.

    Zero acked-write loss argument: a write acked before the fence is
    durable at the source (WAL/L0/L1/in-flight); the drain forwards all
    of it to the Compactors and completes only when those batches are
    acked; the new owner serves reads through the normal
    local-then-Compactor path, so everything drained is visible before
    the first post-activation op.  A write arriving between fence and
    activation is never acked (WrongShard), so nothing can be lost.
    """
    target_map = current.split(boundary, new_owner)
    moving = target_map.shard_for(boundary)
    source = current.owner_of(boundary)
    stats = SplitStats(source=source, new_owner=new_owner, epoch=target_map.epoch)

    def _mark(label: str, detail: str) -> None:
        if history is not None:
            history.mark(admin.kernel.now, label, detail)

    # 1. Fence the old owner: from here on, the moving range bounces.
    yield from _install(admin, source, target_map, float("-inf"), budget=budget)
    stats.installed_on.append(source)
    _mark("shard.fence", f"{source} fenced at epoch {target_map.epoch}")

    # 2. Drain: everything acked pre-fence goes down to the Compactors.
    drain = yield from _call_retry(
        admin, source, "shard_drain", ShardDrainRequest(),
        budget=budget, backoff=admin.config.forward_backoff_base,
    )
    assert isinstance(drain, ShardDrainReply)
    fence_set = set(drain.pending)
    stats.drained_batches = len(fence_set)
    watermark = drain.watermark
    polls = 0
    while fence_set:
        polls += 1
        if polls > budget:
            raise RuntimeError(
                f"shard drain on {source} did not settle: {sorted(fence_set)} unacked"
            )
        yield admin.kernel.timeout(poll_interval)
        status = yield from _call_retry(
            admin, source, "shard_status", ShardDrainRequest(),
            budget=budget, backoff=admin.config.forward_backoff_base,
        )
        watermark = max(watermark, status.watermark)
        fence_set &= set(status.pending)
    stats.drain_polls = polls
    stats.watermark = watermark
    _mark("shard.drain", f"{source} drained {stats.drained_batches} batches")

    # 3. Activate the new owner, clock floored past the source's last
    #    stamp so inherited data can never shadow fresh writes.
    yield from _install(admin, new_owner, target_map, watermark, budget=budget)
    stats.installed_on.append(new_owner)
    _mark(
        "shard.activate",
        f"{new_owner} owns [{moving.lower!r}, …) term {moving.term}",
    )

    # 4. Propagate to the remaining Ingestors (best effort beyond the
    #    two protocol-critical installs; stragglers learn via clients'
    #    redirect-driven refreshes bouncing off them).
    for name in others:
        if name in (source, new_owner):
            continue
        yield from _install(admin, name, target_map, float("-inf"), budget=budget)
        stats.installed_on.append(name)
    _mark("shard.done", f"epoch {target_map.epoch} propagated")
    return target_map, stats
