"""Process entrypoints for the live runtime.

A :class:`LiveSpec` is the live analogue of
:class:`~repro.core.cluster.ClusterSpec`: the same topology knobs plus
an address map assigning every node name (and every driver-side client
name) a ``host:port``.  Specs load from TOML (stdlib ``tomllib``) or
JSON, so a cluster is described once in a file and every process —
``repro.cli serve`` per node, plus the test/bench driver — builds its
piece from the same description.

Node names follow the simulator's conventions exactly
(``ingestor-0``, ``compactor-1``, ``reader-0``, ``client-1`` ...), so a
spec names the same cluster under either backend.

:func:`serve` runs one node until SIGTERM/SIGINT, then **drains**
before exiting: an Ingestor holds every forwarded sstable until the
owning Compactor acks it, so shutdown waits for ``inflight_tables`` to
reach zero (and a Compactor for its pending ingest batches to finish)
rather than dropping acked data on the floor.  Exit status 0 means
drained; 3 means the drain deadline expired with work still in flight.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import logging
import signal
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.client import Client
from repro.core.compactor import Compactor
from repro.core.config import CooLSMConfig
from repro.core.history import History
from repro.core.ingestor import Ingestor
from repro.core.keyspace import Partitioning
from repro.core.reader import Reader
from repro.lsm.errors import InvalidConfigError
from repro.lsm.policy import normalize_policy_name
from repro.lsm.sstable import advance_table_ids, seed_table_ids
from repro.store.node_store import NodeStore
from repro.sim.clock import LooseClock
from repro.sim.rng import RngRegistry

from .runtime import AsyncioKernel, LiveMachine, LiveNetwork
from .transport import OVERFLOW_POLICIES, RetryPolicy

logger = logging.getLogger("repro.live.node")

#: Exit code for a drain that timed out with work still in flight.
EXIT_DRAIN_TIMEOUT = 3


@dataclass(slots=True)
class LiveSpec:
    """A live deployment: topology + shared config + address map.

    Attributes:
        config: Shared CooLSM parameters (same object on every node).
        num_ingestors / num_compactors / num_readers: Topology, with
            the simulator's naming conventions.
        compactor_replicas: Partition overlap factor (Section III-C).
        ingestors_feed_readers: Section III-D.3 freshness variant.
        addresses: Node name -> (host, port).  Must cover every node and
            every driver-side client name the run will use (all client
            names may share the driver's one address).
        seed: Seeds per-node RNG streams (clock skew, retry jitter).
        compute_scale: Real seconds slept per modelled compute second
            (0 = cooperative yield only; the real CPU work is the cost).
        drain_timeout: Seconds a node waits at shutdown for in-flight
            work to drain before giving up with exit code 3.
        data_dir: Base directory for durable node storage; each node
            opens (or recovers) ``<data_dir>/<name>``.  None keeps
            every node purely in memory (the pre-durability behavior).
        transport_max_queued: Per-peer outbound frame queue bound.
        transport_overflow: What a full queue does to the sender:
            ``"drop"`` (count + shed) or ``"raise"``
            (:class:`~repro.live.transport.BackpressureError`).
        transport_compress_min_bytes: Payloads at least this large are
            zlib-compressed on the wire (``FLAG_ZLIB``) when smaller —
            for WAN-shaped links carrying forwarded sstables.  0
            (default) sends everything uncompressed.
    """

    config: CooLSMConfig = field(default_factory=CooLSMConfig)
    num_ingestors: int = 1
    num_compactors: int = 1
    num_readers: int = 0
    compactor_replicas: int = 1
    ingestors_feed_readers: bool = False
    #: Range-shard the key space across the Ingestors (each key has
    #: exactly one owner; clients route by shard map and refresh on
    #: WrongShard redirects).  Mutually exclusive in spirit with the
    #: overlapping multi-Ingestor protocol: sharded deployments use the
    #: single-Ingestor read path per key.
    sharded: bool = False
    #: Extra Ingestor processes named after the active ones
    #: (``ingestor-<num_ingestors>`` ...) that get addresses but own no
    #: shards and are NOT launched at cluster start — online splits
    #: spawn them (``LocalCluster.add_node``) and hand them ownership.
    spare_ingestors: int = 0
    addresses: dict[str, tuple[str, int]] = field(default_factory=dict)
    seed: int = 0
    compute_scale: float = 0.0
    drain_timeout: float = 30.0
    data_dir: str | None = None
    transport_max_queued: int = 10_000
    transport_overflow: str = "drop"
    transport_compress_min_bytes: int = 0

    def role_of(self, name: str) -> str:
        if name in self.ingestor_names or name in self.spare_ingestor_names:
            return "ingestor"
        if name in self.compactor_names:
            return "compactor"
        return "reader"

    def __post_init__(self) -> None:
        if self.num_ingestors < 1 or self.num_compactors < 1:
            raise InvalidConfigError("need at least one Ingestor and one Compactor")
        if self.spare_ingestors < 0:
            raise InvalidConfigError("spare_ingestors must be non-negative")
        if self.spare_ingestors and not self.sharded:
            raise InvalidConfigError("spare_ingestors require sharded=True")
        if self.num_compactors % self.compactor_replicas != 0:
            raise InvalidConfigError(
                "num_compactors must be a multiple of compactor_replicas"
            )
        if self.transport_overflow not in OVERFLOW_POLICIES:
            raise InvalidConfigError(
                f"transport_overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {self.transport_overflow!r}"
            )
        if self.transport_compress_min_bytes < 0:
            raise InvalidConfigError(
                "transport_compress_min_bytes must be non-negative"
            )

    # ------------------------------------------------------------------
    # Naming (mirrors core.cluster.build_cluster)
    # ------------------------------------------------------------------
    @property
    def ingestor_names(self) -> list[str]:
        return [f"ingestor-{i}" for i in range(self.num_ingestors)]

    @property
    def compactor_names(self) -> list[str]:
        return [f"compactor-{i}" for i in range(self.num_compactors)]

    @property
    def spare_ingestor_names(self) -> list[str]:
        return [
            f"ingestor-{self.num_ingestors + i}" for i in range(self.spare_ingestors)
        ]

    @property
    def reader_names(self) -> list[str]:
        return [f"reader-{i}" for i in range(self.num_readers)]

    @property
    def node_names(self) -> list[str]:
        # Spares come LAST so adding them never shifts the node_index
        # (= table-id namespace) of pre-existing nodes.
        return [
            *self.ingestor_names,
            *self.compactor_names,
            *self.reader_names,
            *self.spare_ingestor_names,
        ]

    @property
    def launch_names(self) -> list[str]:
        """Nodes a harness starts up front — everything but the spares,
        which online splits spawn on demand."""
        spares = set(self.spare_ingestor_names)
        return [name for name in self.node_names if name not in spares]

    @property
    def multi_ingestor(self) -> bool:
        # Sharded fleets use disjoint ownership and the single-Ingestor
        # read path per key — never the overlapping 2δ protocol.
        return self.num_ingestors > 1 and not self.sharded

    def initial_shard_map(self):
        """The epoch-1 map every node and client starts from (``None``
        when unsharded).  Spares own nothing until a split hands them a
        range at a higher epoch."""
        if not self.sharded:
            return None
        from repro.core.shard import ShardMap

        return ShardMap.uniform(self.config.key_range, self.ingestor_names)

    def node_index(self, name: str) -> int:
        """Global index of a node — the table-id namespace (0 is the
        driver process's)."""
        return self.node_names.index(name) + 1

    def address(self, name: str) -> tuple[str, int]:
        try:
            return self.addresses[name]
        except KeyError:
            raise InvalidConfigError(f"no address for node: {name}") from None

    def partitioning(self) -> Partitioning:
        return Partitioning.uniform(
            self.config.key_range,
            self.compactor_names,
            replicas=self.compactor_replicas,
        )

    def retry_policy(self) -> RetryPolicy:
        """Transport reconnect backoff, from the forward-retry knobs."""
        return RetryPolicy(
            base=self.config.forward_backoff_base,
            cap=self.config.forward_backoff_cap,
        )


def _parse_address(value: Any) -> tuple[str, int]:
    if isinstance(value, str):
        host, sep, port = value.rpartition(":")
        if not sep or not host:
            raise InvalidConfigError(f"address must be host:port, got {value!r}")
        return host, int(port)
    if isinstance(value, (list, tuple)) and len(value) == 2:
        return str(value[0]), int(value[1])
    raise InvalidConfigError(f"unparseable address: {value!r}")


def spec_from_dict(raw: dict[str, Any]) -> LiveSpec:
    """Build a :class:`LiveSpec` from a decoded TOML/JSON document."""
    raw = dict(raw)
    config_raw = dict(raw.pop("config", {}))
    scale_factor = config_raw.pop("scaled_down", None)
    config = CooLSMConfig(**config_raw)
    if scale_factor:
        config = config.scaled_down(int(scale_factor))
    addresses = {
        name: _parse_address(value)
        for name, value in dict(raw.pop("addresses", {})).items()
    }
    return LiveSpec(config=config, addresses=addresses, **raw)


def spec_to_dict(spec: LiveSpec) -> dict[str, Any]:
    """The JSON/TOML-ready inverse of :func:`spec_from_dict`.

    The compute cost model is not serialised (every process uses the
    default); everything else round-trips.
    """
    config = {
        f.name: getattr(spec.config, f.name)
        for f in dataclasses.fields(spec.config)
        if f.name != "costs"
    }
    return {
        "config": config,
        "num_ingestors": spec.num_ingestors,
        "num_compactors": spec.num_compactors,
        "num_readers": spec.num_readers,
        "compactor_replicas": spec.compactor_replicas,
        "ingestors_feed_readers": spec.ingestors_feed_readers,
        "sharded": spec.sharded,
        "spare_ingestors": spec.spare_ingestors,
        "seed": spec.seed,
        "compute_scale": spec.compute_scale,
        "drain_timeout": spec.drain_timeout,
        "data_dir": spec.data_dir,
        "transport_max_queued": spec.transport_max_queued,
        "transport_overflow": spec.transport_overflow,
        "transport_compress_min_bytes": spec.transport_compress_min_bytes,
        "addresses": {
            name: f"{host}:{port}" for name, (host, port) in spec.addresses.items()
        },
    }


def load_spec(path: str | Path) -> LiveSpec:
    """Load a spec from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    data = path.read_bytes()
    if path.suffix == ".json":
        return spec_from_dict(json.loads(data))
    return spec_from_dict(tomllib.loads(data.decode()))


class LiveNode:
    """One node wired onto the live runtime: kernel, network, node.

    Create inside a running event loop; ``listen`` binds the node's
    address; the node then serves until :meth:`shutdown`.
    """

    def __init__(
        self, spec: LiveSpec, name: str, data_dir: str | Path | None = None
    ) -> None:
        if name not in spec.node_names:
            raise InvalidConfigError(f"unknown node name: {name}")
        self.spec = spec
        self.name = name
        self.kernel = AsyncioKernel()
        self.network = LiveNetwork(
            self.kernel,
            spec.addresses,
            policy=spec.retry_policy(),
            rng=RngRegistry(spec.seed).stream(f"transport.{name}"),
            max_queued=spec.transport_max_queued,
            overflow=spec.transport_overflow,
            compress_min_bytes=spec.transport_compress_min_bytes,
        )
        self.machine = LiveMachine(
            self.kernel, f"m-{name}", compute_scale=spec.compute_scale
        )
        self.node = _build_node(spec, name, self.kernel, self.network, self.machine)
        # Durable storage: open-or-recover this node's slice of the
        # data dir (CLI flag wins over the spec's), then hand the store
        # to the node, which restores any recovered state.
        self.store: NodeStore | None = None
        self.recovered = False
        base = data_dir if data_dir is not None else spec.data_dir
        if base is not None:
            store = NodeStore.open(
                str(Path(base) / name),
                node_name=name,
                role=spec.role_of(name),
                policy=normalize_policy_name(spec.config.compaction_policy),
            )
            if store.recovered is not None:
                self.recovered = True
                # Never re-issue an id a persisted sstable already holds.
                advance_table_ids(store.recovered.max_table_id + 1)
            self.node.attach_store(store)
            self.store = store

    async def listen(self) -> None:
        host, port = self.spec.address(self.name)
        await self.network.listen(host, port)

    async def close(self) -> None:
        await self.network.close()
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def inflight(self) -> int:
        """Units of unacknowledged work that must drain before exit."""
        node = self.node
        if isinstance(node, Ingestor):
            return node.inflight_tables
        if isinstance(node, Compactor):
            return len(node._pending_batches)
        return 0

    async def drain(self, timeout: float) -> bool:
        """Wait until in-flight work reaches zero; True iff drained."""
        deadline = self.kernel.now + timeout
        while self.inflight() > 0:
            if self.kernel.now >= deadline:
                return False
            await asyncio.sleep(0.05)
        return True


def _build_node(
    spec: LiveSpec,
    name: str,
    kernel: AsyncioKernel,
    network: LiveNetwork,
    machine: LiveMachine,
):
    config = spec.config
    rngs = RngRegistry(spec.seed)
    clock = LooseClock(kernel, config.delta, rngs.stream(f"clock.{name}"))
    if spec.role_of(name) == "ingestor":
        return Ingestor(
            kernel,
            network,
            machine,
            name,
            config,
            clock,
            spec.partitioning(),
            peers=(
                [n for n in spec.ingestor_names if n != name]
                if spec.multi_ingestor
                else []
            ),
            multi_ingestor=spec.multi_ingestor,
            backups=spec.reader_names if spec.ingestors_feed_readers else (),
            rng=rngs.stream(f"backoff.{name}"),
            shard_map=spec.initial_shard_map(),
        )
    if name in spec.compactor_names:
        return Compactor(
            kernel,
            network,
            machine,
            name,
            config,
            clock,
            backups=spec.reader_names,
            multi_ingestor=spec.multi_ingestor,
        )
    reader = Reader(kernel, network, machine, name, config)
    reader.set_sources(spec.compactor_names)
    return reader


def build_driver_client(
    spec: LiveSpec,
    kernel: AsyncioKernel,
    network: LiveNetwork,
    machine: LiveMachine,
    name: str,
    history: History | None = None,
    ingestors: list[str] | None = None,
    readers: list[str] | None = None,
) -> Client:
    """Wire a real client (driver-process side) against a live cluster."""
    return Client(
        kernel,
        network,
        machine,
        name,
        spec.config,
        spec.partitioning(),
        ingestors if ingestors is not None else spec.ingestor_names,
        readers if readers is not None else spec.reader_names,
        multi_ingestor=spec.multi_ingestor,
        history=history,
        shard_map=spec.initial_shard_map(),
    )


async def serve(
    spec: LiveSpec, name: str, data_dir: str | Path | None = None
) -> int:
    """Run one node until SIGTERM/SIGINT, drain, and return exit status.

    Prints ``RECOVERED <name> ...`` when durable state was restored
    from the data dir, then ``READY <name> <host>:<port>`` once the
    node is accepting connections (the harness's readiness probe), and
    ``DRAINED`` / ``DRAIN-TIMEOUT inflight=N`` on the way out.
    """
    # One node per process: give its sstables a disjoint id range so
    # table ids stay unique across the whole deployment (they key read
    # caches and the Reader's seen-removals set).  Tests that wire
    # several LiveNodes into one process must NOT re-seed per node —
    # the shared in-process counter is already unique there.
    seed_table_ids(spec.node_index(name))
    live = LiveNode(spec, name, data_dir=data_dir)
    await live.listen()
    host, port = spec.address(name)
    if live.recovered:
        recovered = live.store.recovered
        print(
            f"RECOVERED {name} version={recovered.version} "
            f"tables={len(recovered.tables)} "
            f"wal_entries={len(recovered.wal_entries)}",
            flush=True,
        )
    print(f"READY {name} {host}:{port}", flush=True)
    logger.info("%s serving on %s:%d", name, host, port)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    try:
        await stop.wait()
        logger.info("%s shutting down; draining %d in-flight", name, live.inflight())
        drained = await live.drain(spec.drain_timeout)
    finally:
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(signum)
        await live.close()
    if drained:
        print(f"DRAINED {name} inflight=0", flush=True)
        return 0
    print(f"DRAIN-TIMEOUT {name} inflight={live.inflight()}", flush=True)
    return EXIT_DRAIN_TIMEOUT


def serve_main(
    spec_path: str | Path, name: str, data_dir: str | Path | None = None
) -> int:
    """Synchronous entrypoint for ``repro.cli serve``."""
    return asyncio.run(serve(load_spec(spec_path), name, data_dir=data_dir))
