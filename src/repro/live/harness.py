"""Drive a real localhost cluster from tests and benchmarks.

Two halves:

* :class:`LocalCluster` — subprocess lifecycle.  Writes the spec to a
  JSON file, launches one ``repro.cli serve`` process per node, probes
  readiness by connecting to each node's port, and shuts the fleet
  down with SIGTERM so every node runs its drain path (exit status 0
  == drained cleanly).
* :class:`ClientPool` — the driver side.  One :class:`AsyncioKernel` +
  :class:`LiveNetwork` listening on the driver's port, with any number
  of :class:`~repro.core.client.Client` instances registered on it (all
  client names share the one address).  Clients record into a shared
  :class:`~repro.core.history.History`, so the simulator's consistency
  checkers run unchanged over real-socket histories.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.core.history import History

from .chaos import DRIVER_MACHINE, links_to_dict, machine_of, plan_links, proxied_spec
from .node import LiveSpec, build_driver_client, spec_to_dict
from .runtime import AsyncioKernel, LiveMachine, LiveNetwork

#: Default number of driver-side client names a localhost spec reserves.
DRIVER_CLIENTS = 8


def free_port() -> int:
    """An OS-assigned free TCP port (best-effort; raceable but fine for
    localhost tests)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def localhost_spec(
    num_ingestors: int = 1,
    num_compactors: int = 1,
    num_readers: int = 0,
    num_clients: int = DRIVER_CLIENTS,
    **spec_kwargs,
) -> LiveSpec:
    """A spec with every node on 127.0.0.1 at a fresh free port.

    All ``client-1 .. client-N`` names map to one driver port — replies
    addressed to any client route back to the single driver process.
    """
    spec = LiveSpec(
        num_ingestors=num_ingestors,
        num_compactors=num_compactors,
        num_readers=num_readers,
        **spec_kwargs,
    )
    addresses = {name: ("127.0.0.1", free_port()) for name in spec.node_names}
    driver = ("127.0.0.1", free_port())
    for index in range(1, num_clients + 1):
        addresses[f"client-{index}"] = driver
    spec.addresses = addresses
    return spec


class LocalCluster:
    """Run every node of a spec as a local ``repro.cli serve`` process.

    With ``data_dir`` set, every node gets durable storage under
    ``<data_dir>/<node>`` and the nemesis vocabulary grows real-process
    teeth: :meth:`kill9` SIGKILLs a node (no drain, no goodbye) and
    :meth:`restart` brings it back from its data dir.

    With ``chaos`` set, a :class:`~repro.live.chaos.ChaosProxy` process
    is interposed on every inter-machine link: each node launches from
    its own spec file whose address map dials peers through that node's
    outbound proxy links, and :attr:`driver_spec` is the equivalent
    view for the driver process (hand it to :class:`ClientPool`).  The
    proxy's control socket is at :attr:`control_address`.
    """

    def __init__(
        self,
        spec: LiveSpec,
        work_dir: str | Path,
        data_dir: str | Path | None = None,
        chaos: bool = False,
        chaos_seed: int = 0,
    ) -> None:
        self.spec = spec
        self.work_dir = Path(work_dir)
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.chaos = chaos
        self.chaos_seed = chaos_seed
        self.spec_path = self.work_dir / "cluster.json"
        self.processes: dict[str, subprocess.Popen] = {}
        self.exit_codes: dict[str, int] = {}
        self.links = None
        self.control_address: tuple[str, int] | None = None
        self.proxy_process: subprocess.Popen | None = None
        #: The address map the driver should use (proxied under chaos).
        self.driver_spec: LiveSpec = spec
        self._log_offsets: dict[str, int] = {}
        #: Role (``ingestor``/``compactor``/``reader``) recorded at
        #: launch time, so :meth:`stop` waves classify every node the
        #: spec knows about — including shard Ingestors added mid-run
        #: by an online split — by role rather than name prefix.
        self._roles: dict[str, str] = {}

    def log_path(self, name: str) -> Path:
        return self.work_dir / f"{name}.log"

    def _spec_path_for(self, name: str) -> Path:
        if self.chaos:
            return self.work_dir / f"cluster-{name}.json"
        return self.spec_path

    def _env(self) -> dict[str, str]:
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def _launch(self, name: str) -> None:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--spec",
            str(self._spec_path_for(name)),
            "--node",
            name,
        ]
        if self.data_dir is not None:
            command += ["--data-dir", str(self.data_dir)]
        # Append mode: a restarted node's log keeps its first life's
        # READY/RECOVERED lines, which the crash tests assert on.  The
        # readiness probe therefore remembers where this life's output
        # starts, so a stale READY line can never satisfy it.
        log_path = self.log_path(name)
        self._log_offsets[name] = (
            log_path.stat().st_size if log_path.exists() else 0
        )
        self._roles[name] = self.spec.role_of(name)
        log = open(log_path, "a")
        self.processes[name] = subprocess.Popen(
            command, stdout=log, stderr=subprocess.STDOUT, env=self._env()
        )
        log.close()

    def _start_proxy(self, timeout: float = 30.0) -> None:
        self.links = plan_links(self.spec)
        self.control_address = ("127.0.0.1", free_port())
        links_path = self.work_dir / "links.json"
        links_path.write_text(
            json.dumps(
                links_to_dict(self.links, self.control_address, self.chaos_seed),
                indent=2,
            )
        )
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "chaos-proxy",
            "--links",
            str(links_path),
        ]
        log = open(self.log_path("chaos-proxy"), "a")
        self.proxy_process = subprocess.Popen(
            command, stdout=log, stderr=subprocess.STDOUT, env=self._env()
        )
        log.close()
        deadline = time.monotonic() + timeout
        while True:
            code = self.proxy_process.poll()
            if code is not None:
                raise RuntimeError(
                    f"chaos proxy exited with {code} before becoming ready; "
                    f"log: {self.log_path('chaos-proxy')}"
                )
            try:
                with socket.create_connection(self.control_address, timeout=0.25):
                    return
            except OSError:
                if time.monotonic() > deadline:
                    raise TimeoutError("chaos proxy not ready by deadline")
                time.sleep(0.05)

    def _stop_proxy(self) -> None:
        process, self.proxy_process = self.proxy_process, None
        if process is None:
            return
        if process.poll() is None:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()

    def start(self) -> None:
        self.work_dir.mkdir(parents=True, exist_ok=True)
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
        self.spec_path.write_text(json.dumps(spec_to_dict(self.spec), indent=2))
        if self.chaos:
            self._start_proxy()
            for name in self.spec.node_names:
                view = proxied_spec(self.spec, self.links, machine_of(name))
                self._spec_path_for(name).write_text(
                    json.dumps(spec_to_dict(view), indent=2)
                )
            self.driver_spec = proxied_spec(self.spec, self.links, DRIVER_MACHINE)
        # Spares (sharded mode) get addresses and spec files but no
        # process yet: an online split brings them up via add_node.
        for name in self.spec.launch_names:
            self._launch(name)

    def _ready_logged(self, name: str) -> bool:
        """Did *this* life of the node print its READY line?  Reads
        only past the offset recorded at launch, so the previous life's
        READY (kept by append-mode logs) cannot race a restart."""
        path = self.log_path(name)
        if not path.exists():
            return False
        with open(path, "rb") as log:
            log.seek(self._log_offsets.get(name, 0))
            tail = log.read().decode(errors="replace")
        return any(line.startswith("READY ") for line in tail.splitlines())

    def _wait_node_ready(self, name: str, deadline: float) -> None:
        host, port = self.spec.address(name)
        while True:
            process = self.processes[name]
            code = process.poll()
            if code is not None:
                raise RuntimeError(
                    f"{name} exited with {code} before becoming ready; "
                    f"log: {self.log_path(name)}"
                )
            if self._ready_logged(name):
                try:
                    with socket.create_connection((host, port), timeout=0.25):
                        return
                except OSError:
                    pass
            if time.monotonic() > deadline:
                raise TimeoutError(f"{name} not ready by deadline")
            time.sleep(0.05)

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every launched node's port accepts connections."""
        deadline = time.monotonic() + timeout
        for name in list(self.processes):
            self._wait_node_ready(name, deadline)

    def add_node(self, name: str, timeout: float = 30.0) -> None:
        """Launch a node the cluster did not start up front — a spare
        shard Ingestor an online split is about to hand ownership — and
        wait until it accepts connections."""
        if name not in self.spec.node_names:
            raise RuntimeError(f"unknown node name: {name}")
        process = self.processes.get(name)
        if process is not None and process.poll() is None:
            raise RuntimeError(f"{name} is already running")
        self._launch(name)
        self._wait_node_ready(name, time.monotonic() + timeout)

    # ------------------------------------------------------------------
    # Crash nemesis (real processes)
    # ------------------------------------------------------------------
    def kill9(self, name: str) -> None:
        """SIGKILL one node: no drain, no flush, no signal handler —
        the hard-crash the durability layer exists for."""
        process = self.processes[name]
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
        process.wait()

    def restart(self, name: str, timeout: float = 30.0) -> None:
        """Relaunch a dead node (recovering from its data dir when the
        cluster has one) and wait until it accepts connections."""
        process = self.processes.get(name)
        if process is not None and process.poll() is None:
            raise RuntimeError(f"{name} is still running; kill it first")
        self._launch(name)
        self._wait_node_ready(name, time.monotonic() + timeout)

    #: SIGTERM waves for :meth:`stop`, in dependency order.  An
    #: Ingestor's drain holds every forwarded sstable until the owning
    #: Compactor acks it, and a Compactor's drain may still push backup
    #: updates to Readers — so each wave must finish draining before
    #: its downstream dependencies are told to exit.  A simultaneous
    #: SIGTERM deadlocks under fault schedules: a Compactor with no
    #: pending work exits immediately while the Ingestor still retries
    #: an unacked forward against it forever.
    STOP_WAVES = ("ingestor-", "compactor-", "reader-")
    #: Wave order by *role*: when a role map is available (recorded at
    #: launch from ``spec.role_of``), nodes are classified by it, so an
    #: Ingestor added mid-run by an online split drains in the ingestor
    #: wave no matter what it is called.  Prefix matching remains the
    #: fallback for names launched outside :meth:`_launch`.
    ROLE_WAVES = ("ingestor", "compactor", "reader")

    @classmethod
    def _stop_waves(
        cls, names: list[str], roles: dict[str, str] | None = None
    ) -> list[list[str]]:
        roles = roles or {}

        def role(name: str) -> str | None:
            known = roles.get(name)
            if known is not None:
                return known
            for prefix in cls.STOP_WAVES:
                if name.startswith(prefix):
                    return prefix.rstrip("-")
            return None

        waves = [
            [n for n in names if role(n) == wave_role]
            for wave_role in cls.ROLE_WAVES
        ]
        waves.append([n for n in names if role(n) not in cls.ROLE_WAVES])
        return [wave for wave in waves if wave]

    def stop(self, timeout: float = 30.0) -> dict[str, int]:
        """Drain and stop every node, in dependency order.

        Nodes are SIGTERMed in waves (ingestors, then compactors, then
        readers, then anything else); each wave's drain completes
        before the next wave is signalled, so upstream nodes can flush
        in-flight work to still-running downstream peers.  A node that
        fails to drain within ``timeout`` is SIGKILLed (exit -9).
        """
        for wave in self._stop_waves(list(self.processes), self._roles):
            for name in wave:
                process = self.processes[name]
                if process.poll() is None:
                    process.send_signal(signal.SIGTERM)
            for name in wave:
                process = self.processes[name]
                try:
                    self.exit_codes[name] = process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    process.kill()
                    self.exit_codes[name] = process.wait()
        self._stop_proxy()
        return dict(self.exit_codes)

    def kill(self) -> None:
        for process in self.processes.values():
            if process.poll() is None:
                process.kill()
                process.wait()
        self._stop_proxy()

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        if any(process.poll() is None for process in self.processes.values()):
            self.stop(timeout=10.0)
        self.kill()


class ClientPool:
    """Real clients in the driver process, sharing one live network."""

    def __init__(
        self,
        spec: LiveSpec,
        num_clients: int = 1,
        history: History | None = None,
    ) -> None:
        self.spec = spec
        self.num_clients = num_clients
        self.history = history if history is not None else History()
        self.kernel: AsyncioKernel | None = None
        self.network: LiveNetwork | None = None
        self.clients: list = []

    async def start(self) -> None:
        self.kernel = AsyncioKernel()
        self.network = LiveNetwork(
            self.kernel,
            self.spec.addresses,
            policy=self.spec.retry_policy(),
            max_queued=self.spec.transport_max_queued,
            overflow=self.spec.transport_overflow,
            compress_min_bytes=self.spec.transport_compress_min_bytes,
        )
        machine = LiveMachine(self.kernel, "m-driver")
        for index in range(1, self.num_clients + 1):
            name = f"client-{index}"
            self.clients.append(
                build_driver_client(
                    self.spec, self.kernel, self.network, machine, name,
                    history=self.history,
                )
            )
        host, port = self.spec.address("client-1")
        await self.network.listen(host, port)

    def backup_client(self, name: str):
        """An extra history-less client (for backup reads, whose lag
        would falsely trip the linearizability checker)."""
        assert self.kernel is not None and self.network is not None
        machine = self.network.machine_of("client-1")
        client = build_driver_client(
            self.spec, self.kernel, self.network, machine, name, history=None
        )
        self.clients.append(client)
        return client

    async def run(self, generator, name: str = "driver"):
        """Drive a generator workload (e.g. a YCSB mix) to completion."""
        assert self.kernel is not None
        return await self.kernel.run(generator, name)

    async def close(self) -> None:
        if self.network is not None:
            await self.network.close()

    async def __aenter__(self) -> "ClientPool":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
