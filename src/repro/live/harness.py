"""Drive a real localhost cluster from tests and benchmarks.

Two halves:

* :class:`LocalCluster` — subprocess lifecycle.  Writes the spec to a
  JSON file, launches one ``repro.cli serve`` process per node, probes
  readiness by connecting to each node's port, and shuts the fleet
  down with SIGTERM so every node runs its drain path (exit status 0
  == drained cleanly).
* :class:`ClientPool` — the driver side.  One :class:`AsyncioKernel` +
  :class:`LiveNetwork` listening on the driver's port, with any number
  of :class:`~repro.core.client.Client` instances registered on it (all
  client names share the one address).  Clients record into a shared
  :class:`~repro.core.history.History`, so the simulator's consistency
  checkers run unchanged over real-socket histories.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.core.history import History

from .node import LiveSpec, build_driver_client, spec_to_dict
from .runtime import AsyncioKernel, LiveMachine, LiveNetwork

#: Default number of driver-side client names a localhost spec reserves.
DRIVER_CLIENTS = 8


def free_port() -> int:
    """An OS-assigned free TCP port (best-effort; raceable but fine for
    localhost tests)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def localhost_spec(
    num_ingestors: int = 1,
    num_compactors: int = 1,
    num_readers: int = 0,
    num_clients: int = DRIVER_CLIENTS,
    **spec_kwargs,
) -> LiveSpec:
    """A spec with every node on 127.0.0.1 at a fresh free port.

    All ``client-1 .. client-N`` names map to one driver port — replies
    addressed to any client route back to the single driver process.
    """
    spec = LiveSpec(
        num_ingestors=num_ingestors,
        num_compactors=num_compactors,
        num_readers=num_readers,
        **spec_kwargs,
    )
    addresses = {name: ("127.0.0.1", free_port()) for name in spec.node_names}
    driver = ("127.0.0.1", free_port())
    for index in range(1, num_clients + 1):
        addresses[f"client-{index}"] = driver
    spec.addresses = addresses
    return spec


class LocalCluster:
    """Run every node of a spec as a local ``repro.cli serve`` process.

    With ``data_dir`` set, every node gets durable storage under
    ``<data_dir>/<node>`` and the nemesis vocabulary grows real-process
    teeth: :meth:`kill9` SIGKILLs a node (no drain, no goodbye) and
    :meth:`restart` brings it back from its data dir.
    """

    def __init__(
        self,
        spec: LiveSpec,
        work_dir: str | Path,
        data_dir: str | Path | None = None,
    ) -> None:
        self.spec = spec
        self.work_dir = Path(work_dir)
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.spec_path = self.work_dir / "cluster.json"
        self.processes: dict[str, subprocess.Popen] = {}
        self.exit_codes: dict[str, int] = {}

    def log_path(self, name: str) -> Path:
        return self.work_dir / f"{name}.log"

    def _launch(self, name: str) -> None:
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--spec",
            str(self.spec_path),
            "--node",
            name,
        ]
        if self.data_dir is not None:
            command += ["--data-dir", str(self.data_dir)]
        # Append mode: a restarted node's log keeps its first life's
        # READY/RECOVERED lines, which the crash tests assert on.
        log = open(self.log_path(name), "a")
        self.processes[name] = subprocess.Popen(
            command, stdout=log, stderr=subprocess.STDOUT, env=env
        )
        log.close()

    def start(self) -> None:
        self.work_dir.mkdir(parents=True, exist_ok=True)
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
        self.spec_path.write_text(json.dumps(spec_to_dict(self.spec), indent=2))
        for name in self.spec.node_names:
            self._launch(name)

    def _wait_node_ready(self, name: str, deadline: float) -> None:
        host, port = self.spec.address(name)
        while True:
            process = self.processes[name]
            code = process.poll()
            if code is not None:
                raise RuntimeError(
                    f"{name} exited with {code} before becoming ready; "
                    f"log: {self.log_path(name)}"
                )
            try:
                with socket.create_connection((host, port), timeout=0.25):
                    return
            except OSError:
                if time.monotonic() > deadline:
                    raise TimeoutError(f"{name} not ready by deadline")
                time.sleep(0.05)

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every node's port accepts connections."""
        deadline = time.monotonic() + timeout
        for name in self.spec.node_names:
            self._wait_node_ready(name, deadline)

    # ------------------------------------------------------------------
    # Crash nemesis (real processes)
    # ------------------------------------------------------------------
    def kill9(self, name: str) -> None:
        """SIGKILL one node: no drain, no flush, no signal handler —
        the hard-crash the durability layer exists for."""
        process = self.processes[name]
        if process.poll() is None:
            process.send_signal(signal.SIGKILL)
        process.wait()

    def restart(self, name: str, timeout: float = 30.0) -> None:
        """Relaunch a dead node (recovering from its data dir when the
        cluster has one) and wait until it accepts connections."""
        process = self.processes.get(name)
        if process is not None and process.poll() is None:
            raise RuntimeError(f"{name} is still running; kill it first")
        self._launch(name)
        self._wait_node_ready(name, time.monotonic() + timeout)

    def stop(self, timeout: float = 30.0) -> dict[str, int]:
        """SIGTERM every node (drain path) and collect exit codes."""
        for process in self.processes.values():
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        for name, process in self.processes.items():
            try:
                self.exit_codes[name] = process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                self.exit_codes[name] = process.wait()
        return dict(self.exit_codes)

    def kill(self) -> None:
        for process in self.processes.values():
            if process.poll() is None:
                process.kill()
                process.wait()

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        if any(process.poll() is None for process in self.processes.values()):
            self.stop(timeout=10.0)
        self.kill()


class ClientPool:
    """Real clients in the driver process, sharing one live network."""

    def __init__(
        self,
        spec: LiveSpec,
        num_clients: int = 1,
        history: History | None = None,
    ) -> None:
        self.spec = spec
        self.num_clients = num_clients
        self.history = history if history is not None else History()
        self.kernel: AsyncioKernel | None = None
        self.network: LiveNetwork | None = None
        self.clients: list = []

    async def start(self) -> None:
        self.kernel = AsyncioKernel()
        self.network = LiveNetwork(
            self.kernel, self.spec.addresses, policy=self.spec.retry_policy()
        )
        machine = LiveMachine(self.kernel, "m-driver")
        for index in range(1, self.num_clients + 1):
            name = f"client-{index}"
            self.clients.append(
                build_driver_client(
                    self.spec, self.kernel, self.network, machine, name,
                    history=self.history,
                )
            )
        host, port = self.spec.address("client-1")
        await self.network.listen(host, port)

    def backup_client(self, name: str):
        """An extra history-less client (for backup reads, whose lag
        would falsely trip the linearizability checker)."""
        assert self.kernel is not None and self.network is not None
        machine = self.network.machine_of("client-1")
        client = build_driver_client(
            self.spec, self.kernel, self.network, machine, name, history=None
        )
        self.clients.append(client)
        return client

    async def run(self, generator, name: str = "driver"):
        """Drive a generator workload (e.g. a YCSB mix) to completion."""
        assert self.kernel is not None
        return await self.kernel.run(generator, name)

    async def close(self) -> None:
        if self.network is not None:
            await self.network.close()

    async def __aenter__(self) -> "ClientPool":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
