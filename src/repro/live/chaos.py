"""Live chaos: a per-link TCP fault proxy and the live nemesis.

The simulator's nemesis (PR 1) turns fault schedules into data; this
module gives the same schedules real teeth.  Three pieces:

**:class:`ChaosProxy`** — a toxiproxy-style fault injector.  For every
ordered machine pair in a deployment it owns one *link*: a listener
that forwards CRC-framed transport traffic to the destination's real
address.  Faults are applied per frame, so a fault toggled mid-stream
takes effect on the very next frame without breaking the framing:

* **cut / heal** — close the pair's listeners and live connections
  (senders see ECONNREFUSED and sit in their reconnect backoff loop);
  heal reopens the doors.
* **latency** — one-way per-frame delay on every link touching a
  machine (the gray-failure shape: slow, not dead).
* **drop** — a global frame-drop probability; whole frames vanish, so
  the surviving byte stream always decodes.
* **rate** — a per-machine bandwidth cap, modelled as serial
  ``frame_bytes / rate`` stalls.

The proxy runs as its own process (``repro.cli chaos-proxy``) so a
SIGKILLed node never takes the fault fabric down with it, and is driven
over a JSON-line control socket by :class:`ChaosControl`.

**Interposition** — :func:`plan_links` + :func:`proxied_spec` rewrite a
:class:`~repro.live.node.LiveSpec` per viewpoint machine: each node's
address map points every *outbound* peer at that node's own links while
its bind address stays real.  Nodes are oblivious; the proxy sees every
inter-machine frame.

**:class:`LiveNemesis`** — the live interpreter of the shared scenario
vocabulary (:mod:`repro.chaos_events`).  It walks the exact action
timeline :func:`~repro.chaos_events.expected_records` derives from the
scenario, sleeping to each scheduled offset: ``CrashNode`` becomes
SIGKILL + restart through the :class:`~repro.live.harness.LocalCluster`
(coordinating expected-downs with a
:class:`~repro.live.supervisor.Supervisor` when one is attached),
``PartitionPair`` a link cut, ``DropBurst`` a drop-probability window,
``SlowMachine`` a latency window.  Records carry scheduled times, so
``log.canonical_fingerprint()`` equals the scenario's
:func:`~repro.chaos_events.expected_fingerprint` — the same equality
the sim nemesis satisfies, which is what makes one schedule portable
across both interpreters.  ``SkewClock`` is rejected: a live node's
clock belongs to the OS.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import logging
import random
import signal
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.chaos_events import (
    CrashNode,
    DropBurst,
    NemesisEvent,
    NemesisLog,
    NemesisStats,
    PartitionPair,
    SkewClock,
    SlowMachine,
)

from . import wire

logger = logging.getLogger("repro.live.chaos")

__all__ = [
    "DRIVER_MACHINE",
    "machine_of",
    "LinkSpec",
    "plan_links",
    "proxied_addresses",
    "proxied_spec",
    "links_to_dict",
    "links_from_dict",
    "ProxyStats",
    "ChaosProxy",
    "ChaosError",
    "ChaosControl",
    "LiveNemesis",
    "proxy_main",
]

#: The driver process's machine name (every ``client-N`` lives on it).
DRIVER_MACHINE = "m-driver"


def machine_of(node_name: str) -> str:
    """The machine hosting a node — same convention as the simulator."""
    return f"m-{node_name}"


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


# ----------------------------------------------------------------------
# Link planning and spec interposition
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class LinkSpec:
    """One ordered proxy link: frames from ``src``'s machine bound for
    ``dst``'s machine enter at ``listen`` and leave toward ``forward``
    (the destination's real address)."""

    src: str
    dst: str
    listen: tuple[str, int]
    forward: tuple[str, int]

    @property
    def key(self) -> tuple[str, str]:
        return (self.src, self.dst)


def _machine_endpoints(spec) -> dict[str, tuple[str, int]]:
    """machine name -> real (host, port) for every machine in a spec."""
    endpoints = {machine_of(name): spec.address(name) for name in spec.node_names}
    drivers = sorted(n for n in spec.addresses if n.startswith("client-"))
    if drivers:
        endpoints[DRIVER_MACHINE] = spec.address(drivers[0])
    return endpoints


def plan_links(spec, host: str = "127.0.0.1") -> list[LinkSpec]:
    """One link per ordered machine pair, each on a fresh free port."""
    endpoints = _machine_endpoints(spec)
    links = []
    for src in sorted(endpoints):
        for dst in sorted(endpoints):
            if src == dst:
                continue
            links.append(LinkSpec(src, dst, (host, _free_port()), endpoints[dst]))
    return links


def proxied_addresses(
    spec, links: Sequence[LinkSpec], viewpoint: str
) -> dict[str, tuple[str, int]]:
    """The address map ``viewpoint``'s process should dial through.

    Its own machine's names keep their real addresses (that is what the
    process binds); every other name routes through the viewpoint's
    outbound link to that name's machine.
    """
    by_pair = {link.key: link.listen for link in links}
    addresses: dict[str, tuple[str, int]] = {}
    for name, real in spec.addresses.items():
        machine = DRIVER_MACHINE if name.startswith("client-") else machine_of(name)
        if machine == viewpoint:
            addresses[name] = real
        else:
            addresses[name] = by_pair[(viewpoint, machine)]
    return addresses


def proxied_spec(spec, links: Sequence[LinkSpec], viewpoint: str):
    """A copy of ``spec`` as seen from ``viewpoint``'s machine."""
    return dataclasses.replace(
        spec, addresses=proxied_addresses(spec, links, viewpoint)
    )


def links_to_dict(
    links: Sequence[LinkSpec], control: tuple[str, int], seed: int = 0
) -> dict[str, Any]:
    """JSON-ready description the ``chaos-proxy`` process loads."""
    return {
        "control": list(control),
        "seed": seed,
        "links": [
            {
                "src": link.src,
                "dst": link.dst,
                "listen": list(link.listen),
                "forward": list(link.forward),
            }
            for link in links
        ],
    }


def links_from_dict(
    raw: dict[str, Any],
) -> tuple[list[LinkSpec], tuple[str, int], int]:
    """Inverse of :func:`links_to_dict`: (links, control address, seed)."""
    control_raw = raw["control"]
    control = (str(control_raw[0]), int(control_raw[1]))
    links = [
        LinkSpec(
            entry["src"],
            entry["dst"],
            (str(entry["listen"][0]), int(entry["listen"][1])),
            (str(entry["forward"][0]), int(entry["forward"][1])),
        )
        for entry in raw["links"]
    ]
    return links, control, int(raw.get("seed", 0))


# ----------------------------------------------------------------------
# The proxy
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ProxyStats:
    """Counters across all links."""

    frames_forwarded: int = 0
    frames_dropped: int = 0
    bytes_forwarded: int = 0
    connections: int = 0
    upstream_refused: int = 0
    cuts: int = 0
    heals: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "frames_forwarded": self.frames_forwarded,
            "frames_dropped": self.frames_dropped,
            "bytes_forwarded": self.bytes_forwarded,
            "connections": self.connections,
            "upstream_refused": self.upstream_refused,
            "cuts": self.cuts,
            "heals": self.heals,
        }


class _Link:
    """Runtime state of one link: its listener (None while cut) and the
    tasks serving its live connections."""

    __slots__ = ("spec", "server", "tasks")

    def __init__(self, spec: LinkSpec) -> None:
        self.spec = spec
        self.server: asyncio.base_events.Server | None = None
        self.tasks: set[asyncio.Task] = set()


class ChaosProxy:
    """All links of one deployment plus the control server.

    Fault state lives in three small maps consulted per frame, so a
    control command takes effect on the next frame of every affected
    connection without tearing anything down (except ``cut``, whose
    whole point is the teardown).
    """

    def __init__(
        self,
        links: Sequence[LinkSpec],
        control: tuple[str, int] = ("127.0.0.1", 0),
        seed: int = 0,
    ) -> None:
        self.links: dict[tuple[str, str], _Link] = {}
        for spec in links:
            if spec.key in self.links:
                raise ValueError(f"duplicate link {spec.key}")
            self.links[spec.key] = _Link(spec)
        self.control_address = control
        self.rng = random.Random(seed)
        self.stats = ProxyStats()
        self.cut_pairs: set[frozenset] = set()
        self.latency: dict[str, float] = {}
        self.rate: dict[str, float] = {}
        self.drop_probability = 0.0
        self._control_server: asyncio.base_events.Server | None = None
        self._control_tasks: set[asyncio.Task] = set()
        self._stop: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind every (uncut) link listener and the control socket."""
        for link in self.links.values():
            await self._open_link(link)
        host, port = self.control_address
        self._control_server = await asyncio.start_server(
            self._serve_control, host, port
        )
        bound = self._control_server.sockets[0].getsockname()
        self.control_address = (bound[0], bound[1])

    async def close(self) -> None:
        if self._control_server is not None:
            self._control_server.close()
            await self._control_server.wait_closed()
            self._control_server = None
        for task in list(self._control_tasks):
            task.cancel()
        for link in self.links.values():
            await self._close_link(link)

    async def serve(self) -> None:
        """Run until SIGTERM/SIGINT or a ``shutdown`` control command.

        Prints ``PROXY-READY control=<host>:<port> links=<n>`` once
        everything is bound (the harness's readiness line).
        """
        self._stop = asyncio.Event()
        await self.start()
        host, port = self.control_address
        print(
            f"PROXY-READY control={host}:{port} links={len(self.links)}",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self._stop.set)
        try:
            await self._stop.wait()
        finally:
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            await self.close()

    async def _open_link(self, link: _Link) -> None:
        if link.server is not None:
            return
        host, port = link.spec.listen

        async def handle(reader, writer, link=link):
            await self._serve_connection(link, reader, writer)

        link.server = await asyncio.start_server(handle, host, port)

    async def _close_link(self, link: _Link) -> None:
        if link.server is not None:
            link.server.close()
            await link.server.wait_closed()
            link.server = None
        tasks = list(link.tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    async def _serve_connection(self, link: _Link, down_reader, down_writer) -> None:
        self.stats.connections += 1
        task = asyncio.current_task()
        if task is not None:
            link.tasks.add(task)
            task.add_done_callback(link.tasks.discard)
        up_writer = None
        try:
            host, port = link.spec.forward
            try:
                up_reader, up_writer = await asyncio.open_connection(host, port)
            except OSError:
                # Destination down: refuse by hanging up, the same
                # signal the sender would get dialing it directly.
                self.stats.upstream_refused += 1
                return
            pumps = [
                asyncio.ensure_future(self._pump(link, down_reader, up_writer)),
                asyncio.ensure_future(self._pump(link, up_reader, down_writer)),
            ]
            try:
                await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
            except asyncio.CancelledError:
                pass  # link cut mid-connection: close quietly (streams.py
                # would log a cancelled handler task as a callback error)
            finally:
                for pump in pumps:
                    pump.cancel()
                await asyncio.gather(*pumps, return_exceptions=True)
        except asyncio.CancelledError:
            pass  # cancelled before the pumps started
        finally:
            for writer in (down_writer, up_writer):
                if writer is None:
                    continue
                try:
                    writer.close()
                except Exception:  # pragma: no cover - best-effort close
                    pass

    async def _pump(self, link: _Link, reader, writer) -> None:
        """Forward whole frames one way, applying the current faults.

        Frame-aware on purpose: a dropped frame disappears entirely, so
        the surviving stream still decodes at the receiver — the live
        analogue of the sim fabric dropping whole messages.
        """
        spec = link.spec
        try:
            while True:
                header = await reader.readexactly(wire.HEADER_SIZE)
                length, __ = wire.decode_header(header)
                payload = await reader.readexactly(length)
                if (
                    self.drop_probability > 0.0
                    and self.rng.random() < self.drop_probability
                ):
                    self.stats.frames_dropped += 1
                    continue
                delay = self.latency.get(spec.src, 0.0) + self.latency.get(
                    spec.dst, 0.0
                )
                if delay > 0.0:
                    await asyncio.sleep(delay)
                rates = [
                    r
                    for r in (self.rate.get(spec.src), self.rate.get(spec.dst))
                    if r
                ]
                if rates:
                    await asyncio.sleep((wire.HEADER_SIZE + length) / min(rates))
                writer.write(header + payload)
                await writer.drain()
                self.stats.frames_forwarded += 1
                self.stats.bytes_forwarded += wire.HEADER_SIZE + length
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            wire.WireError,
        ):
            return

    # ------------------------------------------------------------------
    # Fault state
    # ------------------------------------------------------------------
    def _pair_links(self, a: str, b: str) -> list[_Link]:
        found = [
            self.links[key] for key in ((a, b), (b, a)) if key in self.links
        ]
        if not found:
            raise ValueError(f"no links between {a!r} and {b!r}")
        return found

    async def cut(self, a: str, b: str) -> None:
        """Partition machines ``a`` and ``b``: both directions die and
        stay refused until :meth:`heal`."""
        links = self._pair_links(a, b)
        pair = frozenset((a, b))
        if pair not in self.cut_pairs:
            self.cut_pairs.add(pair)
            self.stats.cuts += 1
        for link in links:
            await self._close_link(link)

    async def heal(self, a: str, b: str) -> None:
        links = self._pair_links(a, b)
        pair = frozenset((a, b))
        if pair in self.cut_pairs:
            self.cut_pairs.discard(pair)
            self.stats.heals += 1
        for link in links:
            await self._open_link(link)

    def set_latency(self, machine: str, seconds: float) -> None:
        if seconds > 0.0:
            self.latency[machine] = seconds
        else:
            self.latency.pop(machine, None)

    def set_rate(self, machine: str, bytes_per_second: float) -> None:
        if bytes_per_second > 0.0:
            self.rate[machine] = bytes_per_second
        else:
            self.rate.pop(machine, None)

    # ------------------------------------------------------------------
    # Control plane (JSON lines)
    # ------------------------------------------------------------------
    async def _serve_control(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._control_tasks.add(task)
            task.add_done_callback(self._control_tasks.discard)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    reply = await self._dispatch(json.loads(line))
                except asyncio.CancelledError:
                    raise
                except Exception as error:  # noqa: BLE001 - report to caller
                    reply = {"ok": False, "error": repr(error)}
                writer.write((json.dumps(reply) + "\n").encode())
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "links": len(self.links)}
        if op == "cut":
            await self.cut(str(request["a"]), str(request["b"]))
            return {"ok": True}
        if op == "heal":
            await self.heal(str(request["a"]), str(request["b"]))
            return {"ok": True}
        if op == "latency":
            self.set_latency(str(request["machine"]), float(request["seconds"]))
            return {"ok": True}
        if op == "drop":
            self.drop_probability = float(request["probability"])
            return {"ok": True}
        if op == "rate":
            self.set_rate(
                str(request["machine"]), float(request["bytes_per_second"])
            )
            return {"ok": True}
        if op == "stats":
            return {
                "ok": True,
                "stats": self.stats.as_dict(),
                "cut": sorted(sorted(pair) for pair in self.cut_pairs),
                "latency": dict(self.latency),
                "rate": dict(self.rate),
                "drop_probability": self.drop_probability,
            }
        if op == "shutdown":
            if self._stop is not None:
                self._stop.set()
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


def proxy_main(links_path: str | Path) -> int:
    """Synchronous entrypoint for ``repro.cli chaos-proxy``."""
    raw = json.loads(Path(links_path).read_text())
    links, control, seed = links_from_dict(raw)
    asyncio.run(ChaosProxy(links, control=control, seed=seed).serve())
    return 0


# ----------------------------------------------------------------------
# Control client
# ----------------------------------------------------------------------
class ChaosError(Exception):
    """The proxy rejected a control command."""


class ChaosControl:
    """Async client for the proxy's JSON-line control socket."""

    def __init__(self, address: tuple[str, int]) -> None:
        self.address = address
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._lock = asyncio.Lock()

    async def request(self, **command) -> dict:
        """Send one command; return the proxy's reply document.

        Raises :class:`ChaosError` when the proxy answers ``ok: false``
        and :class:`ConnectionError`/``OSError`` when it is unreachable.
        """
        async with self._lock:
            if self._writer is None:
                host, port = self.address
                self._reader, self._writer = await asyncio.open_connection(
                    host, port
                )
            self._writer.write((json.dumps(command) + "\n").encode())
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            await self.close()
            raise ConnectionError("chaos proxy closed the control connection")
        reply = json.loads(line)
        if not reply.get("ok"):
            raise ChaosError(reply.get("error", "unknown proxy error"))
        return reply

    async def ping(self) -> dict:
        return await self.request(op="ping")

    async def cut(self, a: str, b: str) -> None:
        await self.request(op="cut", a=a, b=b)

    async def heal(self, a: str, b: str) -> None:
        await self.request(op="heal", a=a, b=b)

    async def set_latency(self, machine: str, seconds: float) -> None:
        await self.request(op="latency", machine=machine, seconds=seconds)

    async def set_drop(self, probability: float) -> None:
        await self.request(op="drop", probability=probability)

    async def set_rate(self, machine: str, bytes_per_second: float) -> None:
        await self.request(
            op="rate", machine=machine, bytes_per_second=bytes_per_second
        )

    async def stats(self) -> dict:
        return await self.request(op="stats")

    async def shutdown(self) -> None:
        await self.request(op="shutdown")

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# ----------------------------------------------------------------------
# The live nemesis
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class _Action:
    """One entry of the executable timeline: the (time, action, target)
    record the log must show, plus what applying it needs."""

    time: float
    action: str
    target: str
    payload: Any = None

    @property
    def record(self) -> tuple[float, str, str]:
        return (self.time, self.action, self.target)


class LiveNemesis:
    """Interpret a chaos scenario against a real cluster.

    Args:
        events: The scenario (absolute offsets from :meth:`run` start).
        control: Proxy control client (partitions, drops, slowdowns).
        cluster: :class:`~repro.live.harness.LocalCluster` for crash
            events (SIGKILL + restart); optional when the scenario has
            none.
        supervisor: When given, crash targets are marked expected-down
            for the kill window so auto-restart does not race the
            scheduled recovery.
        base_drop_probability: Drop level restored after a burst.
        slow_unit: Seconds of one-way latency per unit of a
            :class:`~repro.chaos_events.SlowMachine` factor — the live
            reading of "``factor`` times slower".
    """

    def __init__(
        self,
        events: Sequence[NemesisEvent],
        control: ChaosControl | None = None,
        cluster=None,
        supervisor=None,
        base_drop_probability: float = 0.0,
        slow_unit: float = 0.02,
    ) -> None:
        self.events = sorted(events, key=lambda e: e.at)
        self.control = control
        self.cluster = cluster
        self.supervisor = supervisor
        self.base_drop_probability = base_drop_probability
        self.slow_unit = slow_unit
        self.log = NemesisLog()
        self.stats = NemesisStats()
        self._validate()
        self._actions = self._timeline()

    def _validate(self) -> None:
        node_names = set(self.cluster.spec.node_names) if self.cluster else None
        machines = (
            {machine_of(n) for n in node_names} | {DRIVER_MACHINE}
            if node_names is not None
            else None
        )
        for event in self.events:
            if isinstance(event, SkewClock):
                raise ValueError(
                    "SkewClock is sim-only: a live node's clock is the OS's"
                )
            if isinstance(event, CrashNode):
                if self.cluster is None:
                    raise ValueError("CrashNode events need a cluster")
                if event.target not in node_names:
                    raise ValueError(f"unknown crash target: {event.target!r}")
            elif isinstance(event, (PartitionPair, SlowMachine, DropBurst)):
                if self.control is None:
                    raise ValueError(f"{type(event).__name__} events need a proxy")
                if isinstance(event, PartitionPair) and machines is not None:
                    for machine in (event.machine_a, event.machine_b):
                        if machine not in machines:
                            raise ValueError(f"unknown machine: {machine!r}")
                if isinstance(event, SlowMachine) and machines is not None:
                    if event.machine not in machines:
                        raise ValueError(f"unknown machine: {event.machine!r}")
            else:
                raise TypeError(f"unknown nemesis event: {event!r}")

    def _timeline(self) -> list[_Action]:
        """The executable expansion of the scenario; its record tuples
        are exactly :func:`~repro.chaos_events.expected_records`."""
        actions: list[_Action] = []
        for event in self.events:
            if isinstance(event, CrashNode):
                actions.append(_Action(event.at, "crash", event.target, event.target))
                if event.downtime is not None:
                    actions.append(
                        _Action(
                            event.at + event.downtime,
                            "recover",
                            event.target,
                            event.target,
                        )
                    )
            elif isinstance(event, PartitionPair):
                key = f"{event.machine_a}|{event.machine_b}"
                pair = (event.machine_a, event.machine_b)
                actions.append(_Action(event.at, "partition", key, pair))
                actions.append(
                    _Action(event.at + event.duration, "heal", key, pair)
                )
            elif isinstance(event, DropBurst):
                actions.append(
                    _Action(
                        event.at,
                        "drop_burst",
                        f"p={event.probability}",
                        event.probability,
                    )
                )
                actions.append(
                    _Action(
                        event.at + event.duration,
                        "drop_restore",
                        f"p={self.base_drop_probability}",
                        self.base_drop_probability,
                    )
                )
            elif isinstance(event, SlowMachine):
                actions.append(
                    _Action(
                        event.at,
                        "slow",
                        event.machine,
                        (event.machine, self.slow_unit * event.factor),
                    )
                )
                actions.append(
                    _Action(
                        event.at + event.duration,
                        "restore_speed",
                        event.machine,
                        (event.machine, 0.0),
                    )
                )
        return sorted(actions, key=lambda a: a.record)

    async def run(self) -> NemesisLog:
        """Apply every action at its scheduled offset from now."""
        start = time.monotonic()
        for action in self._actions:
            delay = action.time - (time.monotonic() - start)
            if delay > 0:
                await asyncio.sleep(delay)
            await self._apply(action)
            self.log.add(
                action.time,
                action.action,
                action.target,
                wall=time.monotonic() - start,
            )
        return self.log

    async def _apply(self, action: _Action) -> None:
        kind = action.action
        logger.info("nemesis t=%.3f %s %s", action.time, kind, action.target)
        if kind == "crash":
            if self.supervisor is not None:
                self.supervisor.expect_down(action.payload)
            await asyncio.to_thread(self.cluster.kill9, action.payload)
            self.stats.crashes += 1
        elif kind == "recover":
            await asyncio.to_thread(self.cluster.restart, action.payload)
            if self.supervisor is not None:
                self.supervisor.expect_up(action.payload)
            self.stats.restarts += 1
        elif kind == "partition":
            await self.control.cut(*action.payload)
            self.stats.partitions += 1
        elif kind == "heal":
            await self.control.heal(*action.payload)
            self.stats.heals += 1
        elif kind == "drop_burst":
            await self.control.set_drop(action.payload)
            self.stats.drop_bursts += 1
        elif kind == "drop_restore":
            await self.control.set_drop(action.payload)
        elif kind == "slow":
            await self.control.set_latency(*action.payload)
            self.stats.slowdowns += 1
        elif kind == "restore_speed":
            await self.control.set_latency(*action.payload)
        else:  # pragma: no cover - timeline only emits the above
            raise ValueError(f"unknown action {kind!r}")
