"""The asyncio effect interpreter: the live backend of the kernel protocol.

:class:`AsyncioKernel` implements the same effect surface as the
simulation kernel (:mod:`repro.effects`), with the asyncio event loop
in place of the virtual-time heap:

* ``event()`` — a one-shot waitable dispatched via ``loop.call_soon``;
* ``timeout(delay)`` — ``loop.call_later`` (i.e. real ``asyncio.sleep``);
* ``spawn(generator)`` — the generator is *driven by callbacks*, one
  resume per fired waitable, identical to the sim's Process semantics
  (including interrupts and exception propagation);
* ``all_of`` / ``any_of`` — gather/first-of barriers.

Because the driving discipline is the same, node code cannot tell the
backends apart: ``yield self.call(...)`` waits on a reply event either
way; only *what fires the event* differs (a heap pop vs a TCP frame).

:class:`LiveMachine` satisfies the compute protocol.  The modelled cost
becomes a measured await: scaled by ``compute_scale`` into a real sleep
held under a core slot (for emulation experiments), or — the default,
``compute_scale=0`` — a plain cooperative yield, since on real hardware
the merge/probe work inside the generator already costs real CPU time.

:class:`LiveNetwork` satisfies the fabric protocol: local destinations
get loopback delivery on the loop; remote destinations are serialised
with :mod:`repro.live.wire` and shipped by :mod:`repro.live.transport`.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import random
import time
from typing import Any, Callable, Iterable

from repro.effects import ProcessGen
from repro.sim.resources import Resource, Store

from . import wire
from .transport import RetryPolicy, Transport

logger = logging.getLogger("repro.live.runtime")

#: Core count mirroring the sim default (t2.xlarge).
DEFAULT_CORES = 4


class LiveError(Exception):
    """Live-runtime usage errors (double trigger, bad yield, ...)."""


class Interrupted(LiveError):
    """Raised inside a process another process interrupted."""


class LiveEvent:
    """One-shot waitable with the same contract as the sim Event."""

    __slots__ = ("kernel", "callbacks", "triggered", "ok", "value", "defused")

    def __init__(self, kernel: "AsyncioKernel") -> None:
        self.kernel = kernel
        self.callbacks: list[Callable[["LiveEvent"], None]] = []
        self.triggered = False
        self.ok = True
        self.value: Any = None
        self.defused = False

    def succeed(self, value: Any = None) -> "LiveEvent":
        if self.triggered:
            raise LiveError("event already triggered")
        self.triggered = True
        self.value = value
        self.kernel._soon(self._dispatch)
        return self

    def fail(self, exception: BaseException) -> "LiveEvent":
        if self.triggered:
            raise LiveError("event already triggered")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.kernel._soon(self._dispatch)
        return self

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        if not callbacks and not self.ok and not self.defused:
            # The sim escalates into Kernel.run(); a live node logs and
            # keeps serving (one failed background process must not take
            # the whole process down).
            logger.error("unhandled event failure: %r", self.value)
            return
        for callback in callbacks:
            callback(self)

    def _add_callback(self, callback: Callable[["LiveEvent"], None]) -> None:
        if self.triggered:
            self.kernel._soon(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class LiveTimeout(LiveEvent):
    """Fires after a real-time delay (``loop.call_later``)."""

    __slots__ = ()

    def __init__(self, kernel: "AsyncioKernel", delay: float, value: Any = None) -> None:
        super().__init__(kernel)
        if delay < 0:
            raise LiveError(f"negative timeout: {delay}")
        kernel._later(delay, lambda: self._fire(value))

    def _fire(self, value: Any) -> None:
        if self.triggered:  # pragma: no cover - defensive
            return
        self.triggered = True
        self.value = value
        self._dispatch()


class LiveProcess(LiveEvent):
    """A generator driven by event callbacks; fires when it returns.

    The resume discipline is copied from the sim kernel's Process so
    interrupt/exception semantics are identical across backends.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_interrupt")

    def __init__(
        self, kernel: "AsyncioKernel", generator: ProcessGen, name: str = ""
    ) -> None:
        super().__init__(kernel)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: LiveEvent | None = None
        self._interrupt: BaseException | None = None
        kernel._soon(lambda: self._resume(None, None))

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, reason: str = "") -> None:
        if self.triggered:
            return
        exc = Interrupted(reason)
        if self._waiting_on is not None:
            waiting, self._waiting_on = self._waiting_on, None
            try:
                waiting.callbacks.remove(self._on_event)
            except ValueError:
                pass
            self.kernel._soon(lambda: self._resume(None, exc))
        else:
            self._interrupt = exc

    def _on_event(self, event: LiveEvent) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: BaseException | None) -> None:
        if self.triggered:
            return
        if self._interrupt is not None and exc is None:
            exc, self._interrupt = self._interrupt, None
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.triggered = True
            self.value = stop.value
            self.kernel._soon(self._dispatch)
            return
        except Interrupted:
            self.triggered = True
            self.value = None
            self.kernel._soon(self._dispatch)
            return
        except BaseException as error:  # noqa: BLE001 - deliver to waiters
            self.triggered = True
            self.ok = False
            self.value = error
            self.kernel._soon(self._dispatch)
            return
        if not isinstance(target, LiveEvent):
            raise LiveError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "not a live-kernel event"
            )
        self._waiting_on = target
        target._add_callback(self._on_event)


class LiveAllOf(LiveEvent):
    """Fires when every child fires; value is the list of values."""

    __slots__ = ("_pending", "_values")

    def __init__(self, kernel: "AsyncioKernel", events: Iterable[LiveEvent]) -> None:
        super().__init__(kernel)
        events = list(events)
        self._pending = len(events)
        self._values: list[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event._add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[LiveEvent], None]:
        def on_fire(event: LiveEvent) -> None:
            if self.triggered:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return on_fire


class LiveAnyOf(LiveEvent):
    """Fires with (index, value) of the first child to fire."""

    __slots__ = ()

    def __init__(self, kernel: "AsyncioKernel", events: Iterable[LiveEvent]) -> None:
        super().__init__(kernel)
        for index, event in enumerate(events):
            event._add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[LiveEvent], None]:
        def on_fire(event: LiveEvent) -> None:
            if self.triggered:
                return
            if event.ok:
                self.succeed((index, event.value))
            else:
                self.fail(event.value)

        return on_fire


class AsyncioKernel:
    """The live implementation of the effect-kernel protocol.

    ``now`` is monotonic wall time, measured from kernel creation, so
    histories recorded under this kernel start near t=0 just like
    simulated ones.  Must be created (and used) inside a running event
    loop.
    """

    def __init__(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._t0 = time.monotonic()
        self.events_dispatched = 0
        self._processes_spawned = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return time.monotonic() - self._t0

    def _soon(self, callback: Callable[[], None]) -> None:
        self.events_dispatched += 1
        self._loop.call_soon(callback)

    def _later(self, delay: float, callback: Callable[[], None]) -> None:
        self._loop.call_later(delay, callback)

    # ------------------------------------------------------------------
    # Effect surface
    # ------------------------------------------------------------------
    def event(self) -> LiveEvent:
        return LiveEvent(self)

    def timeout(self, delay: float, value: Any = None) -> LiveTimeout:
        return LiveTimeout(self, delay, value)

    def spawn(self, generator: ProcessGen, name: str = "") -> LiveProcess:
        self._processes_spawned += 1
        return LiveProcess(self, generator, name)

    def all_of(self, events: Iterable[LiveEvent]) -> LiveAllOf:
        return LiveAllOf(self, events)

    def any_of(self, events: Iterable[LiveEvent]) -> LiveAnyOf:
        return LiveAnyOf(self, events)

    # ------------------------------------------------------------------
    # Driving from async code
    # ------------------------------------------------------------------
    async def run(self, generator: ProcessGen, name: str = "") -> Any:
        """Spawn a process and await its completion (awaitable bridge)."""
        process = self.spawn(generator, name)
        future: asyncio.Future = self._loop.create_future()

        def on_done(event: LiveEvent) -> None:
            if future.cancelled():
                return
            if event.ok:
                future.set_result(event.value)
            else:
                future.set_exception(event.value)

        process._add_callback(on_done)
        return await future


class LiveMachine:
    """Compute host for the live backend.

    ``execute`` holds a slot in a core pool for the modelled cost scaled
    by ``compute_scale`` real seconds.  With the default scale of 0 it
    degenerates to a single cooperative yield: the real CPU work of the
    surrounding generator code *is* the cost, and the yield keeps long
    merges from starving the event loop between entries of the effect
    protocol.
    """

    def __init__(
        self,
        kernel: AsyncioKernel,
        name: str,
        cores: int = DEFAULT_CORES,
        speed: float = 1.0,
        compute_scale: float = 0.0,
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        if compute_scale < 0:
            raise ValueError("compute_scale must be non-negative")
        self.kernel = kernel
        self.name = name
        self.speed = speed
        self.compute_scale = compute_scale
        self.cores = Resource(kernel, cores)
        self.busy_time = 0.0  # cumulative modelled core-seconds

    def execute(self, cost_seconds: float):
        if cost_seconds < 0:
            raise ValueError("cost must be non-negative")
        if cost_seconds == 0:
            return
        self.busy_time += cost_seconds / self.speed
        scaled = cost_seconds * self.compute_scale / self.speed
        if scaled <= 0:
            yield self.kernel.timeout(0.0)
            return
        yield from self.cores.use(scaled)


class LiveNetwork:
    """The live fabric: named inboxes over loopback + framed TCP.

    Local node names (registered in this process) get loopback delivery
    on the event loop.  Remote names resolve through the address map and
    travel as wire envelopes; unknown names surface as upper-layer RPC
    timeouts, never sender-side crashes.
    """

    def __init__(
        self,
        kernel: AsyncioKernel,
        addresses: dict[str, tuple[str, int]],
        policy: RetryPolicy | None = None,
        rng: random.Random | None = None,
        max_queued: int = 10_000,
        overflow: str = "drop",
        compress_min_bytes: int = 0,
    ) -> None:
        self.kernel = kernel
        self.addresses = dict(addresses)
        self.transport = Transport(
            self.addresses,
            self._on_payload,
            policy=policy,
            rng=rng,
            max_queued=max_queued,
            overflow=overflow,
            compress_min_bytes=compress_min_bytes,
        )
        self._inboxes: dict[str, Store] = {}
        self._machines: dict[str, LiveMachine] = {}
        self._frame_ids = itertools.count(1)
        self.unroutable = 0

    # ------------------------------------------------------------------
    # Fabric protocol
    # ------------------------------------------------------------------
    def register(self, name: str, machine: LiveMachine) -> Store:
        if name in self._inboxes:
            raise ValueError(f"node name already registered: {name}")
        inbox = Store(self.kernel)
        self._inboxes[name] = inbox
        self._machines[name] = machine
        return inbox

    def machine_of(self, name: str) -> LiveMachine:
        return self._machines[name]

    def send(self, src: str, dst: str, message: Any, size_bytes: int = 256) -> None:
        inbox = self._inboxes.get(dst)
        if inbox is not None:
            # Loopback: deliver on the next loop tick so the send/receive
            # asynchrony the node layer assumes is preserved in-process.
            self.kernel._soon(lambda: inbox.put((src, message)))
            return
        payload = wire.encode_envelope_buffer(next(self._frame_ids), src, dst, message)
        self.transport.post(dst, payload)

    # ------------------------------------------------------------------
    # Transport glue
    # ------------------------------------------------------------------
    def _on_payload(self, payload: bytes) -> None:
        # A memoryview keeps the recursive decode zero-copy: nested
        # slices share this buffer until each value's final bytes().
        __, src, dst, message = wire.decode_envelope(memoryview(payload))
        inbox = self._inboxes.get(dst)
        if inbox is None:
            self.unroutable += 1
            logger.warning("frame for unknown local node %s from %s", dst, src)
            return
        inbox.put((src, message))

    async def listen(self, host: str, port: int) -> None:
        await self.transport.listen(host, port)

    async def close(self) -> None:
        await self.transport.close()
