"""Binary wire codec for the live runtime.  No dependencies.

Two layers:

**Values.**  A tagged, recursive encoding of every payload CooLSM nodes
exchange: ``None``, bools, 64-bit ints, doubles, bytes, str, tuples,
lists, dicts, :class:`~repro.lsm.entry.Entry`,
:class:`~repro.lsm.sstable.SSTable`, and every registered message
dataclass.  Entries and sstables get dedicated compact forms because
they dominate traffic (a forwarded sstable is thousands of entries);
sstables are rebuilt on decode from their entries plus construction
parameters (``table_id``, ``block_entries``, ``bloom_fp_rate``), so
bloom filters and fence pointers are reconstructed rather than shipped.

**Frames.**  Length-prefixed with a magic and a CRC32 over the payload::

    +-------+----------+---------+--------------------+
    | magic | length u32 | crc u32 | payload (length B) |
    +-------+----------+---------+--------------------+

The top three bits of the length word are frame flags (the payload
length itself is bounded well below 2**29): :data:`FLAG_ZLIB` marks a
zlib-compressed payload — the CRC always covers the *on-wire* bytes,
so corruption is detected before any decompression.  A corrupted or
truncated frame raises :class:`WireError`; the transport closes the
connection (TCP already protects in flight — the CRC guards against
framing bugs and partial writes around reconnects).

Hot-path framing is zero-copy: :func:`encode_frame_into` appends the
header and payload to a caller-owned ``bytearray`` (the transport
reuses one scratch buffer per peer and drains many frames into a
single socket write), and the decode path slices a ``memoryview`` of
the received payload so nested values never copy the buffer before
their final ``bytes`` materialisation.  :func:`encode_frame` remains
as the one-shot convenience used by tests and the chaos proxy.

**Registry.**  Message dataclasses are registered with *explicit* type
ids so every process agrees on the numbering regardless of import
order.  :func:`missing_codecs` reflects over a module and reports any
message dataclass (or field type) the codec cannot carry — the
completeness guard test fails the build when a new message is added
without wire support.
"""

from __future__ import annotations

import dataclasses
import struct
import types
import typing
import zlib

from repro.lsm.entry import Entry
from repro.lsm.sstable import SSTable

__all__ = [
    "WireError",
    "MAGIC",
    "HEADER_SIZE",
    "MAX_FRAME_BYTES",
    "FLAG_ZLIB",
    "KNOWN_FLAGS",
    "encode_value",
    "decode_value",
    "encode_frame",
    "encode_frame_into",
    "decode_header",
    "decode_header_full",
    "check_payload",
    "encode_envelope",
    "encode_envelope_buffer",
    "decode_envelope",
    "message_registry",
    "missing_codecs",
]


class WireError(Exception):
    """Malformed frame or unencodable value."""


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
MAGIC = b"CoL1"
_HEADER = struct.Struct(">4sII")  # magic, payload length, crc32(payload)
HEADER_SIZE = _HEADER.size
#: Upper bound on one frame's payload; a forwarded batch of sstables is
#: the largest message and stays far below this in any sane deployment.
MAX_FRAME_BYTES = 256 * 1024 * 1024

# Frame flags live in the top 3 bits of the length word; the payload
# length (<= MAX_FRAME_BYTES = 2**28) never reaches them.
_FLAG_SHIFT = 29
_LENGTH_MASK = (1 << _FLAG_SHIFT) - 1
#: Payload is zlib-compressed; the CRC covers the compressed bytes.
FLAG_ZLIB = 0x1
#: Every flag this codec version understands (receivers reject others).
KNOWN_FLAGS = FLAG_ZLIB
_FLAGS_MAX = (1 << (32 - _FLAG_SHIFT)) - 1


def encode_frame_into(out: bytearray, payload: bytes, flags: int = 0) -> None:
    """Append one framed payload to ``out`` without intermediate copies.

    The transport writer drains its whole queue through this into one
    reused scratch buffer, then issues a single socket write.
    """
    length = len(payload)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame too large: {length} bytes")
    if not 0 <= flags <= _FLAGS_MAX:
        raise WireError(f"frame flags out of range: {flags:#x}")
    out += _HEADER.pack(MAGIC, length | (flags << _FLAG_SHIFT), zlib.crc32(payload))
    out += payload


def encode_frame(payload: bytes, flags: int = 0) -> bytes:
    """Wrap an encoded payload in a length+CRC header (one-shot form)."""
    out = bytearray()
    encode_frame_into(out, payload, flags)
    return bytes(out)


def decode_header_full(header: bytes) -> tuple[int, int, int]:
    """Parse and validate a frame header; returns (length, crc, flags).

    Unknown flag bits are preserved, not rejected — forwarding relays
    (the chaos proxy) must pass frames through byte-for-byte even when
    they predate a flag.  Endpoint receivers reject flags they cannot
    interpret (see the transport's receive path).
    """
    if len(header) != HEADER_SIZE:
        raise WireError(f"short header: {len(header)} bytes")
    magic, word, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad magic: {magic!r}")
    length = word & _LENGTH_MASK
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame too large: {length} bytes")
    return length, crc, word >> _FLAG_SHIFT


def decode_header(header: bytes) -> tuple[int, int]:
    """Parse and validate a frame header; returns (length, crc)."""
    length, crc, __ = decode_header_full(header)
    return length, crc


def check_payload(payload: bytes, crc: int) -> None:
    """Raise :class:`WireError` unless the payload matches its CRC."""
    actual = zlib.crc32(payload)
    if actual != crc:
        raise WireError(f"crc mismatch: expected {crc:#010x}, got {actual:#010x}")


# ----------------------------------------------------------------------
# Tagged values
# ----------------------------------------------------------------------
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_BYTES = 5
_T_STR = 6
_T_TUPLE = 7
_T_LIST = 8
_T_DICT = 9
_T_ENTRY = 10
_T_SSTABLE = 11
_T_MSG = 12
# Dedicated forms for the pipelined write path: a batch of upserts (and
# its per-op replies) is the hot message under load, so each gets a
# packed block encoding instead of one recursive _T_MSG per op.
_T_UPSERT_BATCH = 13
_T_UPSERT_BATCH_REPLY = 14

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U16 = struct.Struct(">H")
_ENTRY_FIXED = struct.Struct(">qdB")  # seqno, timestamp, tombstone
_SSTABLE_FIXED = struct.Struct(">qIdI")  # table_id, block_entries, fp_rate, count
_REPLY_FIXED = struct.Struct(">dq")  # timestamp, seqno

#: Bound to the batch message classes once the registry loads (late, to
#: avoid importing repro.core.messages at module import time).
_BATCH_REQUEST_CLS: type | None = None
_BATCH_REPLY_CLS: type | None = None
_UPSERT_REQUEST_CLS: type | None = None
_UPSERT_REPLY_CLS: type | None = None

_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1

#: message class -> explicit type id (and the inverse).
_MESSAGE_IDS: dict[type, int] = {}
_MESSAGE_BY_ID: dict[int, type] = {}


def register_message(cls: type, type_id: int) -> type:
    """Register a dataclass under an explicit wire type id."""
    if not (dataclasses.is_dataclass(cls) and isinstance(cls, type)):
        raise WireError(f"{cls!r} is not a dataclass type")
    existing = _MESSAGE_BY_ID.get(type_id)
    if existing is not None and existing is not cls:
        raise WireError(f"type id {type_id} already bound to {existing.__name__}")
    _MESSAGE_IDS[cls] = type_id
    _MESSAGE_BY_ID[type_id] = cls
    return cls


def message_registry() -> dict[type, int]:
    """A copy of the registered message classes and their type ids."""
    return dict(_MESSAGE_IDS)


def _encode_entry_body(entry: Entry, out: bytearray) -> None:
    out += _U32.pack(len(entry.key))
    out += entry.key
    out += _ENTRY_FIXED.pack(entry.seqno, entry.timestamp, 1 if entry.tombstone else 0)
    out += _U32.pack(len(entry.value))
    out += entry.value


def _decode_entry_body(buf: bytes, pos: int) -> tuple[Entry, int]:
    (key_len,) = _U32.unpack_from(buf, pos)
    pos += 4
    key = bytes(buf[pos : pos + key_len])
    pos += key_len
    seqno, timestamp, tombstone = _ENTRY_FIXED.unpack_from(buf, pos)
    pos += _ENTRY_FIXED.size
    (value_len,) = _U32.unpack_from(buf, pos)
    pos += 4
    value = bytes(buf[pos : pos + value_len])
    pos += value_len
    return Entry(key, seqno, timestamp, value, tombstone=bool(tombstone)), pos


def encode_value(value: typing.Any, out: bytearray) -> None:
    """Append the tagged encoding of ``value`` to ``out``."""
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        if not _INT64_MIN <= value <= _INT64_MAX:
            raise WireError(f"int out of 64-bit range: {value}")
        out.append(_T_INT)
        out += _I64.pack(value)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out += _F64.pack(value)
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += value
    elif isinstance(value, str):
        encoded = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(encoded))
        out += encoded
    elif isinstance(value, Entry):
        out.append(_T_ENTRY)
        _encode_entry_body(value, out)
    elif isinstance(value, SSTable):
        out.append(_T_SSTABLE)
        out += _SSTABLE_FIXED.pack(
            value.table_id,
            value._block_entries,
            value.bloom_fp_rate,
            len(value.entries),
        )
        for entry in value.entries:
            _encode_entry_body(entry, out)
    elif type(value) is _BATCH_REQUEST_CLS:
        out.append(_T_UPSERT_BATCH)
        out += _U32.pack(len(value.ops))
        for op in value.ops:
            out += _U32.pack(len(op.key))
            out += op.key
            out += _U32.pack(len(op.value))
            out += op.value
            out.append(1 if op.tombstone else 0)
    elif type(value) is _BATCH_REPLY_CLS:
        out.append(_T_UPSERT_BATCH_REPLY)
        out += _U32.pack(len(value.replies))
        for reply in value.replies:
            out += _REPLY_FIXED.pack(reply.timestamp, reply.seqno)
    elif type(value) in _MESSAGE_IDS:
        out.append(_T_MSG)
        out += _U16.pack(_MESSAGE_IDS[type(value)])
        field_values = [
            getattr(value, f.name) for f in dataclasses.fields(value)
        ]
        out += _U16.pack(len(field_values))
        for item in field_values:
            encode_value(item, out)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, list):
        out.append(_T_LIST)
        out += _U32.pack(len(value))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            encode_value(key, out)
            encode_value(item, out)
    else:
        raise WireError(f"unencodable value of type {type(value).__name__}")


def decode_value(buf: bytes, pos: int = 0) -> tuple[typing.Any, int]:
    """Decode one tagged value starting at ``pos``; returns (value, end)."""
    try:
        return _decode(buf, pos)
    except (struct.error, IndexError) as error:
        raise WireError(f"truncated value at offset {pos}") from error


def _decode(buf: bytes, pos: int) -> tuple[typing.Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        (value,) = _I64.unpack_from(buf, pos)
        return value, pos + 8
    if tag == _T_FLOAT:
        (value,) = _F64.unpack_from(buf, pos)
        return value, pos + 8
    if tag in (_T_BYTES, _T_STR):
        (length,) = _U32.unpack_from(buf, pos)
        pos += 4
        if pos + length > len(buf):
            raise WireError("truncated bytes/str value")
        raw = bytes(buf[pos : pos + length])
        pos += length
        return (raw if tag == _T_BYTES else raw.decode("utf-8")), pos
    if tag == _T_ENTRY:
        return _decode_entry_body(buf, pos)
    if tag == _T_SSTABLE:
        table_id, block_entries, fp_rate, count = _SSTABLE_FIXED.unpack_from(buf, pos)
        pos += _SSTABLE_FIXED.size
        entries: list[Entry] = []
        for __ in range(count):
            entry, pos = _decode_entry_body(buf, pos)
            entries.append(entry)
        table = SSTable(
            entries,
            block_entries=block_entries,
            bloom_fp_rate=fp_rate,
            table_id=table_id,
        )
        return table, pos
    if tag == _T_UPSERT_BATCH:
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        ops = []
        for __ in range(count):
            (key_len,) = _U32.unpack_from(buf, pos)
            pos += 4
            key = bytes(buf[pos : pos + key_len])
            pos += key_len
            (value_len,) = _U32.unpack_from(buf, pos)
            pos += 4
            value = bytes(buf[pos : pos + value_len])
            pos += value_len
            tombstone = buf[pos]
            pos += 1
            ops.append(_UPSERT_REQUEST_CLS(key, value, tombstone=bool(tombstone)))
        return _BATCH_REQUEST_CLS(tuple(ops)), pos
    if tag == _T_UPSERT_BATCH_REPLY:
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        replies = []
        for __ in range(count):
            timestamp, seqno = _REPLY_FIXED.unpack_from(buf, pos)
            pos += _REPLY_FIXED.size
            replies.append(_UPSERT_REPLY_CLS(timestamp, seqno))
        return _BATCH_REPLY_CLS(tuple(replies)), pos
    if tag == _T_MSG:
        (type_id,) = _U16.unpack_from(buf, pos)
        pos += 2
        cls = _MESSAGE_BY_ID.get(type_id)
        if cls is None:
            raise WireError(f"unknown message type id {type_id}")
        (count,) = _U16.unpack_from(buf, pos)
        pos += 2
        declared = dataclasses.fields(cls)
        if count != len(declared):
            raise WireError(
                f"{cls.__name__}: expected {len(declared)} fields, frame has {count}"
            )
        values = []
        for __ in range(count):
            value, pos = _decode(buf, pos)
            values.append(value)
        return cls(*values), pos
    if tag in (_T_TUPLE, _T_LIST):
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        items = []
        for __ in range(count):
            item, pos = _decode(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        (count,) = _U32.unpack_from(buf, pos)
        pos += 4
        result: dict = {}
        for __ in range(count):
            key, pos = _decode(buf, pos)
            value, pos = _decode(buf, pos)
            result[key] = value
        return result, pos
    raise WireError(f"unknown value tag {tag}")


# ----------------------------------------------------------------------
# Envelopes: what actually travels between processes
# ----------------------------------------------------------------------
def encode_envelope_buffer(
    frame_id: int, src: str, dst: str, message: typing.Any
) -> bytearray:
    """Encode one routed message as an (unframed) payload buffer.

    Returns the working ``bytearray`` itself so the hot path skips the
    final ``bytes()`` materialisation — the transport frames it with
    :func:`encode_frame_into` without another copy.
    """
    out = bytearray()
    encode_value((frame_id, src, dst, message), out)
    return out


def encode_envelope(frame_id: int, src: str, dst: str, message: typing.Any) -> bytes:
    """Encode one routed message as an (unframed) payload."""
    return bytes(encode_envelope_buffer(frame_id, src, dst, message))


def decode_envelope(payload: bytes) -> tuple[int, str, str, typing.Any]:
    """Decode a payload produced by :func:`encode_envelope`.

    Accepts ``bytes`` or a ``memoryview`` — the transport hands in a
    memoryview so nested slices stay zero-copy until each leaf value's
    final ``bytes`` materialisation.
    """
    value, end = decode_value(payload, 0)
    if end != len(payload):
        raise WireError(f"{len(payload) - end} trailing bytes after envelope")
    if not (isinstance(value, tuple) and len(value) == 4):
        raise WireError("envelope is not a 4-tuple")
    frame_id, src, dst, message = value
    if not isinstance(frame_id, int) or not isinstance(src, str) or not isinstance(dst, str):
        raise WireError("malformed envelope header")
    return frame_id, src, dst, message


# ----------------------------------------------------------------------
# Registry contents
# ----------------------------------------------------------------------
def _register_all() -> None:
    from repro.core import messages, shard
    from repro.sim import rpc

    protocol = [
        (1, messages.UpsertRequest),
        (2, messages.UpsertReply),
        (3, messages.ReadRequest),
        (4, messages.ReadReply),
        (5, messages.Phase1Request),
        (6, messages.IngestorReadResult),
        (7, messages.Phase1Reply),
        (8, messages.ForwardRequest),
        (9, messages.ForwardReply),
        (10, messages.BackupUpdate),
        (11, messages.AreaSnapshot),
        (12, messages.IngestorL1Update),
        (13, messages.RangeQuery),
        (14, messages.RangeQueryReply),
        (15, messages.NodeStats),
        (16, messages.HealthPing),
        (17, messages.HealthReply),
        (18, messages.UpsertBatchRequest),
        (19, messages.UpsertBatchReply),
        # Shard-map / membership layer (live scale-out).
        (20, shard.Shard),
        (21, shard.ShardMap),
        (22, messages.ShardMapRequest),
        (23, messages.ShardMapReply),
        (24, messages.InstallShardMap),
        (25, messages.InstallShardMapReply),
        (26, messages.ShardDrainRequest),
        (27, messages.ShardDrainReply),
        # RPC envelopes (the request/response/cast framing the RpcNode
        # layer wraps around every payload).
        (64, rpc._Request),
        (65, rpc._Response),
        (66, rpc._Cast),
    ]
    for type_id, cls in protocol:
        register_message(cls, type_id)
    # Hot-path classes for the packed batch forms (the registry entries
    # above keep the generic _T_MSG encoding decodable too).
    global _BATCH_REQUEST_CLS, _BATCH_REPLY_CLS
    global _UPSERT_REQUEST_CLS, _UPSERT_REPLY_CLS
    _BATCH_REQUEST_CLS = messages.UpsertBatchRequest
    _BATCH_REPLY_CLS = messages.UpsertBatchReply
    _UPSERT_REQUEST_CLS = messages.UpsertRequest
    _UPSERT_REPLY_CLS = messages.UpsertReply


_register_all()


# ----------------------------------------------------------------------
# Completeness guard
# ----------------------------------------------------------------------
_ATOM_TYPES = {bytes, str, int, float, bool, type(None), Entry, SSTable}


def _type_carriable(tp: typing.Any) -> bool:
    """Can values of annotation ``tp`` travel over this codec?"""
    if tp in _ATOM_TYPES:
        return True
    if tp is dict or tp is list or tp is tuple or tp is typing.Any:
        return True
    if isinstance(tp, type) and tp in _MESSAGE_IDS:
        return True
    origin = typing.get_origin(tp)
    if origin is typing.Union or origin is types.UnionType:
        return all(_type_carriable(arg) for arg in typing.get_args(tp))
    if origin in (tuple, list, set):
        args = [a for a in typing.get_args(tp) if a is not Ellipsis]
        return origin is not set and all(_type_carriable(arg) for arg in args)
    if origin is dict:
        return all(_type_carriable(arg) for arg in typing.get_args(tp))
    return False


def missing_codecs(module) -> list[str]:
    """Reflect over ``module`` and report every message dataclass that
    is not registered, and every field annotation the codec cannot
    carry.  Empty list == the wire protocol is complete for the module.
    """
    problems: list[str] = []
    for name in sorted(vars(module)):
        obj = getattr(module, name)
        if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
            continue
        if obj.__module__ != module.__name__:
            continue  # re-exported from elsewhere
        if obj not in _MESSAGE_IDS:
            problems.append(f"{name}: no registered wire codec")
            continue
        hints = typing.get_type_hints(obj)
        for field in dataclasses.fields(obj):
            annotation = hints.get(field.name, typing.Any)
            if not _type_carriable(annotation):
                problems.append(
                    f"{name}.{field.name}: uncarriable type {annotation!r}"
                )
    return problems
