"""CooLSM reproduction: distributed cooperative LSM indexing across edge
and cloud machines (Mittal & Nawab, ICDE 2021).

Subpackages:

- :mod:`repro.lsm` — single-node LSM engine (memtable, sstables, bloom
  filters, WAL, compaction), the substrate every component builds on.
- :mod:`repro.sim` — deterministic discrete-event simulator: machines,
  regions, wide-area network, RPC, loosely synchronised clocks.
- :mod:`repro.core` — CooLSM itself: Ingestors, Compactors, Readers,
  the client protocols, and the consistency checkers.
- :mod:`repro.replication` — Paxos-replicated logs and Compactor
  failover (Section III-H).
- :mod:`repro.baselines` — LevelDB-like and RocksDB-like single-node
  reference engines.
- :mod:`repro.workloads` — workload generators, including the smart
  traffic benchmark (Section IV-E).
- :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the paper's evaluation.
"""

__version__ = "1.0.0"
