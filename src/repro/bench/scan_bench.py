"""Scan-path benchmark: Reader sorted view vs streaming merge.

Produces the checked-in ``BENCH_scan.json``.  Three phases:

* **direct** (the headline): a Reader at realistic area scale —
  several overlapping per-Compactor areas, leveled L2/L3 runs installed
  through the real ``BackupUpdate`` path so the sorted view is built by
  its own incremental rebuilds — then the scan-heavy workload's range
  sequence is timed wall-clock through both engines behind
  :meth:`Reader.scan_pairs`: the streaming k-way merge and the
  view-backed anchor walk.  Every scan's results are compared
  (``identical`` must stay True — the view is only fast *and* right),
  and the headline gate is the **p50 speedup ratio**, which is
  machine-relative: both paths run in the same process on the same
  state, so heterogeneous CI machines compare ratios, never seconds.

* **sim**: the scan-heavy workload driven end-to-end through the
  simulated cluster with ``sorted_view`` on and off.  Modelled compute
  costs are charged identically on both paths, so the two runs must
  produce the *same simulated schedule* (``schedule_identical``) — the
  in-run restatement of the flag-off byte-identity guarantee.

* **live** (skippable): the same workload against a real-socket durable
  cluster with the view on — wall-clock analytics latencies through the
  full RPC + persistence stack, recorded for context (not gated: a
  single live run has no in-run baseline to be relative to).

Run::

    PYTHONPATH=src python -m repro.cli scan-bench --out BENCH_scan.json
    PYTHONPATH=src python -m repro.cli scan-bench --smoke --check BENCH_scan.json
"""

from __future__ import annotations

import asyncio
import json
import platform
import sys
import tempfile
import time
from dataclasses import replace

from repro.core import ClusterSpec, CooLSMConfig, build_cluster
from repro.core.messages import BackupUpdate
from repro.lsm.entry import encode_key, make_upsert
from repro.lsm.sstable import SSTable
from repro.workloads.scan_heavy import scan_heavy, scan_ranges

from .metrics import LatencySummary

#: Invariant floor (acceptance criterion, not a tuning knob): the
#: view-backed scan must at least double the streaming merge's p50.
MIN_SCAN_P50_SPEEDUP = 2.0

_SIM_PRELOAD = 1_200
_SIM_SCAN_OPS = 150


# ----------------------------------------------------------------------
# Direct phase: one Reader, areas at scale, A/B the two scan engines
# ----------------------------------------------------------------------
def _area_tables(
    area_index: int,
    key_range: int,
    table_entries: int,
    overlay_stride: int,
) -> tuple[list[SSTable], list[SSTable]]:
    """One synthetic area: an L3 carpet over the whole key range plus a
    newer L2 overlay of every ``overlay_stride``-th key.  Areas overlap
    (each covers the full range at its own timestamp), the regime the
    per-area merge exists for."""
    base_ts = float(area_index + 1)
    seqno = area_index * 10_000_000
    l3_entries = [
        make_upsert(key, b"a%d-%d" % (area_index, key), seqno + key, base_ts)
        for key in range(key_range)
    ]
    l3_tables = [
        SSTable(l3_entries[i : i + table_entries])
        for i in range(0, len(l3_entries), table_entries)
    ]
    overlay = [
        make_upsert(key, b"o%d-%d" % (area_index, key), seqno + key_range + key, base_ts + 100.0)
        for key in range(0, key_range, overlay_stride)
    ]
    l2_tables = [
        SSTable(overlay[i : i + table_entries])
        for i in range(0, len(overlay), table_entries)
    ]
    return l2_tables, l3_tables


def _build_reader(
    num_areas: int,
    key_range: int,
    table_entries: int,
    overlay_stride: int,
    segment_entries: int,
):
    """A sim cluster whose Reader holds ``num_areas`` synthetic areas,
    installed through real ``BackupUpdate`` casts (so the sorted view is
    the product of its own incremental rebuild path)."""
    config = CooLSMConfig(
        key_range=key_range,
        sorted_view=True,
        sorted_view_segment_entries=segment_entries,
    )
    cluster = build_cluster(
        ClusterSpec(config=config, num_ingestors=1, num_compactors=1, num_readers=1)
    )
    reader = cluster.readers[0]

    def installer():
        for area_index in range(num_areas):
            l2_tables, l3_tables = _area_tables(
                area_index, key_range, table_entries, overlay_stride
            )
            source = f"area-{area_index}"
            cluster.compactors[0].cast(
                "reader-0", "backup_update", BackupUpdate(3, tuple(l3_tables), source)
            )
            cluster.compactors[0].cast(
                "reader-0", "backup_update", BackupUpdate(2, tuple(l2_tables), source)
            )
        yield cluster.kernel.timeout(60.0)

    cluster.run_process(installer())
    return cluster, reader


def _time_scans(scan_fn, ranges: list[tuple[bytes, bytes]]):
    latencies: list[float] = []
    results = []
    for lo, hi in ranges:
        started = time.perf_counter()
        results.append(scan_fn(lo, hi, None))
        latencies.append(time.perf_counter() - started)
    return latencies, results


def run_direct_phase(
    num_areas: int = 4,
    key_range: int = 20_000,
    table_entries: int = 200,
    overlay_stride: int = 8,
    segment_entries: int = 256,
    num_scans: int = 600,
    max_scan_length: int = 100,
    seed: int = 7,
) -> dict:
    """Wall-clock A/B of the two scan engines on one Reader."""
    cluster, reader = _build_reader(
        num_areas, key_range, table_entries, overlay_stride, segment_entries
    )
    ranges = [
        (encode_key(lo), encode_key(hi))
        for lo, hi in scan_ranges(
            num_scans, key_range, seed=seed, max_scan_length=max_scan_length
        )
    ]
    # Warm both paths (and the block-range cache's first-touch misses)
    # before timing, so the A/B measures steady state.
    warmup = ranges[: max(1, len(ranges) // 10)]
    _time_scans(reader._streaming_scan, warmup)
    _time_scans(reader._view_scan, warmup)
    if reader.read_cache is not None:
        reader.read_cache.stats.reset()
    streaming_lat, streaming_res = _time_scans(reader._streaming_scan, ranges)
    view_lat, view_res = _time_scans(reader._view_scan, ranges)
    identical = streaming_res == view_res
    streaming = LatencySummary.from_samples(streaming_lat)
    view = LatencySummary.from_samples(view_lat)
    cache = reader.read_cache.stats if reader.read_cache is not None else None
    gauges = reader.health_gauges()
    return {
        "areas": num_areas,
        "key_range": key_range,
        "entries": reader.manifest.total_entries(),
        "scans": num_scans,
        "identical": identical,
        "streaming_p50_us": streaming.p50 * 1e6,
        "streaming_p99_us": streaming.p99 * 1e6,
        "view_p50_us": view.p50 * 1e6,
        "view_p99_us": view.p99 * 1e6,
        "speedup_p50": streaming.p50 / view.p50 if view.p50 else 0.0,
        "speedup_p99": streaming.p99 / view.p99 if view.p99 else 0.0,
        "sorted_view_segments": gauges["sorted_view_segments"],
        "view_rebuild_count": gauges["view_rebuild_count"],
        "view_reused_segments": gauges["view_reused_segments"],
        "block_range_hits": cache.block_range_hits if cache else 0,
        "block_range_misses": cache.block_range_misses if cache else 0,
    }


# ----------------------------------------------------------------------
# Sim phase: the workload end-to-end, view on vs off, schedules equal
# ----------------------------------------------------------------------
def _run_sim_workload(sorted_view: bool, ops: int, seed: int) -> dict:
    config = CooLSMConfig(
        key_range=2_000,
        memtable_entries=40,
        sstable_entries=20,
        l0_threshold=3,
        l1_threshold=3,
        l2_threshold=10,
        l3_threshold=100,
        max_inflight_tables=12,
        sorted_view=sorted_view,
        sorted_view_segment_entries=64,
    )
    cluster = build_cluster(
        ClusterSpec(config=config, num_ingestors=1, num_compactors=2, num_readers=1)
    )
    client = cluster.add_client()

    def preload():
        for index in range(_SIM_PRELOAD):
            yield from client.upsert(index % 700, b"p-%d" % index)
        yield cluster.kernel.timeout(5.0)

    cluster.run_process(preload())
    result = cluster.run_process(
        scan_heavy(client, ops=ops, seed=seed, reader="reader-0")
    )
    scans = result.latencies.get("scan", [])
    summary = LatencySummary.from_samples(scans) if scans else None
    gauges = cluster.readers[0].health_gauges()
    return {
        "sorted_view": sorted_view,
        "ops": result.total_ops,
        "scans": result.scans,
        "inserts": result.inserts,
        "sim_scan_p50_s": summary.p50 if summary else 0.0,
        "sim_scan_p99_s": summary.p99 if summary else 0.0,
        "sim_now": cluster.kernel.now,
        "gauges": {
            key: value
            for key, value in gauges.items()
            if key.startswith(("sorted_view", "view_"))
        },
    }


def run_sim_phase(ops: int, seed: int) -> dict:
    off = _run_sim_workload(False, ops, seed)
    on = _run_sim_workload(True, ops, seed)
    return {
        "view_off": off,
        "view_on": on,
        # Identical modelled costs on both paths ⇒ the two deterministic
        # runs must finish at the same simulated instant with the same
        # latency profile.  Any drift means the flag changed behaviour
        # beyond the scan engine — the in-run byte-identity tripwire.
        "schedule_identical": (
            off["sim_now"] == on["sim_now"]
            and off["sim_scan_p50_s"] == on["sim_scan_p50_s"]
            and off["scans"] == on["scans"]
        ),
    }


# ----------------------------------------------------------------------
# Live phase: real sockets, durable stores, view on
# ----------------------------------------------------------------------
def _run_live_phase(num_scans: int, seed: int) -> dict:
    from repro.live.harness import ClientPool, LocalCluster, localhost_spec
    from repro.sim.kernel import SimError

    config = replace(
        CooLSMConfig().scaled_down(10),
        ack_timeout=1.0,
        client_timeout=2.0,
        sorted_view=True,
    )
    spec = localhost_spec(1, 1, 1, num_clients=1, config=config, seed=seed)
    latencies: list[float] = []
    counts = {"pairs": 0, "empty": 0}

    def preload(client):
        for index in range(_SIM_PRELOAD):
            while True:
                try:
                    yield from client.upsert(index % config.key_range, b"l-%d" % index)
                    break
                except SimError:
                    continue
        return True

    def scanner(client):
        # Scan the populated prefix (preload wraps at _SIM_PRELOAD keys).
        ranges = scan_ranges(
            num_scans, min(config.key_range, _SIM_PRELOAD), seed=seed + 1
        )
        for lo, hi in ranges:
            started = time.perf_counter()
            try:
                pairs = yield from client.analytics_query(lo, hi, reader="reader-0")
            except SimError:
                continue
            latencies.append(time.perf_counter() - started)
            counts["pairs"] += len(pairs)
            counts["empty"] += not pairs
        return len(latencies)

    with tempfile.TemporaryDirectory(prefix="coolsm-scan-bench-") as work:
        with LocalCluster(spec, work, data_dir=f"{work}/data") as cluster:
            cluster.wait_ready()

            async def drive():
                async with ClientPool(spec, 1) as pool:
                    await pool.run(preload(pool.clients[0]), "scan-preload")
                    await asyncio.sleep(2.0)  # let compactions reach the Reader
                    return await pool.run(scanner(pool.clients[0]), "scan-load")

            completed = asyncio.run(drive())
            cluster.stop()

    summary = LatencySummary.from_samples(latencies) if latencies else None
    return {
        "sorted_view": True,
        "requested_scans": num_scans,
        "completed_scans": completed,
        "pairs_returned": counts["pairs"],
        "empty_scans": counts["empty"],
        "scan_p50_s": summary.p50 if summary else 0.0,
        "scan_p99_s": summary.p99 if summary else 0.0,
    }


# ----------------------------------------------------------------------
# Document, gates, CLI entry
# ----------------------------------------------------------------------
def run(
    num_scans: int = 600,
    sim_ops: int = _SIM_SCAN_OPS,
    live_scans: int = 120,
    seed: int = 7,
    smoke: bool = False,
) -> dict:
    """Run the phases; returns the BENCH_scan.json document.

    ``smoke`` shrinks the direct phase and skips live (CI-friendly);
    ``live_scans <= 0`` skips the live phase only.
    """
    if smoke:
        direct = run_direct_phase(
            num_areas=2,
            key_range=4_000,
            table_entries=100,
            num_scans=min(num_scans, 150),
            seed=seed,
        )
        live_scans = 0
    else:
        direct = run_direct_phase(num_scans=num_scans, seed=seed)
    sim = run_sim_phase(sim_ops, seed)
    live = _run_live_phase(live_scans, seed) if live_scans > 0 else None
    return {
        "bench": "scan",
        "config": {
            "smoke": smoke,
            "num_scans": num_scans,
            "sim_ops": sim_ops,
            "sim_preload": _SIM_PRELOAD,
            "seed": seed,
        },
        "python": platform.python_version(),
        "direct": direct,
        "sim": sim,
        "live": live,
    }


def check_regression(
    current: dict, baseline: dict | None, max_regression: float = 2.0
) -> list[str]:
    """Failures (empty when healthy).  Correctness invariants are
    absolute; the speed gate is the in-run p50 ratio (both engines run
    in the same process on the same state), compared ratio-vs-ratio
    against the baseline so heterogeneous CI machines never flake on
    wall-clock."""
    failures: list[str] = []
    direct = current["direct"]
    if not direct["identical"]:
        failures.append("view-backed scans are not bit-identical to the streaming merge")
    if direct["speedup_p50"] < MIN_SCAN_P50_SPEEDUP:
        failures.append(
            f"scan p50 speedup {direct['speedup_p50']:.2f}x < "
            f"{MIN_SCAN_P50_SPEEDUP}x floor"
        )
    if not current["sim"]["schedule_identical"]:
        failures.append(
            "sorted_view on/off sim schedules diverged (byte-identity broken)"
        )
    if baseline is not None and _comparable(current, baseline):
        base = baseline.get("direct", {}).get("speedup_p50", 0.0)
        cur = direct["speedup_p50"]
        if base > 0 and cur < base / max_regression:
            failures.append(
                f"direct.speedup_p50 regressed {base:.2f}x -> {cur:.2f}x "
                f"(allowed factor {max_regression}x)"
            )
    return failures


def _comparable(current: dict, baseline: dict) -> bool:
    """Ratios only compare between runs of the same workload shape
    (a smoke run against the full baseline is not)."""
    return current.get("config") == baseline.get("config")


def run_and_report(
    out: str = "BENCH_scan.json",
    num_scans: int = 600,
    sim_ops: int = _SIM_SCAN_OPS,
    live_scans: int = 120,
    seed: int = 7,
    smoke: bool = False,
    check: str | None = None,
    max_regression: float = 2.0,
) -> int:
    """CLI entrypoint: run, print, write JSON, gate against a baseline."""
    document = run(
        num_scans=num_scans,
        sim_ops=sim_ops,
        live_scans=live_scans,
        seed=seed,
        smoke=smoke,
    )
    direct = document["direct"]
    print(
        f"direct  {direct['scans']} scans over {direct['entries']} entries / "
        f"{direct['areas']} areas — streaming p50 {direct['streaming_p50_us']:.0f}us, "
        f"view p50 {direct['view_p50_us']:.0f}us "
        f"(speedup {direct['speedup_p50']:.2f}x, identical={direct['identical']})"
    )
    sim = document["sim"]
    print(
        f"sim     {sim['view_on']['scans']} scans — "
        f"schedule_identical={sim['schedule_identical']}, "
        f"view gauges {sim['view_on']['gauges']}"
    )
    live = document["live"]
    if live is not None:
        print(
            f"live    {live['completed_scans']}/{live['requested_scans']} scans — "
            f"p50 {live['scan_p50_s'] * 1e3:.2f}ms, "
            f"{live['pairs_returned']} pairs"
        )
    with open(out, "w") as sink:
        json.dump(document, sink, indent=2, sort_keys=True)
        sink.write("\n")
    print(f"wrote {out}")
    baseline = None
    if check is not None:
        with open(check) as source:
            baseline = json.load(source)
    failures = check_regression(document, baseline, max_regression)
    for failure in failures:
        print(f"  !! {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_and_report())
