"""Benchmark harness: metrics, the experiment runner, reporting, and
one experiment module per table/figure (``repro.bench.experiments``)."""

from .harness import (
    SCALE,
    ExperimentResult,
    build,
    compaction_summary,
    drive,
    scaled_config,
)
from .metrics import LatencySummary, count_above, percentile, throughput
from .reporting import (
    ms,
    paper_vs_measured,
    print_header,
    print_series,
    print_table,
)

__all__ = [
    "ExperimentResult",
    "LatencySummary",
    "SCALE",
    "build",
    "compaction_summary",
    "count_above",
    "drive",
    "ms",
    "paper_vs_measured",
    "percentile",
    "print_header",
    "print_series",
    "print_table",
    "scaled_config",
    "throughput",
]
