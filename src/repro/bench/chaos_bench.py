"""Benchmark a real cluster under live fault injection
(``repro.cli chaos-bench``).

Launches a 1 Ingestor + 2 Compactor durable cluster behind the chaos
proxy and drives a continuous retry-until-ack writer through five
phases::

    baseline   no faults — the reference throughput B
    drop       30% of frames dropped on every link
    latency    50ms one-way latency injected on the Ingestor's machine
    partition  driver <-> Ingestor link cut, then healed
    crash      Ingestor SIGKILLed, restarted from its data dir

Two families of numbers land in ``BENCH_chaos.json``:

* **under-fault throughput ratios** — phase throughput / B for the
  degraded-but-available faults (drop, latency).  A healthy stack
  keeps making progress through retries; a ratio collapsing toward
  zero means the fault path serialises or livelocks.
* **recovery time to SLA** — for the outage faults (partition, crash),
  seconds from the heal until a sliding window first sustains 50% of
  B again.  This is the paper's availability story measured on real
  sockets: reconnect backoff + client retry + (for crash) WAL replay.

The absolute gate is zero acked-write loss across every phase; speed
gates are ratio-of-ratios against a baseline document, so
heterogeneous CI machines do not flake (same convention as
:mod:`repro.bench.recovery_bench`).
"""

from __future__ import annotations

import asyncio
import bisect
import json
import math
import platform
import sys
import tempfile
import time
from dataclasses import replace

from repro.core.config import CooLSMConfig
from repro.core.history import History
from repro.live.chaos import ChaosControl
from repro.live.harness import ClientPool, LocalCluster, localhost_spec
from repro.sim.kernel import SimError

#: Throughput fraction of baseline that counts as "recovered".
SLA_FRACTION = 0.5
#: Sliding-window width used when scanning for SLA re-attainment.
SLA_WINDOW_S = 0.5
#: Give up scanning for recovery after this long past the heal.
SLA_HORIZON_S = 20.0


def _percentile(samples: list[float], fraction: float) -> float | None:
    """Nearest-rank percentile; None on an empty sample set."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = max(0, math.ceil(fraction * len(ordered)) - 1)
    return round(ordered[min(index, len(ordered) - 1)], 5)


def _recovery_to_sla(
    acks: list[float], healed_at: float, baseline_rate: float
) -> float | None:
    """Seconds from ``healed_at`` until a ``SLA_WINDOW_S`` window first
    carries ``SLA_FRACTION`` of the baseline rate; None if never."""
    needed = max(1, int(baseline_rate * SLA_FRACTION * SLA_WINDOW_S))
    step = SLA_WINDOW_S / 5.0
    start = healed_at
    while start <= healed_at + SLA_HORIZON_S:
        lo = bisect.bisect_left(acks, start)
        hi = bisect.bisect_left(acks, start + SLA_WINDOW_S)
        if hi - lo >= needed:
            return round(start - healed_at, 4)
        start += step
    return None


def run(ops: int = 400, seed: int = 0) -> dict:
    """Run the chaos benchmark; returns the BENCH_chaos.json document.

    ``ops`` sets the per-phase duration indirectly: each phase lasts
    ``max(1.5, ops / 200)`` seconds, so the default 400 spends 2s per
    phase.
    """
    phase_seconds = max(1.5, ops / 200.0)
    config = replace(
        CooLSMConfig().scaled_down(10), ack_timeout=1.0, client_timeout=1.5
    )
    spec = localhost_spec(1, 2, 0, num_clients=2, config=config, seed=seed)
    key_range = max(ops // 4, 20)
    acked: dict[bytes, bytes] = {}
    acks: list[float] = []
    #: Per-acked-op latency (including client-side retries), parallel
    #: to ``acks``.
    lats: list[float] = []
    stop = {"flag": False}
    retries = {"count": 0}

    def writer(client):
        index = 0
        while not stop["flag"]:
            key = index % key_range
            value = b"cb-%d" % index
            op_started = time.perf_counter()
            while True:
                try:
                    yield from client.upsert(key, value)
                    break
                except SimError:
                    retries["count"] += 1
                    if stop["flag"]:
                        return index
            acked[str(key).encode()] = value
            acks.append(time.perf_counter())
            lats.append(acks[-1] - op_started)
            index += 1
        return index

    def read_all(client):
        lost = 0
        for key, expected in sorted(acked.items()):
            got = None
            for __ in range(10):
                try:
                    got = yield from client.read(int(key))
                    break
                except SimError:
                    continue
            lost += got != expected
        return lost

    with tempfile.TemporaryDirectory(prefix="coolsm-chaos-bench-") as work:
        data_dir = f"{work}/data"
        with LocalCluster(
            spec, work, data_dir=data_dir, chaos=True, chaos_seed=seed
        ) as cluster:
            cluster.wait_ready()

            async def drive():
                control = ChaosControl(cluster.control_address)
                phases: dict[str, dict] = {}

                async def window(name, fault=None, heal=None):
                    if fault is not None:
                        await fault()
                    started = time.perf_counter()
                    before = len(acks)
                    await asyncio.sleep(phase_seconds)
                    duration = time.perf_counter() - started
                    done = len(acks) - before
                    window_lats = lats[before:before + done]
                    # Recovery clocks start when healing *begins*: for
                    # a crash the heal is the blocking restart, so WAL
                    # replay and relaunch count toward time-to-SLA.
                    healed_at = time.perf_counter()
                    if heal is not None:
                        await heal()
                    phases[name] = {
                        "ops": done,
                        "duration_s": round(duration, 4),
                        "throughput": round(done / duration, 2),
                        "ack_p50_s": _percentile(window_lats, 0.50),
                        "ack_p99_s": _percentile(window_lats, 0.99),
                        "healed_at": healed_at,
                    }

                async with ClientPool(
                    cluster.driver_spec, 1, history=History()
                ) as pool:
                    load = asyncio.ensure_future(
                        pool.run(writer(pool.clients[0]), "chaos-load")
                    )
                    try:
                        await window("baseline")
                        await window(
                            "drop",
                            fault=lambda: control.set_drop(0.3),
                            heal=lambda: control.set_drop(0.0),
                        )
                        await window(
                            "latency",
                            fault=lambda: control.set_latency(
                                "m-ingestor-0", 0.05
                            ),
                            heal=lambda: control.set_latency(
                                "m-ingestor-0", 0.0
                            ),
                        )
                        await window(
                            "partition",
                            fault=lambda: control.cut(
                                "m-driver", "m-ingestor-0"
                            ),
                            heal=lambda: control.heal(
                                "m-driver", "m-ingestor-0"
                            ),
                        )

                        await window(
                            "crash",
                            fault=lambda: asyncio.to_thread(
                                cluster.kill9, "ingestor-0"
                            ),
                            heal=lambda: asyncio.to_thread(
                                cluster.restart, "ingestor-0"
                            ),
                        )
                        # Let the tail of the crash recovery register.
                        await asyncio.sleep(2.0 * SLA_WINDOW_S)
                    finally:
                        stop["flag"] = True
                        total_ops = await load
                    lost = await pool.run(
                        read_all(pool.clients[0]), "readback"
                    )
                proxy_stats = (await control.stats())["stats"]
                await control.close()
                return phases, total_ops, lost, proxy_stats

            phases, total_ops, lost, proxy_stats = asyncio.run(drive())
            exit_codes = cluster.stop()
        ingestor_log = cluster.log_path("ingestor-0").read_text()

    baseline_rate = phases["baseline"]["throughput"]
    for name in ("drop", "latency"):
        phases[name]["ratio"] = round(
            phases[name]["throughput"] / baseline_rate if baseline_rate else 0.0,
            4,
        )
    for name in ("partition", "crash"):
        phases[name]["recovery_to_sla_s"] = _recovery_to_sla(
            acks, phases[name]["healed_at"], baseline_rate
        )
    for phase in phases.values():
        del phase["healed_at"]

    return {
        "bench": "chaos",
        "config": {
            "topology": {"ingestors": 1, "compactors": 2, "readers": 0},
            "ops": ops,
            "phase_seconds": round(phase_seconds, 3),
            "key_range": key_range,
            "seed": seed,
            "sla_fraction": SLA_FRACTION,
        },
        "python": platform.python_version(),
        "baseline_throughput": baseline_rate,
        "phases": phases,
        "total_acked_ops": total_ops,
        "acked_keys": len(acked),
        "client_retries": retries["count"],
        "lost_writes": lost,
        "crash_recovered": "RECOVERED" in ingestor_log,
        "proxy": {
            "frames_forwarded": proxy_stats["frames_forwarded"],
            "frames_dropped": proxy_stats["frames_dropped"],
            "cuts": proxy_stats["cuts"],
            "heals": proxy_stats["heals"],
        },
        "drained_exit_codes": exit_codes,
    }


def check_regression(
    current: dict, baseline: dict | None, max_regression: float = 2.5
) -> list[str]:
    """Failures (empty when healthy).  Correctness and recovery are
    absolute; speed compares machine-relative ratios to the baseline
    document's, so only genuine degradation trips the gate."""
    failures: list[str] = []
    if current["lost_writes"]:
        failures.append(
            f"{current['lost_writes']} acked writes lost under chaos"
        )
    if not current["crash_recovered"]:
        failures.append("crashed Ingestor never logged a RECOVERED line")
    if any(code != 0 for code in current["drained_exit_codes"].values()):
        failures.append(
            f"non-zero drain exits: {current['drained_exit_codes']}"
        )
    for name in ("partition", "crash"):
        if current["phases"][name]["recovery_to_sla_s"] is None:
            failures.append(
                f"throughput never returned to "
                f"{current['config']['sla_fraction']:.0%} of baseline "
                f"after {name}"
            )
    if baseline is not None and _comparable(current, baseline):
        for name in ("drop", "latency"):
            base = baseline["phases"][name].get("ratio", 0.0)
            cur = current["phases"][name]["ratio"]
            # Ratios below 5% of baseline are dominated by timeout
            # quantization (a handful of ops per window) — too noisy
            # to gate on; the absolute gates above still apply.
            if base >= 0.05 and cur < base / max_regression:
                failures.append(
                    f"under-fault ratio for {name} regressed "
                    f"{base:.3f} -> {cur:.3f} "
                    f"(allowed factor {max_regression}x)"
                )
        for name in ("partition", "crash"):
            base = baseline["phases"][name].get("recovery_to_sla_s")
            cur = current["phases"][name]["recovery_to_sla_s"]
            if base is not None and cur is not None:
                # Floor tiny baselines: sub-second recoveries are noise.
                allowed = max(base, 1.0) * max_regression
                if cur > allowed:
                    failures.append(
                        f"recovery-to-SLA after {name} regressed "
                        f"{base:.2f}s -> {cur:.2f}s "
                        f"(allowed {allowed:.2f}s)"
                    )
    return failures


def _comparable(current: dict, baseline: dict) -> bool:
    """Ratios only compare between runs of the same workload shape."""
    return current.get("config") == baseline.get("config")


def run_and_report(
    out: str = "BENCH_chaos.json",
    ops: int = 400,
    seed: int = 0,
    check: str | None = None,
    max_regression: float = 2.5,
) -> int:
    """CLI entrypoint: run, print, write JSON, gate against a baseline."""
    document = run(ops=ops, seed=seed)
    phases = document["phases"]
    print(
        f"chaos bench — {document['total_acked_ops']} acked ops across "
        f"5 phases, {document['client_retries']} client retries, "
        f"lost={document['lost_writes']}"
    )
    base = phases["baseline"]
    print(
        f"  baseline  {document['baseline_throughput']:.1f} ops/s "
        f"(p50 {base['ack_p50_s']}s p99 {base['ack_p99_s']}s)"
    )
    for name in ("drop", "latency"):
        print(
            f"  {name:<9} {phases[name]['throughput']:.1f} ops/s "
            f"(ratio {phases[name]['ratio']:.3f}, "
            f"p99 {phases[name]['ack_p99_s']}s)"
        )
    for name in ("partition", "crash"):
        sla = phases[name]["recovery_to_sla_s"]
        rendered = f"{sla:.2f}s" if sla is not None else "never"
        print(
            f"  {name:<9} {phases[name]['throughput']:.1f} ops/s "
            f"(recovery to SLA {rendered})"
        )
    with open(out, "w") as sink:
        json.dump(document, sink, indent=2)
        sink.write("\n")
    print(f"wrote {out}")
    baseline = None
    if check is not None:
        with open(check) as source:
            baseline = json.load(source)
    failures = check_regression(document, baseline, max_regression)
    for failure in failures:
        print(f"  !! {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_and_report())
