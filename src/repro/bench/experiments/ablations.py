"""Ablations of the design choices DESIGN.md calls out.

These are not paper figures; they quantify the knobs CooLSM's design
rests on:

* **delta sweep** — how the time-sync error bound δ drives the fraction
  of multi-Ingestor reads that need phase 2 (Compactor round trip).
* **batch size sweep** — memtable batch size vs write latency and
  throughput (latency amortisation vs compaction burst size).
* **in-flight cap sweep** — the ack-retention flow-control limit vs
  write tail latency (backpressure vs memory).
* **partitioned vs overlapping Compactors** — same node count, routed
  exclusively vs load-balanced over overlapping members.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import SCALE, drive, scaled_config
from repro.bench.reporting import print_header, print_series
from repro.core import ClusterSpec, build_cluster
from repro.workloads import preload, write_only


@dataclass(slots=True)
class AblationResult:
    name: str
    xs: list
    ys: list[float]
    y_label: str


def delta_sweep(deltas=(0.0005, 0.002, 0.01, 0.05), ops: int = 1_000, scale: int = SCALE) -> AblationResult:
    """Fraction of two-phase reads vs δ (multi-Ingestor deployment).

    Uses a read-your-write workload: a read of a just-written key can
    skip phase 2 only if its timestamp provably (by the 2δ rule)
    exceeds everything forwarded to the Compactors, so a larger δ
    forces more reads into the Compactor round trip.
    """
    fractions = []
    for delta in deltas:
        config = scaled_config(100_000, scale, delta=delta, gc_slack=max(2.0, 4 * delta))
        cluster = build_cluster(
            ClusterSpec(config=config, num_ingestors=2, num_compactors=2)
        )
        client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
        cluster.run_process(preload(client, 3_000, key_range=config.key_range))
        client.stats.phase2_reads = 0

        def read_your_writes():
            for index in range(ops):
                key = index % config.key_range
                yield from client.upsert(key, b"ryw-%d" % index)
                yield from client.read(key)

        reads_before = len(client.stats.all("read"))
        drive(cluster, [read_your_writes()])
        reads = len(client.stats.all("read")) - reads_before or 1
        fractions.append(client.stats.phase2_reads / reads)
    return AblationResult(
        "phase-2 read fraction vs delta", list(deltas), fractions, "phase-2 fraction"
    )


def batch_size_sweep(sizes=(10, 50, 200, 1_000), ops: int = 8_000, scale: int = SCALE) -> AblationResult:
    """Mean write latency vs memtable batch size."""
    means = []
    for size in sizes:
        config = scaled_config(100_000, scale, memtable_entries=size)
        cluster = build_cluster(ClusterSpec(config=config, num_compactors=5))
        client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
        result = drive(cluster, [write_only(client, ops=ops)])
        means.append(result.writes.mean * 1_000)
    return AblationResult(
        "mean write latency vs batch size", list(sizes), means, "latency (ms)"
    )


def inflight_cap_sweep(caps=(2, 6, 12, 48), ops: int = 8_000, scale: int = SCALE) -> AblationResult:
    """p99.99 write latency vs the in-flight table cap."""
    tails = []
    for cap in caps:
        config = scaled_config(100_000, scale, max_inflight_tables=cap)
        cluster = build_cluster(ClusterSpec(config=config, num_compactors=2))
        client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
        result = drive(cluster, [write_only(client, ops=ops)])
        tails.append(result.writes.p9999 * 1_000)
    return AblationResult(
        "write p99.99 vs in-flight cap", list(caps), tails, "p99.99 (ms)"
    )


def overlap_vs_partitioned(ops: int = 8_000, scale: int = SCALE) -> AblationResult:
    """Mean write latency: 4 partitioned vs 4 overlapping (2x2) Compactors."""
    means = []
    labels = ["4 partitioned", "2x2 overlapping"]
    for replicas in (1, 2):
        config = scaled_config(100_000, scale)
        cluster = build_cluster(
            ClusterSpec(config=config, num_compactors=4, compactor_replicas=replicas)
        )
        client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
        result = drive(cluster, [write_only(client, ops=ops)])
        means.append(result.writes.mean * 1_000)
    return AblationResult(
        "mean write latency: partitioned vs overlapping Compactors",
        labels,
        means,
        "latency (ms)",
    )


def run(scale: int = SCALE) -> list[AblationResult]:
    return [
        delta_sweep(scale=scale),
        batch_size_sweep(scale=scale),
        inflight_cap_sweep(scale=scale),
        overlap_vs_partitioned(scale=scale),
    ]


def report(results: list[AblationResult]) -> None:
    print_header("Ablations — design-choice sensitivity")
    for result in results:
        print_series(result.name, result.xs, result.ys, "setting", result.y_label)
