"""Table I: the consistency matrix, machine-checked.

Runs one deployment per cell under a concurrent mixed workload and
applies the matching checker:

|                    | Without Readers          | With Readers                      |
|--------------------|--------------------------|-----------------------------------|
| 1 Ingestor         | Linearizable             | Snapshot Linearizable             |
| Multiple Ingestors | Linearizable+Concurrent  | Snapshot Linearizable+Concurrent  |
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.harness import SCALE, scaled_config
from repro.bench.reporting import paper_vs_measured, print_header, print_table
from repro.core import (
    ClusterSpec,
    build_cluster,
    check_linearizable,
    check_linearizable_concurrent,
    check_snapshot_linearizable,
)
from repro.core.history import History


@dataclass(slots=True)
class CellResult:
    cell: str
    guarantee: str
    operations: int
    violations: int

    @property
    def ok(self) -> bool:
        return self.violations == 0


def _mixed(client, ops, seed, key_range=20):
    rng = random.Random(seed)

    def driver():
        counter = 0
        for __ in range(ops):
            key = rng.randrange(key_range)
            if rng.random() < 0.5:
                counter += 1
                yield from client.upsert(key, b"t1-%d-%d" % (seed, counter))
            else:
                yield from client.read(key)

    return driver()


def _run_writers(cluster, clients, ops, base_seed):
    processes = [
        cluster.kernel.spawn(_mixed(client, ops, base_seed + i))
        for i, client in enumerate(clients)
    ]

    def barrier():
        yield cluster.kernel.all_of(processes)

    cluster.run_process(barrier())


def _spawn_analyst(cluster, reads):
    backup_history = History()
    analyst = cluster.add_client(record_history=False)
    analyst.history = backup_history

    def driver():
        rng = random.Random(77)
        for __ in range(reads):
            yield from analyst.read_from_backup(rng.randrange(20))
            yield cluster.kernel.timeout(0.004)

    return backup_history, cluster.kernel.spawn(driver())


def run(ops: int = 300, scale: int = SCALE) -> list[CellResult]:
    config = scaled_config(100_000, scale)
    results: list[CellResult] = []

    # Cell 1: one Ingestor, no Readers -> linearizable.
    cluster = build_cluster(ClusterSpec(config=config, num_compactors=2))
    clients = [cluster.add_client(colocate_with="ingestor-0") for __ in range(2)]
    _run_writers(cluster, clients, ops, base_seed=10)
    report = check_linearizable(cluster.history)
    results.append(
        CellResult("1 Ingestor / no Readers", "Linearizable", len(cluster.history), len(report.violations))
    )

    # Cell 2: one Ingestor + Readers -> snapshot linearizable.
    cluster = build_cluster(
        ClusterSpec(config=config, num_compactors=2, num_readers=1)
    )
    writer = cluster.add_client(colocate_with="ingestor-0")
    backup_history, analyst_proc = _spawn_analyst(cluster, reads=ops // 3)

    def writer_driver():
        for i in range(ops * 10):
            yield from writer.upsert(i % 200, b"c2-%d" % i)

    writer_proc = cluster.kernel.spawn(writer_driver())

    def barrier():
        yield cluster.kernel.all_of([writer_proc, analyst_proc])

    cluster.run_process(barrier())
    report = check_snapshot_linearizable(cluster.history, backup_history)
    results.append(
        CellResult(
            "1 Ingestor / with Readers",
            "Snapshot Linearizable",
            len(cluster.history) + len(backup_history),
            len(report.violations),
        )
    )

    # Cell 3: multiple Ingestors, no Readers -> Linearizable+Concurrent.
    cluster = build_cluster(
        ClusterSpec(config=config, num_ingestors=2, num_compactors=2)
    )
    clients = [
        cluster.add_client(
            colocate_with=f"ingestor-{i}",
            ingestors=[f"ingestor-{i}", f"ingestor-{1 - i}"],
        )
        for i in range(2)
    ]
    _run_writers(cluster, clients, ops, base_seed=30)
    report = check_linearizable_concurrent(cluster.history, config.delta)
    results.append(
        CellResult(
            "N Ingestors / no Readers",
            "Linearizable+Concurrent",
            len(cluster.history),
            len(report.violations),
        )
    )

    # Cell 4: multiple Ingestors + Readers -> both guarantees.
    cluster = build_cluster(
        ClusterSpec(config=config, num_ingestors=2, num_compactors=2, num_readers=1)
    )
    clients = [
        cluster.add_client(
            colocate_with=f"ingestor-{i}",
            ingestors=[f"ingestor-{i}", f"ingestor-{1 - i}"],
        )
        for i in range(2)
    ]
    backup_history, analyst_proc = _spawn_analyst(cluster, reads=ops // 3)
    processes = [
        cluster.kernel.spawn(_mixed(client, ops, 40 + i, key_range=200))
        for i, client in enumerate(clients)
    ]

    def barrier4():
        yield cluster.kernel.all_of(processes + [analyst_proc])

    cluster.run_process(barrier4())
    front = check_linearizable_concurrent(cluster.history, config.delta)
    snap = check_snapshot_linearizable(cluster.history, backup_history)
    results.append(
        CellResult(
            "N Ingestors / with Readers",
            "Snapshot Linearizable+Concurrent",
            len(cluster.history) + len(backup_history),
            len(front.violations) + len(snap.violations),
        )
    )
    return results


def report(results: list[CellResult]) -> None:
    print_header("Table I — consistency matrix, machine-checked")
    print_table(
        ("Deployment", "Guarantee", "ops checked", "verdict"),
        [
            (r.cell, r.guarantee, r.operations, "PASS" if r.ok else f"{r.violations} violations")
            for r in results
        ],
    )
    paper_vs_measured(
        "each deployment satisfies exactly its promised guarantee",
        f"{sum(r.ok for r in results)}/4 cells pass",
        all(r.ok for r in results),
    )
