"""Figure 9: the smart traffic benchmark.

(a) Update-and-exploration: cumulative latency of one location write
    plus N interactive vicinity reads, as N grows — each read is a
    dependent round trip, so latency grows as a multiple of the
    round-trip count.
(b) Analytics: average per-read latency of region queries served by a
    Backup placed near the analyst, as query size grows — per-read
    latency falls toward an asymptote as setup costs amortise."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import SCALE, scaled_config
from repro.bench.reporting import paper_vs_measured, print_header, print_series
from repro.core import ClusterSpec, build_cluster
from repro.sim.regions import Region
from repro.workloads import (
    CityModel,
    analytics_queries,
    populate_city,
    update_and_explore,
)

EXPLORATION_COUNTS = (1, 2, 4, 8, 16)
QUERY_SIZES = (50, 100, 500, 1_000, 2_000)


@dataclass(slots=True)
class Fig9Result:
    exploration_latency: dict[int, float]  # N -> mean sequence latency
    analytics_latency: dict[int, float]  # query size -> mean per-read latency


def run(rounds: int = 40, scale: int = SCALE) -> Fig9Result:
    config = scaled_config(100_000, scale)
    city = CityModel(num_cars=4_000, num_intersections=100)

    # (a) exploration: edge Ingestor in California, cloud in Virginia —
    # vicinity reads of not-recently-updated cars go to the cloud.
    cluster = build_cluster(
        ClusterSpec(
            config=config,
            num_compactors=5,
            ingestor_regions=(Region.CALIFORNIA,),
        )
    )
    client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
    cluster.run_process(populate_city(client, city))
    exploration: dict[int, float] = {}
    for count in EXPLORATION_COUNTS:
        result = cluster.run_process(
            update_and_explore(client, city, explorations=count, rounds=rounds)
        )
        exploration[count] = result.mean

    # (b) analytics: Backup placed near the analyst (same region).
    cluster = build_cluster(
        ClusterSpec(
            config=config,
            num_compactors=5,
            num_readers=1,
            reader_regions=(Region.CALIFORNIA,),
        )
    )
    loader = cluster.add_client(colocate_with="ingestor-0", record_history=False)
    cluster.run_process(populate_city(loader, city))
    cluster.run()  # quiesce so the Backup holds the whole city
    analyst = cluster.add_client(region=Region.CALIFORNIA, record_history=False)
    analytics: dict[int, float] = {}
    for size in QUERY_SIZES:
        result = cluster.run_process(
            analytics_queries(analyst, city, query_size=size, rounds=10)
        )
        analytics[size] = result.mean
    return Fig9Result(exploration, analytics)


def report(result: Fig9Result) -> None:
    print_header("Figure 9 — smart traffic benchmark")
    print_series(
        "Fig 9(a) update+exploration cumulative latency",
        list(result.exploration_latency.keys()),
        [v * 1_000 for v in result.exploration_latency.values()],
        "#explorations",
        "latency (ms)",
    )
    print_series(
        "Fig 9(b) analytics mean per-read latency (via Backup)",
        list(result.analytics_latency.keys()),
        [v * 1_000 for v in result.analytics_latency.values()],
        "query size",
        "per-read latency (ms)",
    )
    exploration = list(result.exploration_latency.values())
    paper_vs_measured(
        "exploration latency grows as a multiple of the round trips to the cloud",
        f"{exploration[0] * 1e3:.1f}ms at N=1 -> {exploration[-1] * 1e3:.1f}ms at N=16",
        exploration[-1] > 4 * exploration[0],
    )
    analytics = list(result.analytics_latency.values())
    paper_vs_measured(
        "per-read analytics latency decreases with query size (amortised setup)",
        f"{analytics[0] * 1e3:.4f}ms at {QUERY_SIZES[0]} -> "
        f"{analytics[-1] * 1e3:.4f}ms at {QUERY_SIZES[-1]}",
        analytics[-1] < analytics[0],
    )
