"""Figure 7: read performance with and without a backup (Reader) node.

With a backup, the client reads the Reader directly instead of routing
through the Ingestor to a Compactor — slightly lower latency, and the
read load is isolated from the ingestion path.  Also reproduces the
replication-overhead observation of Section IV-C (0.11 -> 0.17 ms)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import SCALE, drive, scaled_config
from repro.bench.reporting import paper_vs_measured, print_header, print_series
from repro.core import ClusterSpec, build_cluster
from repro.workloads import READ_BATCH, preload

COMPACTOR_COUNTS = (2, 5)
KEY_RANGES = (100_000, 300_000)


@dataclass(slots=True)
class Fig7Point:
    key_range: int
    compactors: int
    without_backup: float
    with_backup: float


def _reads_via(client, keys, use_backup):
    def driver():
        for key in keys:
            if use_backup:
                yield from client.read_from_backup(key)
            else:
                yield from client.read(key)

    return driver()


def run(reads: int = READ_BATCH, scale: int = SCALE) -> list[Fig7Point]:
    points: list[Fig7Point] = []
    for key_range in KEY_RANGES:
        config = scaled_config(key_range, scale)
        for count in COMPACTOR_COUNTS:
            cluster = build_cluster(
                ClusterSpec(config=config, num_compactors=count, num_readers=1)
            )
            client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
            cluster.run_process(
                preload(client, 2 * config.key_range, key_range=config.key_range)
            )
            cluster.run()  # quiesce: let the Reader absorb all updates
            client.stats.latencies.clear()
            import random

            rng = random.Random(1)
            keys = [rng.randrange(config.key_range) for __ in range(reads)]
            drive(cluster, [_reads_via(client, keys, use_backup=False)])
            without = client.stats.all("read")
            drive(cluster, [_reads_via(client, keys, use_backup=True)])
            with_backup = client.stats.all("backup_read")
            points.append(
                Fig7Point(
                    key_range,
                    count,
                    sum(without) / len(without),
                    sum(with_backup) / len(with_backup),
                )
            )
    return points


def run_replication_overhead(ops: int = 10_000, scale: int = SCALE) -> tuple[float, float]:
    """Section IV-C's replication experiment: average write latency
    without vs with Compactors replicating to 2 backup replicas."""
    from repro.core import CooLSMConfig
    from repro.workloads import write_only

    def mean_write(tolerated_failures: int) -> float:
        # High compaction cadence + tight flow control so the Compactor
        # ack path (where replication waits) is felt at the writer, as
        # on the paper's loaded testbed.
        config = CooLSMConfig(
            key_range=10_000,
            memtable_entries=40,
            sstable_entries=10,
            l0_threshold=3,
            l1_threshold=3,
            l2_threshold=10,
            l3_threshold=100,
            max_inflight_tables=4,
        )
        cluster = build_cluster(
            ClusterSpec(
                config=config,
                num_compactors=5,
                tolerated_failures=tolerated_failures,
            )
        )
        client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
        result = drive(cluster, [write_only(client, ops=ops)])
        for group in getattr(cluster, "replica_groups", []):
            group.stop()
        return result.writes.mean

    return mean_write(0), mean_write(1)


def report(points: list[Fig7Point], replication: tuple[float, float] | None = None) -> None:
    print_header("Figure 7 — read latency with and without a backup server")
    for key_range in KEY_RANGES:
        series = [p for p in points if p.key_range == key_range]
        print_series(
            f"key range {key_range // 1000}K",
            [f"{p.compactors}c" for p in series],
            [p.without_backup * 1_000 for p in series],
            "compactors",
            "mean read, no backup (ms)",
        )
        print_series(
            f"key range {key_range // 1000}K",
            [f"{p.compactors}c" for p in series],
            [p.with_backup * 1_000 for p in series],
            "compactors",
            "mean read, via backup (ms)",
        )
    improved = sum(1 for p in points if p.with_backup < p.without_backup)
    paper_vs_measured(
        "backup reads slightly faster (0.7ms -> 0.6ms; one less hop)",
        f"{improved}/{len(points)} configurations faster via backup",
        improved >= len(points) - 1,
    )
    if replication is not None:
        base, replicated = replication
        paper_vs_measured(
            "replication to 2 backups raises write latency (0.11 -> 0.17 ms)",
            f"{base * 1e3:.4f}ms -> {replicated * 1e3:.4f}ms",
            replicated > base,
        )
