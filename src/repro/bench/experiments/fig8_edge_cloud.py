"""Figure 8: Edge-Cloud CooLSM write latency (a) and throughput (b)
with the cloud (5 Compactors) in Virginia and the Ingestor placed at
Virginia, Ohio, California, Oregon, or London.

The paper's claims: write latency stays in the 0.1-0.35 ms band at
every location (the edge Ingestor masks the WAN), but latency and
throughput still degrade with distance because the asynchronous
forwarding/ack loop crosses the WAN."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import SCALE, drive, scaled_config
from repro.bench.reporting import paper_vs_measured, print_header, print_series
from repro.core import ClusterSpec, build_cluster
from repro.sim.regions import EDGE_REGIONS, Region, rtt
from repro.workloads import write_only

KEY_RANGES = (100_000, 300_000)


@dataclass(slots=True)
class Fig8Point:
    key_range: int
    edge: Region
    mean_write: float
    throughput: float


def run(ops: int = 10_000, scale: int = SCALE) -> list[Fig8Point]:
    points: list[Fig8Point] = []
    for key_range in KEY_RANGES:
        # Tight flow control so the WAN ack loop is felt, as on the
        # paper's loaded testbed.
        config = scaled_config(key_range, scale, max_inflight_tables=6)
        for edge in EDGE_REGIONS:
            cluster = build_cluster(
                ClusterSpec(
                    config=config,
                    num_compactors=5,
                    ingestor_regions=(edge,),
                )
            )
            client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
            result = drive(cluster, [write_only(client, ops=ops)])
            points.append(
                Fig8Point(key_range, edge, result.writes.mean, result.write_throughput)
            )
    return points


def report(points: list[Fig8Point]) -> None:
    print_header(
        "Figure 8 — Edge-Cloud write performance (cloud at Virginia, edge varies)"
    )
    for key_range in KEY_RANGES:
        series = [p for p in points if p.key_range == key_range]
        print_series(
            f"Fig 8(a) write latency, key range {key_range // 1000}K",
            [p.edge.value for p in series],
            [p.mean_write * 1_000 for p in series],
            "edge location",
            "mean write latency (ms)",
        )
        print_series(
            f"Fig 8(b) write throughput, key range {key_range // 1000}K",
            [p.edge.value for p in series],
            [p.throughput for p in series],
            "edge location",
            "throughput (ops/s)",
            fmt="{:.0f}",
        )
    series_100 = [p for p in points if p.key_range == 100_000]
    latencies = [p.mean_write for p in series_100]
    paper_vs_measured(
        "write latency between 0.1ms and 0.35ms at every edge location",
        f"{min(latencies) * 1e3:.3f}-{max(latencies) * 1e3:.3f}ms",
        max(latencies) < 0.001,  # well under 1ms: the WAN is masked
    )
    ordered = sorted(series_100, key=lambda p: rtt(Region.VIRGINIA, p.edge))
    paper_vs_measured(
        "latency increases with distance from the cloud (Virginia lowest)",
        " -> ".join(f"{p.edge.value}:{p.mean_write * 1e3:.3f}ms" for p in ordered),
        ordered[0].mean_write <= ordered[-1].mean_write,
    )
    paper_vs_measured(
        "throughput mimics the latency observations (degrades with distance)",
        " -> ".join(f"{p.edge.value}:{p.throughput:.0f}" for p in ordered),
        ordered[0].throughput >= ordered[-1].throughput,
    )
