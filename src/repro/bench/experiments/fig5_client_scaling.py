"""Figure 5: throughput while increasing the number of clients, three
ways — distributed (client+Ingestor per machine), colocated (all
client+Ingestor pairs on one machine), and multithreaded (clients share
one Ingestor)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import SCALE, drive, scaled_config
from repro.bench.reporting import paper_vs_measured, print_header, print_series
from repro.core import ClusterSpec, build_cluster
from repro.workloads import write_only

CLIENT_COUNTS = (1, 2, 3, 4)
MODES = ("distributed", "colocated", "multithreaded")


@dataclass(slots=True)
class Fig5Point:
    mode: str
    clients: int
    throughput: float


def _run_one(mode: str, clients: int, ops_per_client: int, scale: int) -> Fig5Point:
    # Looser flow control than the latency experiments: the scaled-down
    # in-flight cap would otherwise throttle the aggregate of several
    # clients long before the Compactors saturate.
    config = scaled_config(100_000, scale, max_inflight_tables=48)
    if mode == "multithreaded":
        spec = ClusterSpec(config=config, num_ingestors=1, num_compactors=5)
    else:
        spec = ClusterSpec(
            config=config,
            num_ingestors=clients,
            num_compactors=5,
            ingestors_share_machine=(mode == "colocated"),
        )
    cluster = build_cluster(spec)
    drivers = []
    for index in range(clients):
        ingestor = "ingestor-0" if mode == "multithreaded" else f"ingestor-{index}"
        client = cluster.add_client(
            colocate_with=ingestor,
            ingestors=[ingestor],
            record_history=False,
        )
        drivers.append(write_only(client, ops=ops_per_client, seed=index))
    result = drive(cluster, drivers)
    return Fig5Point(mode, clients, result.write_throughput)


def run(ops_per_client: int = 6_000, scale: int = SCALE) -> list[Fig5Point]:
    return [
        _run_one(mode, clients, ops_per_client, scale)
        for mode in MODES
        for clients in CLIENT_COUNTS
    ]


def report(points: list[Fig5Point]) -> None:
    print_header("Figure 5 — throughput while increasing the number of clients")
    series = {}
    for mode in MODES:
        mode_points = [p for p in points if p.mode == mode]
        series[mode] = [p.throughput for p in mode_points]
        print_series(
            f"{mode} scaling",
            [p.clients for p in mode_points],
            series[mode],
            "#clients",
            "throughput (ops/s)",
            fmt="{:.0f}",
        )
    paper_vs_measured(
        "distributed scaling increases performance with more clients",
        f"{series['distributed'][0]:.0f} -> {series['distributed'][-1]:.0f} ops/s",
        series["distributed"][-1] > 1.5 * series["distributed"][0],
    )
    paper_vs_measured(
        "colocated scaling also increases performance (shared machine)",
        f"{series['colocated'][0]:.0f} -> {series['colocated'][-1]:.0f} ops/s",
        series["colocated"][-1] > 1.2 * series["colocated"][0],
    )
    multithreaded = series["multithreaded"]
    distributed = series["distributed"]
    paper_vs_measured(
        "multithreaded scaling does not scale (one client saturates one Ingestor)",
        f"{' -> '.join(f'{t:.0f}' for t in multithreaded)} ops/s "
        "(no growth beyond 2 clients, well below distributed scaling)",
        multithreaded[-1] <= multithreaded[1] * 1.05
        and multithreaded[-1] / multithreaded[0] < distributed[-1] / distributed[0],
    )
    paper_vs_measured(
        "the 1->2 client increase is the most significant",
        "see the distributed series above",
        (series["distributed"][1] - series["distributed"][0])
        >= (series["distributed"][3] - series["distributed"][2]) * 0.8,
    )
