"""One module per table/figure of the paper's evaluation.

| module                | paper artefact            |
|-----------------------|---------------------------|
| fig3_write_scaling    | Figure 3 (a) and (b)      |
| table2_latency        | Table II                  |
| fig4_compaction       | Figure 4                  |
| fig5_client_scaling   | Figure 5                  |
| fig6_read_latency     | Figure 6                  |
| fig7_backup_reads     | Figure 7 + §IV-C replication overhead |
| fig8_edge_cloud       | Figure 8 (a) and (b)      |
| table3_realtime       | Table III                 |
| fig9_smart_traffic    | Figure 9 (a) and (b)      |
| table1_consistency    | Table I (machine-checked) |
| ablations             | design-choice sweeps (DESIGN.md §5) |

Each module exposes ``run(...)`` returning structured results and
``report(results)`` printing the paper-style series plus
paper-vs-measured shape checks.
"""

from . import (
    ablations,
    table1_consistency,
    fig3_write_scaling,
    fig4_compaction,
    fig5_client_scaling,
    fig6_read_latency,
    fig7_backup_reads,
    fig8_edge_cloud,
    fig9_smart_traffic,
    table2_latency,
    table3_realtime,
)

__all__ = [
    "ablations",
    "fig3_write_scaling",
    "fig4_compaction",
    "fig5_client_scaling",
    "fig6_read_latency",
    "fig7_backup_reads",
    "fig8_edge_cloud",
    "fig9_smart_traffic",
    "table1_consistency",
    "table2_latency",
    "table3_realtime",
]
