"""Figure 6: read latency of the mixed workload while varying the read
percentage (25/50/75%), for 2 and 5 Compactors and both key ranges.

The paper's observation: read latency is flat (~0.7 ms) across key
ranges, compactor counts, and read percentages, thanks to bloom filters
and fence pointers plus single-Compactor read routing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import SCALE, drive, scaled_config
from repro.bench.reporting import paper_vs_measured, print_header, print_series
from repro.core import ClusterSpec, build_cluster
from repro.workloads import READ_BATCH, mixed, preload

READ_FRACTIONS = (0.25, 0.50, 0.75)
COMPACTOR_COUNTS = (2, 5)
KEY_RANGES = (100_000, 300_000)


@dataclass(slots=True)
class Fig6Point:
    key_range: int
    compactors: int
    read_fraction: float
    mean_read: float


def run(ops: int = 4 * READ_BATCH, scale: int = SCALE) -> list[Fig6Point]:
    points: list[Fig6Point] = []
    for key_range in KEY_RANGES:
        config = scaled_config(key_range, scale)
        for count in COMPACTOR_COUNTS:
            for fraction in READ_FRACTIONS:
                cluster = build_cluster(
                    ClusterSpec(config=config, num_compactors=count)
                )
                client = cluster.add_client(
                    colocate_with="ingestor-0", record_history=False
                )
                cluster.run_process(
                    preload(client, config.key_range, key_range=config.key_range)
                )
                client.stats.latencies.clear()
                result = drive(cluster, [mixed(client, fraction, ops=ops)])
                points.append(
                    Fig6Point(key_range, count, fraction, result.reads.mean)
                )
    return points


def report(points: list[Fig6Point]) -> None:
    print_header("Figure 6 — read latency vs read percentage")
    for key_range in KEY_RANGES:
        for count in COMPACTOR_COUNTS:
            series = [
                p
                for p in points
                if p.key_range == key_range and p.compactors == count
            ]
            print_series(
                f"key range {key_range // 1000}K, {count} compactors",
                [f"{p.read_fraction:.0%}" for p in series],
                [p.mean_read * 1_000 for p in series],
                "read %",
                "mean read latency (ms)",
            )
    means = [p.mean_read for p in points]
    spread = (max(means) - min(means)) / max(means)
    paper_vs_measured(
        "consistent read latency (~0.7ms) across key ranges and compactor counts",
        f"all points within {spread:.0%} of each other "
        f"({min(means) * 1e3:.3f}-{max(means) * 1e3:.3f}ms)",
        spread < 0.35,
    )
    big = [p.mean_read for p in points if p.key_range == 300_000]
    small = [p.mean_read for p in points if p.key_range == 100_000]
    ratio = (sum(big) / len(big)) / (sum(small) / len(small))
    paper_vs_measured(
        "larger LSM tree does not affect read latency (bloom + fence pointers)",
        f"300K/100K mean-read ratio {ratio:.2f}",
        0.8 < ratio < 1.25,
    )
