"""Table III: performance of real-time actions (the V2X task).

Three configurations of (client location, Ingestor location) with the
rest of the system (5 Compactors) in the Virginia cloud:

| Client     | Ingestor   | paper latency |
|------------|------------|---------------|
| in cloud   | in cloud   | 0.5584 ms     |
| California | California | 0.8393 ms     |
| California | in cloud   | 122.485 ms    |

The last row is the traditional cloud deployment: the write+read
sequence pays two WAN round trips (~61 ms each)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import SCALE, scaled_config
from repro.bench.reporting import paper_vs_measured, print_header, print_table
from repro.core import ClusterSpec, build_cluster
from repro.sim.regions import Region
from repro.workloads import CityModel, populate_city, real_time_action

CONFIGS = (
    ("in cloud", "in cloud", Region.VIRGINIA, Region.VIRGINIA),
    ("California", "California", Region.CALIFORNIA, Region.CALIFORNIA),
    ("California", "in cloud", Region.CALIFORNIA, Region.VIRGINIA),
)


@dataclass(slots=True)
class Table3Row:
    client_location: str
    ingestor_location: str
    mean_latency: float


def run(rounds: int = 200, scale: int = SCALE) -> list[Table3Row]:
    rows: list[Table3Row] = []
    config = scaled_config(100_000, scale)
    city = CityModel(num_cars=1_000, num_intersections=50)
    for client_label, ingestor_label, client_region, ingestor_region in CONFIGS:
        cluster = build_cluster(
            ClusterSpec(
                config=config,
                num_compactors=5,
                ingestor_regions=(ingestor_region,),
            )
        )
        if client_region == ingestor_region:
            client = cluster.add_client(
                colocate_with="ingestor-0", record_history=False
            )
        else:
            client = cluster.add_client(region=client_region, record_history=False)
        cluster.run_process(populate_city(client, city))
        result = cluster.run_process(
            real_time_action(client, client, city, rounds=rounds)
        )
        rows.append(Table3Row(client_label, ingestor_label, result.mean))
    return rows


def report(rows: list[Table3Row]) -> None:
    print_header(
        "Table III — performance of real-time actions",
        "(paper: 0.5584ms / 0.8393ms / 122.485ms)",
    )
    print_table(
        ("Client Location", "Ingestor Location", "Latency(ms)"),
        [
            (r.client_location, r.ingestor_location, f"{r.mean_latency * 1e3:.4f}")
            for r in rows
        ],
        title="Real-Time Workload",
    )
    cloud, edge, traditional = rows
    paper_vs_measured(
        "edge Ingestor near the client stays sub-millisecond (0.84ms)",
        f"{edge.mean_latency * 1e3:.4f}ms",
        edge.mean_latency < 0.002,
    )
    paper_vs_measured(
        "edge case only slightly above the all-in-cloud best case (+0.3ms)",
        f"+{(edge.mean_latency - cloud.mean_latency) * 1e3:.4f}ms",
        edge.mean_latency < 4 * cloud.mean_latency,
    )
    paper_vs_measured(
        "traditional cloud deployment pays two WAN round trips (~122ms)",
        f"{traditional.mean_latency * 1e3:.2f}ms "
        f"({traditional.mean_latency / edge.mean_latency:.0f}x the edge case)",
        traditional.mean_latency > 0.1,
    )
