"""Table II: detailed write latency statistics with 1 Ingestor and 5
Compactors (percentiles, average, maximum, slow-op count)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import SCALE, drive, scaled_config
from repro.bench.metrics import LatencySummary, count_above
from repro.bench.reporting import paper_vs_measured, print_header, print_table
from repro.core import ClusterSpec, build_cluster
from repro.workloads import write_only

#: Table II's slow-op threshold.  The paper uses 50 ms on its testbed,
#: where compaction stalls reach 200 ms; our scaled configuration's
#: stalls top out around 40 ms, so the equivalent cut is 10 ms (same
#: position relative to the tail: between p99.9 and the maximum).
SLOW_THRESHOLD = 0.010


@dataclass(slots=True)
class Table2Result:
    summary: LatencySummary
    slow_ops: int


def run(ops: int = 20_000, scale: int = SCALE) -> Table2Result:
    config = scaled_config(100_000, scale)
    cluster = build_cluster(ClusterSpec(config=config, num_compactors=5))
    client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
    result = drive(cluster, [write_only(client, ops=ops)])
    samples = []
    for c in cluster.clients:
        samples.extend(c.stats.all("write"))
    return Table2Result(result.writes, count_above(samples, SLOW_THRESHOLD))


def report(result: Table2Result) -> None:
    s = result.summary
    print_header(
        "Table II — latency statistics, 1 Ingestor and 5 Compactors",
        "(paper: p99 0.04ms, p999 1.4ms, p9999 100ms, avg 0.11ms, max 200ms, >50ms: 10 ops)",
    )
    print_table(
        ("Percentile/Measure", "Value"),
        [
            ("0.99", f"{s.ms('p99'):.4f}ms"),
            ("0.999", f"{s.ms('p999'):.4f}ms"),
            ("0.9999", f"{s.ms('p9999'):.4f}ms"),
            ("Average", f"{s.ms('mean'):.4f}ms"),
            ("Maximum", f"{s.ms('maximum'):.4f}ms"),
            (f"latency>{SLOW_THRESHOLD * 1e3:.0f}ms", f"{result.slow_ops} ops"),
        ],
    )
    paper_vs_measured(
        "most requests fast (p99 well under the average-dominating tail)",
        f"p99 {s.ms('p99'):.4f}ms vs max {s.ms('maximum'):.2f}ms",
        s.p99 < s.maximum / 10,
    )
    paper_vs_measured(
        "a small fraction of requests (compaction-triggering) are 100x+ slower",
        f"{result.slow_ops} ops above {SLOW_THRESHOLD * 1e3:.0f}ms out of {s.count}",
        result.slow_ops < s.count * 0.01,
    )
