"""Figure 3: write latency (a) and throughput (b) vs number of
Compactors, for 100K and 300K key ranges, with the monolithic CooLSM
and the LevelDB/RocksDB-like engines as reference points."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.nodes import build_baseline_node
from repro.bench.harness import SCALE, drive, scaled_config
from repro.bench.reporting import paper_vs_measured, print_header, print_series
from repro.core import ClusterSpec, build_cluster
from repro.core.client import Client
from repro.core.keyspace import Partitioning
from repro.workloads import write_only

COMPACTOR_COUNTS = (1, 2, 3, 5, 7)
KEY_RANGES = (100_000, 300_000)


@dataclass(slots=True)
class Fig3Result:
    """One (system, key range) point: mean write latency and throughput."""

    system: str
    key_range: int
    mean_write: float
    throughput: float


def _run_coolsm(key_range: int, compactors: int, ops: int, scale: int) -> Fig3Result:
    config = scaled_config(key_range, scale)
    cluster = build_cluster(ClusterSpec(config=config, num_compactors=compactors))
    client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
    result = drive(cluster, [write_only(client, ops=ops)])
    return Fig3Result(
        f"coolsm-{compactors}c", key_range, result.writes.mean, result.write_throughput
    )


def _run_monolithic(key_range: int, ops: int, scale: int) -> Fig3Result:
    config = scaled_config(key_range, scale)
    cluster = build_cluster(ClusterSpec(config=config, monolithic=True))
    client = cluster.add_client(colocate_with="mono-0", record_history=False)
    result = drive(cluster, [write_only(client, ops=ops)])
    return Fig3Result("monolithic", key_range, result.writes.mean, result.write_throughput)


def _run_baseline(kind: str, key_range: int, ops: int, scale: int) -> Fig3Result:
    config = scaled_config(key_range, scale)
    kernel, network, machine, node = build_baseline_node(kind, config)
    partitioning = Partitioning.uniform(config.key_range, [node.name])
    client = Client(
        kernel, network, machine, "client-0", config, partitioning, [node.name]
    )
    started = kernel.now
    writes = 0

    def driver():
        nonlocal writes
        result = yield from write_only(client, ops=ops)
        writes = result[0]
        return kernel.now

    ended = kernel.run_process(driver())
    latencies = client.stats.all("write")
    mean = sum(latencies) / len(latencies)
    return Fig3Result(kind, key_range, mean, writes / max(ended - started, 1e-12))


def run(ops: int = 10_000, scale: int = SCALE) -> list[Fig3Result]:
    """Run the full Figure 3 sweep; returns one row per point.

    ``ops`` is the operation count for the 100K key range; the 300K
    runs issue proportionally more so both trees reach a comparable
    fill level (as the paper's longer 300K runs do).
    """
    rows: list[Fig3Result] = []
    for key_range in KEY_RANGES:
        range_ops = ops * key_range // KEY_RANGES[0]
        rows.append(_run_monolithic(key_range, range_ops, scale))
        for count in COMPACTOR_COUNTS:
            rows.append(_run_coolsm(key_range, count, range_ops, scale))
        rows.append(_run_baseline("leveldb", key_range, range_ops, scale))
        rows.append(_run_baseline("rocksdb", key_range, range_ops, scale))
    return rows


def report(rows: list[Fig3Result]) -> None:
    print_header(
        "Figure 3 — write performance vs number of Compactors",
        "(scaled configuration; absolute numbers are model-calibrated)",
    )
    for key_range in KEY_RANGES:
        points = [r for r in rows if r.key_range == key_range]
        print_series(
            f"Fig 3(a) write latency, key range {key_range // 1000}K",
            [p.system for p in points],
            [p.mean_write * 1_000 for p in points],
            "system",
            "mean write latency (ms)",
        )
        print_series(
            f"Fig 3(b) write throughput, key range {key_range // 1000}K",
            [p.system for p in points],
            [p.throughput for p in points],
            "system",
            "throughput (ops/s)",
            fmt="{:.0f}",
        )

    by = {(r.system, r.key_range): r for r in rows}
    mono = by[("monolithic", 100_000)].mean_write
    three = by[("coolsm-3c", 100_000)].mean_write
    five = by[("coolsm-5c", 100_000)].mean_write
    seven = by[("coolsm-7c", 100_000)].mean_write
    paper_vs_measured(
        "~50% latency reduction from monolithic to 3 compactors",
        f"{(1 - three / mono) * 100:.0f}% reduction",
        three < mono,
    )
    paper_vs_measured(
        "reduction not significant after 5 compactors",
        f"5c {five * 1e3:.4f}ms vs 7c {seven * 1e3:.4f}ms",
        abs(five - seven) / five < 0.15,
    )
    lat_300 = by[("coolsm-1c", 300_000)].mean_write
    lat_100 = by[("coolsm-1c", 100_000)].mean_write
    paper_vs_measured(
        "300K key range slower than 100K (bigger tree)",
        f"{lat_300 * 1e3:.4f}ms vs {lat_100 * 1e3:.4f}ms",
        lat_300 > lat_100,
    )
    thr_10 = [by[(f"coolsm-{c}c", 100_000)].throughput for c in COMPACTOR_COUNTS]
    paper_vs_measured(
        "throughput increases with the number of compactors",
        " -> ".join(f"{t:.0f}" for t in thr_10),
        all(b >= a * 0.98 for a, b in zip(thr_10, thr_10[1:])),
    )
