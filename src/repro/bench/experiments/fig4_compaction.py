"""Figure 4: L2 and L3 major-compaction latency vs number of
Compactors, for 100K and 300K key ranges."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import SCALE, compaction_summary, drive, scaled_config
from repro.bench.reporting import paper_vs_measured, print_header, print_series
from repro.core import ClusterSpec, build_cluster
from repro.workloads import write_only

COMPACTOR_COUNTS = (1, 2, 3, 5, 7)
KEY_RANGES = (100_000, 300_000)


@dataclass(slots=True)
class Fig4Point:
    key_range: int
    compactors: int
    l2_mean: float
    l3_mean: float


def run(ops: int = 12_000, scale: int = SCALE) -> list[Fig4Point]:
    """``ops`` applies to the 100K range; 300K runs proportionally more
    so both trees reach a comparable fill level."""
    points: list[Fig4Point] = []
    for key_range in KEY_RANGES:
        config = scaled_config(key_range, scale)
        range_ops = ops * key_range // KEY_RANGES[0]
        for count in COMPACTOR_COUNTS:
            cluster = build_cluster(ClusterSpec(config=config, num_compactors=count))
            client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
            drive(cluster, [write_only(client, ops=range_ops)])
            summary = compaction_summary(cluster)
            points.append(
                Fig4Point(
                    key_range,
                    count,
                    summary.get(2).mean if 2 in summary else 0.0,
                    summary.get(3).mean if 3 in summary else 0.0,
                )
            )
    return points


def report(points: list[Fig4Point]) -> None:
    print_header("Figure 4 — compaction latency vs number of Compactors")
    for key_range in KEY_RANGES:
        series = [p for p in points if p.key_range == key_range]
        print_series(
            f"L2 compaction latency, key range {key_range // 1000}K",
            [p.compactors for p in series],
            [p.l2_mean * 1_000 for p in series],
            "#compactors",
            "mean L2 compaction (ms)",
        )
        print_series(
            f"L3 compaction latency, key range {key_range // 1000}K",
            [p.compactors for p in series],
            [p.l3_mean * 1_000 for p in series],
            "#compactors",
            "mean L3 compaction (ms)",
        )

    series_100 = [p for p in points if p.key_range == 100_000]
    l2 = [p.l2_mean for p in series_100]
    paper_vs_measured(
        "more Compactors -> lower per-compaction latency (stress divided)",
        " -> ".join(f"{v * 1e3:.1f}ms" for v in l2),
        l2[0] > l2[-1],
    )
    with_l3 = [p for p in series_100 if p.l3_mean > 0]
    paper_vs_measured(
        "L3 compaction latency below L2 (most work absorbed at L2)",
        ", ".join(
            f"{p.compactors}c: L2 {p.l2_mean * 1e3:.1f} vs L3 {p.l3_mean * 1e3:.1f}ms"
            for p in with_l3[:3]
        )
        + "  [our runs fill L3 to a larger fraction of its capacity than the "
        "paper's, so bottom-level overlap dominates; see EXPERIMENTS.md]",
        all(p.l3_mean <= p.l2_mean for p in with_l3) if with_l3 else True,
    )
    l2_300 = [p.l2_mean for p in points if p.key_range == 300_000]
    paper_vs_measured(
        "300K compactions take longer than 100K",
        f"1 compactor: {l2_300[0] * 1e3:.1f}ms vs {l2[0] * 1e3:.1f}ms",
        l2_300[0] > l2[0],
    )
