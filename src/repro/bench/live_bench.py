"""Benchmark a real localhost CooLSM cluster (``repro.cli live-bench``).

Launches the standard smoke topology (1 Ingestor, 2 Compactors,
1 Reader) as subprocesses, then drives a **saturation sweep**: the
cross product of client counts and pipelining depths, measuring
wall-clock upsert/read latency (p50/p99/p999) through the real client
stack — wire codec, TCP, asyncio interpreter — and throughput per
point.  Results land in ``BENCH_live.json``.

Depth 0 is the legacy synchronous path (one blocking RPC per op): it
anchors the machine-relative ``pipelined_speedup`` — best pipelined
throughput over best synchronous throughput — which is what the CI
``--check`` gate compares against the checked-in baseline (ratios
transfer across machines; absolute ops/s do not).

Pipelined points write through :class:`~repro.core.client.ClientPipeline`
(auto-batching into ``UpsertBatchRequest``, up to ``depth`` batches in
flight) against a cluster running WAL group commit, so one fsync and
one wire round-trip amortise over many acks.

These are *real seconds on whatever machine runs the bench*, not the
simulator's modelled seconds: use them to track live-runtime overhead
across changes, not to reproduce the paper's figures (that is the
simulator's job).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import platform
import sys
import tempfile
import time

from repro.core.client import ClientPipeline
from repro.core.config import CooLSMConfig
from repro.core.history import History

from repro.live.harness import ClientPool, LocalCluster, localhost_spec
from repro.live.node import LiveSpec

from .metrics import LatencySummary, throughput

#: Synchronous point reads per client, probed AFTER the write phase
#: drains: the write sweep saturates the write path without a blocking
#: read serialising the pipeline, and the probe still reports read
#: latency (and verifies the writes landed) at every point.
READ_PROBES = 50
#: Default sweep shape: every client count at every pipelining depth
#: (0 = the synchronous one-RPC-per-op reference path).
DEFAULT_CLIENTS = (1, 2, 4, 8, 16)
DEFAULT_DEPTHS = (0, 4, 16)
DEFAULT_MAX_BATCH = 128
#: Shard-scaling sweep: aggregate pipelined write throughput per
#: Ingestor count, clients routing by the shard map.
DEFAULT_SHARDS = (1, 2, 4)
SHARD_SWEEP_CLIENTS = 4
SHARD_SWEEP_DEPTH = 4
#: Expected-scaling efficiency: at ``min(shards, cpus)`` ideal speedup,
#: a healthy run keeps at least this fraction (0.625 * 4 = the 2.5x
#: floor at 4 Ingestors on a >= 4-core machine).
SHARD_SCALING_EFFICIENCY = 0.625


def _sync_workload(client, rng, key_range: int, ops: int, samples: dict):
    """Depth 0: one blocking RPC per upsert (the pre-pipelining path)."""
    for _ in range(ops):
        key = str(rng.randrange(key_range)).encode()
        started = time.perf_counter()
        yield from client.upsert(key, b"v" + key)
        samples["upsert"].append(time.perf_counter() - started)
    return ops


def _pipelined_workload(
    client, rng, key_range: int, ops: int, samples: dict, max_batch: int, depth: int
):
    """Writes through the auto-batching pipeline; per-op latency is
    submit -> ack of the covering batch, so queueing delay inside the
    window is charged to the op (the honest pipelining tradeoff)."""
    pipeline = ClientPipeline(client, max_batch=max_batch, depth=depth)
    for _ in range(ops):
        key = str(rng.randrange(key_range)).encode()
        yield from pipeline.put(key, b"v" + key)
    yield from pipeline.drain()
    samples["upsert"].extend(pipeline.latencies)
    return ops


def _read_probe(client, rng, key_range: int, samples: dict):
    """Post-drain synchronous reads: latency under a quiescent cluster
    plus a spot-check that the batched writes are actually readable."""
    for _ in range(READ_PROBES):
        key = str(rng.randrange(key_range)).encode()
        started = time.perf_counter()
        value = yield from client.read(key)
        samples["read"].append(time.perf_counter() - started)
        if value is not None and value != b"v" + key:
            raise AssertionError(f"read {key!r} returned foreign value {value!r}")
    return READ_PROBES


async def _drive(
    spec: LiveSpec,
    num_clients: int,
    ops_per_client: int,
    seed: int,
    max_batch: int,
    depth: int,
):
    import random

    samples: dict[str, list[float]] = {"upsert": [], "read": []}
    history = History()
    async with ClientPool(spec, num_clients=num_clients, history=history) as pool:
        started = time.perf_counter()
        workloads = []
        for index, client in enumerate(pool.clients):
            rng = random.Random(seed + index)
            if depth > 0:
                workload = _pipelined_workload(
                    client, rng, spec.config.key_range, ops_per_client,
                    samples, max_batch, depth,
                )
            else:
                workload = _sync_workload(
                    client, rng, spec.config.key_range, ops_per_client, samples
                )
            workloads.append(pool.run(workload, f"bench-{index}"))
        await asyncio.gather(*workloads)
        elapsed = time.perf_counter() - started
        # Read latency is probed after the write phase drains, outside
        # the timed window (the sweep's throughput is the write path's).
        await asyncio.gather(
            *(
                pool.run(
                    _read_probe(
                        client, random.Random(seed + 7_000 + i),
                        spec.config.key_range, samples,
                    ),
                    f"probe-{i}",
                )
                for i, client in enumerate(pool.clients[:num_clients])
            )
        )
    return samples, elapsed, len(history)


def _latency_doc(summary: LatencySummary) -> dict:
    return {
        "p50": round(summary.ms("p50"), 3),
        "p99": round(summary.ms("p99"), 3),
        "p999": round(summary.ms("p999"), 3),
        "mean": round(summary.ms("mean"), 3),
        "count": summary.count,
    }


def run_shard_sweep(
    shard_counts: list[int],
    ops_per_client: int = 400,
    seed: int = 0,
    max_batch: int = DEFAULT_MAX_BATCH,
) -> dict:
    """Aggregate write throughput per Ingestor count, sharded routing.

    Each point boots a *sharded* cluster of ``n`` Ingestors (disjoint
    uniform key ranges) and drives a fixed pipelined client fleet whose
    random keys spray across every shard, so the measured ops/s is the
    fleet's aggregate.  The headline ``scaling_ratio`` — best multi-
    shard throughput over the 1-shard point — is machine-relative: on
    an ``n``-core box the ideal is ``min(shards, cpus)``, which is why
    ``cpus`` rides along in the document and the ``--check`` gate
    scales its floor by it.
    """
    config = dataclasses.replace(
        CooLSMConfig().scaled_down(10), wal_group_commit=True
    )
    points = []
    for num_shards in shard_counts:
        spec = localhost_spec(
            num_shards,
            2,
            0,
            num_clients=SHARD_SWEEP_CLIENTS,
            config=config,
            seed=seed,
            sharded=True,
        )
        with tempfile.TemporaryDirectory(prefix="coolsm-shard-bench-") as work:
            with LocalCluster(spec, work) as cluster:
                cluster.wait_ready()
                samples, elapsed, recorded = asyncio.run(
                    _drive(
                        spec,
                        SHARD_SWEEP_CLIENTS,
                        ops_per_client,
                        seed,
                        max_batch,
                        SHARD_SWEEP_DEPTH,
                    )
                )
                exit_codes = cluster.stop()
        total_ops = SHARD_SWEEP_CLIENTS * ops_per_client
        points.append(
            {
                "shards": num_shards,
                "clients": SHARD_SWEEP_CLIENTS,
                "depth": SHARD_SWEEP_DEPTH,
                "ops": total_ops,
                "recorded_ops": recorded,
                "elapsed_s": round(elapsed, 4),
                "throughput_ops_s": round(throughput(total_ops, elapsed), 1),
                "upsert_ms": _latency_doc(
                    LatencySummary.from_samples(samples["upsert"])
                ),
                "drained_exit_codes": exit_codes,
            }
        )
    single = next((p for p in points if p["shards"] == 1), None)
    best_multi = max(
        (p for p in points if p["shards"] > 1),
        key=lambda p: p["throughput_ops_s"],
        default=None,
    )
    ratio = None
    if single and best_multi and single["throughput_ops_s"] > 0:
        ratio = round(
            best_multi["throughput_ops_s"] / single["throughput_ops_s"], 2
        )
    return {
        "shard_counts": list(shard_counts),
        "clients": SHARD_SWEEP_CLIENTS,
        "depth": SHARD_SWEEP_DEPTH,
        "points": points,
        "scaling_ratio": ratio,
        "scaling_at_shards": best_multi["shards"] if best_multi else None,
    }


def run(
    client_counts: list[int] | None = None,
    ops_per_client: int = 400,
    seed: int = 0,
    depths: list[int] | None = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    shard_counts: list[int] | None = None,
) -> dict:
    """Run the saturation sweep; returns the BENCH_live.json document."""
    client_counts = list(client_counts or DEFAULT_CLIENTS)
    depths = list(depths if depths is not None else DEFAULT_DEPTHS)
    config = dataclasses.replace(
        CooLSMConfig().scaled_down(10), wal_group_commit=True
    )
    points = []
    for depth in depths:
        for num_clients in client_counts:
            spec = localhost_spec(
                1, 2, 1, num_clients=max(num_clients, 1), config=config, seed=seed
            )
            with tempfile.TemporaryDirectory(prefix="coolsm-live-bench-") as work:
                with LocalCluster(spec, work) as cluster:
                    cluster.wait_ready()
                    samples, elapsed, recorded = asyncio.run(
                        _drive(
                            spec, num_clients, ops_per_client, seed, max_batch, depth
                        )
                    )
                    exit_codes = cluster.stop()
            total_ops = num_clients * ops_per_client
            points.append(
                {
                    "clients": num_clients,
                    "depth": depth,
                    "max_batch": max_batch if depth > 0 else 1,
                    "ops": total_ops,
                    "recorded_ops": recorded,
                    "elapsed_s": round(elapsed, 4),
                    "throughput_ops_s": round(throughput(total_ops, elapsed), 1),
                    "upsert_ms": _latency_doc(
                        LatencySummary.from_samples(samples["upsert"])
                    ),
                    "read_ms": _latency_doc(
                        LatencySummary.from_samples(samples["read"])
                    ),
                    "drained_exit_codes": exit_codes,
                }
            )
    best = max(points, key=lambda p: p["throughput_ops_s"])
    sync_points = [p for p in points if p["depth"] == 0]
    sync_best = (
        max(p["throughput_ops_s"] for p in sync_points) if sync_points else None
    )
    return {
        "bench": "live",
        "topology": {"ingestors": 1, "compactors": 2, "readers": 1},
        "ops_per_client": ops_per_client,
        "read_probes": READ_PROBES,
        "seed": seed,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "sweep": {"clients": client_counts, "depths": depths, "max_batch": max_batch},
        "wal_group_commit": {
            "enabled": config.wal_group_commit,
            "max_batch": config.group_commit_max_batch,
            "max_delay": config.group_commit_max_delay,
        },
        "points": points,
        "best": {
            "clients": best["clients"],
            "depth": best["depth"],
            "throughput_ops_s": best["throughput_ops_s"],
        },
        "sync_baseline_ops_s": sync_best,
        "pipelined_speedup": (
            round(best["throughput_ops_s"] / sync_best, 2)
            if sync_best
            else None
        ),
        "shard_sweep": (
            run_shard_sweep(list(shard_counts), ops_per_client, seed, max_batch)
            if shard_counts
            else None
        ),
    }


def check_regression(
    current: dict, baseline: dict | None, max_regression: float = 2.0
) -> list[str]:
    """Failures (empty when healthy).  Correctness is absolute — every
    node must have drained cleanly at every point; speed is the
    machine-relative ``pipelined_speedup`` (best pipelined / best
    synchronous throughput on the SAME machine) vs the baseline's, so
    the gate travels across hardware."""
    failures: list[str] = []
    for point in current["points"]:
        if any(code != 0 for code in point["drained_exit_codes"].values()):
            failures.append(
                f"clients={point['clients']} depth={point['depth']}: "
                f"non-zero drain exits {point['drained_exit_codes']}"
            )
    if baseline is not None and _comparable(current, baseline):
        base = baseline.get("pipelined_speedup") or 0.0
        cur = current.get("pipelined_speedup") or 0.0
        if base > 0 and cur < base / max_regression:
            failures.append(
                f"pipelined_speedup regressed {base:.2f}x -> {cur:.2f}x "
                f"(allowed factor {max_regression}x)"
            )
    failures.extend(check_shard_scaling(current))
    return failures


def check_shard_scaling(current: dict) -> list[str]:
    """Machine-relative shard-scaling gate.

    The ideal aggregate speedup of an ``n``-shard fleet on this machine
    is ``min(n, cpus)`` (the Ingestors are CPU-bound processes); a
    healthy run keeps at least ``SHARD_SCALING_EFFICIENCY`` of it.  On
    a >= 4-core box that is the paper-style ">= 2.5x at 4 Ingestors";
    on a 1-core box the floor degrades to ~parity instead of demanding
    impossible parallelism.  No cross-machine baseline is consulted —
    the ratio is already relative to the same machine's 1-shard point.
    """
    sweep = current.get("shard_sweep")
    if not sweep:
        return []
    failures = []
    for point in sweep["points"]:
        if any(code != 0 for code in point["drained_exit_codes"].values()):
            failures.append(
                f"shards={point['shards']}: non-zero drain exits "
                f"{point['drained_exit_codes']}"
            )
    ratio = sweep.get("scaling_ratio")
    at_shards = sweep.get("scaling_at_shards")
    if ratio is not None and at_shards:
        cpus = current.get("cpus") or 1
        floor = SHARD_SCALING_EFFICIENCY * min(at_shards, cpus)
        if ratio < floor:
            failures.append(
                f"shard scaling {ratio:.2f}x at {at_shards} shards is below "
                f"the machine-relative floor {floor:.2f}x "
                f"({SHARD_SCALING_EFFICIENCY} * min({at_shards} shards, "
                f"{cpus} cpus))"
            )
    return failures


def _comparable(current: dict, baseline: dict) -> bool:
    """Speedups only compare between runs of the same sweep shape."""
    keys = ("sweep", "topology", "ops_per_client", "read_probes")
    return all(current.get(k) == baseline.get(k) for k in keys)


def run_and_report(
    out: str = "BENCH_live.json",
    client_counts: list[int] | None = None,
    ops_per_client: int = 400,
    seed: int = 0,
    depths: list[int] | None = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    check: str | None = None,
    max_regression: float = 2.0,
    shard_counts: list[int] | None = None,
) -> int:
    """CLI entrypoint: run, print a table, write JSON, gate vs baseline."""
    document = run(
        client_counts, ops_per_client, seed, depths, max_batch, shard_counts
    )
    print(
        f"live bench — {document['topology']} — {ops_per_client} ops/client, "
        f"cpus={document['cpus']}, group_commit="
        f"{document['wal_group_commit']['enabled']}"
    )
    header = (
        f"{'clients':>8} {'depth':>6} {'thru ops/s':>11} {'upsert p50':>11} "
        f"{'upsert p99':>11} {'p999':>9} {'read p50':>9} {'read p99':>9}"
    )
    print(header)
    for point in document["points"]:
        print(
            f"{point['clients']:>8} {point['depth']:>6} "
            f"{point['throughput_ops_s']:>11} "
            f"{point['upsert_ms']['p50']:>10.2f}ms {point['upsert_ms']['p99']:>10.2f}ms "
            f"{point['upsert_ms']['p999']:>8.2f}ms "
            f"{point['read_ms']['p50']:>8.2f}ms {point['read_ms']['p99']:>8.2f}ms"
        )
    best = document["best"]
    print(
        f"best: {best['throughput_ops_s']} ops/s at clients={best['clients']} "
        f"depth={best['depth']} (sync baseline {document['sync_baseline_ops_s']} "
        f"ops/s, speedup {document['pipelined_speedup']}x)"
    )
    sweep = document.get("shard_sweep")
    if sweep:
        print(
            f"shard scaling — {sweep['clients']} clients, depth "
            f"{sweep['depth']}, sharded routing"
        )
        print(f"{'shards':>8} {'thru ops/s':>11} {'upsert p50':>11} {'p99':>9}")
        for point in sweep["points"]:
            print(
                f"{point['shards']:>8} {point['throughput_ops_s']:>11} "
                f"{point['upsert_ms']['p50']:>10.2f}ms "
                f"{point['upsert_ms']['p99']:>8.2f}ms"
            )
        print(
            f"scaling: {sweep['scaling_ratio']}x at "
            f"{sweep['scaling_at_shards']} shards "
            f"(ideal min(shards, {document['cpus']} cpus))"
        )
    with open(out, "w") as sink:
        json.dump(document, sink, indent=2)
        sink.write("\n")
    print(f"wrote {out}")
    baseline = None
    if check is not None:
        with open(check) as source:
            baseline = json.load(source)
    failures = check_regression(document, baseline, max_regression)
    for failure in failures:
        print(f"  !! {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_and_report())
