"""Benchmark a real localhost CooLSM cluster (``repro.cli live-bench``).

Launches the standard smoke topology (1 Ingestor, 2 Compactors,
1 Reader) as subprocesses, then drives it with increasing client
counts, measuring wall-clock upsert and read latency through the real
client stack — wire codec, TCP, asyncio interpreter — and throughput
per client count.  Results land in ``BENCH_live.json``.

These are *real seconds on whatever machine runs the bench*, not the
simulator's modelled seconds: use them to track live-runtime overhead
(serialisation, transport, event-loop scheduling) across changes, not
to reproduce the paper's figures (that is the simulator's job).
"""

from __future__ import annotations

import asyncio
import json
import platform
import sys
import tempfile
import time

from repro.core.config import CooLSMConfig
from repro.core.history import History

from repro.live.harness import ClientPool, LocalCluster, localhost_spec
from repro.live.node import LiveSpec

from .metrics import LatencySummary, throughput

#: Fraction of operations that are reads in the benchmark mix.
READ_FRACTION = 0.2


def _workload(client, rng, key_range: int, ops: int, samples: dict):
    """One client's operation mix; appends wall-clock latencies."""
    for _ in range(ops):
        key = str(rng.randrange(key_range)).encode()
        started = time.perf_counter()
        if rng.random() < READ_FRACTION:
            yield from client.read(key)
            samples["read"].append(time.perf_counter() - started)
        else:
            yield from client.upsert(key, b"v" + key)
            samples["upsert"].append(time.perf_counter() - started)
    return ops


async def _drive(spec: LiveSpec, num_clients: int, ops_per_client: int, seed: int):
    import random

    samples: dict[str, list[float]] = {"upsert": [], "read": []}
    history = History()
    async with ClientPool(spec, num_clients=num_clients, history=history) as pool:
        started = time.perf_counter()
        await asyncio.gather(
            *(
                pool.run(
                    _workload(
                        client,
                        random.Random(seed + index),
                        spec.config.key_range,
                        ops_per_client,
                        samples,
                    ),
                    f"bench-{index}",
                )
                for index, client in enumerate(pool.clients)
            )
        )
        elapsed = time.perf_counter() - started
    return samples, elapsed, len(history)


def run(
    client_counts: list[int],
    ops_per_client: int = 400,
    seed: int = 0,
) -> dict:
    """Run the live benchmark; returns the BENCH_live.json document."""
    config = CooLSMConfig().scaled_down(10)
    points = []
    for num_clients in client_counts:
        spec = localhost_spec(
            1, 2, 1, num_clients=max(num_clients, 1), config=config, seed=seed
        )
        with tempfile.TemporaryDirectory(prefix="coolsm-live-bench-") as work:
            with LocalCluster(spec, work) as cluster:
                cluster.wait_ready()
                samples, elapsed, recorded = asyncio.run(
                    _drive(spec, num_clients, ops_per_client, seed)
                )
                exit_codes = cluster.stop()
        total_ops = num_clients * ops_per_client
        upsert = LatencySummary.from_samples(samples["upsert"])
        read = LatencySummary.from_samples(samples["read"])
        points.append(
            {
                "clients": num_clients,
                "ops": total_ops,
                "recorded_ops": recorded,
                "elapsed_s": round(elapsed, 4),
                "throughput_ops_s": round(throughput(total_ops, elapsed), 1),
                "upsert_ms": {
                    "p50": round(upsert.ms("p50"), 3),
                    "p99": round(upsert.ms("p99"), 3),
                    "mean": round(upsert.ms("mean"), 3),
                    "count": upsert.count,
                },
                "read_ms": {
                    "p50": round(read.ms("p50"), 3),
                    "p99": round(read.ms("p99"), 3),
                    "mean": round(read.ms("mean"), 3),
                    "count": read.count,
                },
                "drained_exit_codes": exit_codes,
            }
        )
    return {
        "bench": "live",
        "topology": {"ingestors": 1, "compactors": 2, "readers": 1},
        "ops_per_client": ops_per_client,
        "read_fraction": READ_FRACTION,
        "seed": seed,
        "python": platform.python_version(),
        "points": points,
    }


def run_and_report(
    out: str = "BENCH_live.json",
    client_counts: list[int] | None = None,
    ops_per_client: int = 400,
    seed: int = 0,
) -> int:
    """CLI entrypoint: run, print a table, write the JSON document."""
    document = run(client_counts or [1, 2, 4], ops_per_client, seed)
    print(f"live bench — {document['topology']} — {ops_per_client} ops/client")
    header = (
        f"{'clients':>8} {'thru ops/s':>11} {'upsert p50':>11} "
        f"{'upsert p99':>11} {'read p50':>9} {'read p99':>9}"
    )
    print(header)
    failed = False
    for point in document["points"]:
        print(
            f"{point['clients']:>8} {point['throughput_ops_s']:>11} "
            f"{point['upsert_ms']['p50']:>10.2f}ms {point['upsert_ms']['p99']:>10.2f}ms "
            f"{point['read_ms']['p50']:>8.2f}ms {point['read_ms']['p99']:>8.2f}ms"
        )
        if any(code != 0 for code in point["drained_exit_codes"].values()):
            failed = True
            print(f"  !! non-zero drain exits: {point['drained_exit_codes']}")
    with open(out, "w") as sink:
        json.dump(document, sink, indent=2)
        sink.write("\n")
    print(f"wrote {out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(run_and_report())
