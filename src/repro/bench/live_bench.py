"""Benchmark a real localhost CooLSM cluster (``repro.cli live-bench``).

Launches the standard smoke topology (1 Ingestor, 2 Compactors,
1 Reader) as subprocesses, then drives a **saturation sweep**: the
cross product of client counts and pipelining depths, measuring
wall-clock upsert/read latency (p50/p99/p999) through the real client
stack — wire codec, TCP, asyncio interpreter — and throughput per
point.  Results land in ``BENCH_live.json``.

Depth 0 is the legacy synchronous path (one blocking RPC per op): it
anchors the machine-relative ``pipelined_speedup`` — best pipelined
throughput over best synchronous throughput — which is what the CI
``--check`` gate compares against the checked-in baseline (ratios
transfer across machines; absolute ops/s do not).

Pipelined points write through :class:`~repro.core.client.ClientPipeline`
(auto-batching into ``UpsertBatchRequest``, up to ``depth`` batches in
flight) against a cluster running WAL group commit, so one fsync and
one wire round-trip amortise over many acks.

These are *real seconds on whatever machine runs the bench*, not the
simulator's modelled seconds: use them to track live-runtime overhead
across changes, not to reproduce the paper's figures (that is the
simulator's job).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import platform
import sys
import tempfile
import time

from repro.core.client import ClientPipeline
from repro.core.config import CooLSMConfig
from repro.core.history import History

from repro.live.harness import ClientPool, LocalCluster, localhost_spec
from repro.live.node import LiveSpec

from .metrics import LatencySummary, throughput

#: Synchronous point reads per client, probed AFTER the write phase
#: drains: the write sweep saturates the write path without a blocking
#: read serialising the pipeline, and the probe still reports read
#: latency (and verifies the writes landed) at every point.
READ_PROBES = 50
#: Default sweep shape: every client count at every pipelining depth
#: (0 = the synchronous one-RPC-per-op reference path).
DEFAULT_CLIENTS = (1, 2, 4, 8, 16)
DEFAULT_DEPTHS = (0, 4, 16)
DEFAULT_MAX_BATCH = 128


def _sync_workload(client, rng, key_range: int, ops: int, samples: dict):
    """Depth 0: one blocking RPC per upsert (the pre-pipelining path)."""
    for _ in range(ops):
        key = str(rng.randrange(key_range)).encode()
        started = time.perf_counter()
        yield from client.upsert(key, b"v" + key)
        samples["upsert"].append(time.perf_counter() - started)
    return ops


def _pipelined_workload(
    client, rng, key_range: int, ops: int, samples: dict, max_batch: int, depth: int
):
    """Writes through the auto-batching pipeline; per-op latency is
    submit -> ack of the covering batch, so queueing delay inside the
    window is charged to the op (the honest pipelining tradeoff)."""
    pipeline = ClientPipeline(client, max_batch=max_batch, depth=depth)
    for _ in range(ops):
        key = str(rng.randrange(key_range)).encode()
        yield from pipeline.put(key, b"v" + key)
    yield from pipeline.drain()
    samples["upsert"].extend(pipeline.latencies)
    return ops


def _read_probe(client, rng, key_range: int, samples: dict):
    """Post-drain synchronous reads: latency under a quiescent cluster
    plus a spot-check that the batched writes are actually readable."""
    for _ in range(READ_PROBES):
        key = str(rng.randrange(key_range)).encode()
        started = time.perf_counter()
        value = yield from client.read(key)
        samples["read"].append(time.perf_counter() - started)
        if value is not None and value != b"v" + key:
            raise AssertionError(f"read {key!r} returned foreign value {value!r}")
    return READ_PROBES


async def _drive(
    spec: LiveSpec,
    num_clients: int,
    ops_per_client: int,
    seed: int,
    max_batch: int,
    depth: int,
):
    import random

    samples: dict[str, list[float]] = {"upsert": [], "read": []}
    history = History()
    async with ClientPool(spec, num_clients=num_clients, history=history) as pool:
        started = time.perf_counter()
        workloads = []
        for index, client in enumerate(pool.clients):
            rng = random.Random(seed + index)
            if depth > 0:
                workload = _pipelined_workload(
                    client, rng, spec.config.key_range, ops_per_client,
                    samples, max_batch, depth,
                )
            else:
                workload = _sync_workload(
                    client, rng, spec.config.key_range, ops_per_client, samples
                )
            workloads.append(pool.run(workload, f"bench-{index}"))
        await asyncio.gather(*workloads)
        elapsed = time.perf_counter() - started
        # Read latency is probed after the write phase drains, outside
        # the timed window (the sweep's throughput is the write path's).
        await asyncio.gather(
            *(
                pool.run(
                    _read_probe(
                        client, random.Random(seed + 7_000 + i),
                        spec.config.key_range, samples,
                    ),
                    f"probe-{i}",
                )
                for i, client in enumerate(pool.clients[:num_clients])
            )
        )
    return samples, elapsed, len(history)


def _latency_doc(summary: LatencySummary) -> dict:
    return {
        "p50": round(summary.ms("p50"), 3),
        "p99": round(summary.ms("p99"), 3),
        "p999": round(summary.ms("p999"), 3),
        "mean": round(summary.ms("mean"), 3),
        "count": summary.count,
    }


def run(
    client_counts: list[int] | None = None,
    ops_per_client: int = 400,
    seed: int = 0,
    depths: list[int] | None = None,
    max_batch: int = DEFAULT_MAX_BATCH,
) -> dict:
    """Run the saturation sweep; returns the BENCH_live.json document."""
    client_counts = list(client_counts or DEFAULT_CLIENTS)
    depths = list(depths if depths is not None else DEFAULT_DEPTHS)
    config = dataclasses.replace(
        CooLSMConfig().scaled_down(10), wal_group_commit=True
    )
    points = []
    for depth in depths:
        for num_clients in client_counts:
            spec = localhost_spec(
                1, 2, 1, num_clients=max(num_clients, 1), config=config, seed=seed
            )
            with tempfile.TemporaryDirectory(prefix="coolsm-live-bench-") as work:
                with LocalCluster(spec, work) as cluster:
                    cluster.wait_ready()
                    samples, elapsed, recorded = asyncio.run(
                        _drive(
                            spec, num_clients, ops_per_client, seed, max_batch, depth
                        )
                    )
                    exit_codes = cluster.stop()
            total_ops = num_clients * ops_per_client
            points.append(
                {
                    "clients": num_clients,
                    "depth": depth,
                    "max_batch": max_batch if depth > 0 else 1,
                    "ops": total_ops,
                    "recorded_ops": recorded,
                    "elapsed_s": round(elapsed, 4),
                    "throughput_ops_s": round(throughput(total_ops, elapsed), 1),
                    "upsert_ms": _latency_doc(
                        LatencySummary.from_samples(samples["upsert"])
                    ),
                    "read_ms": _latency_doc(
                        LatencySummary.from_samples(samples["read"])
                    ),
                    "drained_exit_codes": exit_codes,
                }
            )
    best = max(points, key=lambda p: p["throughput_ops_s"])
    sync_points = [p for p in points if p["depth"] == 0]
    sync_best = (
        max(p["throughput_ops_s"] for p in sync_points) if sync_points else None
    )
    return {
        "bench": "live",
        "topology": {"ingestors": 1, "compactors": 2, "readers": 1},
        "ops_per_client": ops_per_client,
        "read_probes": READ_PROBES,
        "seed": seed,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "sweep": {"clients": client_counts, "depths": depths, "max_batch": max_batch},
        "wal_group_commit": {
            "enabled": config.wal_group_commit,
            "max_batch": config.group_commit_max_batch,
            "max_delay": config.group_commit_max_delay,
        },
        "points": points,
        "best": {
            "clients": best["clients"],
            "depth": best["depth"],
            "throughput_ops_s": best["throughput_ops_s"],
        },
        "sync_baseline_ops_s": sync_best,
        "pipelined_speedup": (
            round(best["throughput_ops_s"] / sync_best, 2)
            if sync_best
            else None
        ),
    }


def check_regression(
    current: dict, baseline: dict | None, max_regression: float = 2.0
) -> list[str]:
    """Failures (empty when healthy).  Correctness is absolute — every
    node must have drained cleanly at every point; speed is the
    machine-relative ``pipelined_speedup`` (best pipelined / best
    synchronous throughput on the SAME machine) vs the baseline's, so
    the gate travels across hardware."""
    failures: list[str] = []
    for point in current["points"]:
        if any(code != 0 for code in point["drained_exit_codes"].values()):
            failures.append(
                f"clients={point['clients']} depth={point['depth']}: "
                f"non-zero drain exits {point['drained_exit_codes']}"
            )
    if baseline is not None and _comparable(current, baseline):
        base = baseline.get("pipelined_speedup") or 0.0
        cur = current.get("pipelined_speedup") or 0.0
        if base > 0 and cur < base / max_regression:
            failures.append(
                f"pipelined_speedup regressed {base:.2f}x -> {cur:.2f}x "
                f"(allowed factor {max_regression}x)"
            )
    return failures


def _comparable(current: dict, baseline: dict) -> bool:
    """Speedups only compare between runs of the same sweep shape."""
    keys = ("sweep", "topology", "ops_per_client", "read_probes")
    return all(current.get(k) == baseline.get(k) for k in keys)


def run_and_report(
    out: str = "BENCH_live.json",
    client_counts: list[int] | None = None,
    ops_per_client: int = 400,
    seed: int = 0,
    depths: list[int] | None = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    check: str | None = None,
    max_regression: float = 2.0,
) -> int:
    """CLI entrypoint: run, print a table, write JSON, gate vs baseline."""
    document = run(client_counts, ops_per_client, seed, depths, max_batch)
    print(
        f"live bench — {document['topology']} — {ops_per_client} ops/client, "
        f"cpus={document['cpus']}, group_commit="
        f"{document['wal_group_commit']['enabled']}"
    )
    header = (
        f"{'clients':>8} {'depth':>6} {'thru ops/s':>11} {'upsert p50':>11} "
        f"{'upsert p99':>11} {'p999':>9} {'read p50':>9} {'read p99':>9}"
    )
    print(header)
    for point in document["points"]:
        print(
            f"{point['clients']:>8} {point['depth']:>6} "
            f"{point['throughput_ops_s']:>11} "
            f"{point['upsert_ms']['p50']:>10.2f}ms {point['upsert_ms']['p99']:>10.2f}ms "
            f"{point['upsert_ms']['p999']:>8.2f}ms "
            f"{point['read_ms']['p50']:>8.2f}ms {point['read_ms']['p99']:>8.2f}ms"
        )
    best = document["best"]
    print(
        f"best: {best['throughput_ops_s']} ops/s at clients={best['clients']} "
        f"depth={best['depth']} (sync baseline {document['sync_baseline_ops_s']} "
        f"ops/s, speedup {document['pipelined_speedup']}x)"
    )
    with open(out, "w") as sink:
        json.dump(document, sink, indent=2)
        sink.write("\n")
    print(f"wrote {out}")
    baseline = None
    if check is not None:
        with open(check) as source:
            baseline = json.load(source)
    failures = check_regression(document, baseline, max_regression)
    for failure in failures:
        print(f"  !! {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_and_report())
