"""Benchmark crash recovery of a durable node (``repro.cli recovery-bench``).

Launches a 1 Ingestor + 1 Compactor cluster with ``--data-dir``,
drives ``ops`` acknowledged upserts, SIGKILLs the Ingestor mid-flight
state and times the restart: process launch, manifest load, sstable
reads, WAL replay, forward respawn — everything up to the node
accepting connections again.  A post-recovery readback of every acked
key is the absolute gate (zero acked-write loss); wall-clock numbers
land in ``BENCH_recovery.json``.

Like :mod:`repro.bench.read_path`, regression checking is ratio-based
so heterogeneous CI machines do not flake: the gated quantity is
*this* machine's recovery-seconds-per-ingest-second, compared against
the same ratio in the baseline document.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import re
import sys
import tempfile
import time
from dataclasses import replace

from repro.core.config import CooLSMConfig
from repro.core.history import History
from repro.sim.rpc import RemoteError, RpcTimeout

from repro.live.harness import ClientPool, LocalCluster, localhost_spec

_RECOVERED = re.compile(
    r"RECOVERED \S+ version=(\d+) tables=(\d+) wal_entries=(\d+)"
)


def _dir_bytes(root) -> int:
    total = 0
    for base, __, names in os.walk(root):
        for name in names:
            total += os.path.getsize(os.path.join(base, name))
    return total


def _writer(client, ops: int, key_range: int, acked: dict):
    for index in range(ops):
        key = str(index % key_range).encode()
        value = b"rb-%d" % index
        yield from client.upsert(key, value)
        acked[key] = value
    return len(acked)


def _reader(client, acked: dict):
    lost = 0
    for key, expected in sorted(acked.items()):
        attempts = 0
        while True:
            try:
                got = yield from client.read(key)
            except (RpcTimeout, RemoteError):
                attempts += 1
                if attempts >= 10:
                    raise
                continue
            break
        lost += got != expected
    return lost


def run(ops: int = 600, seed: int = 0) -> dict:
    """Run the recovery benchmark; returns the BENCH_recovery.json doc."""
    config = replace(
        CooLSMConfig().scaled_down(10), ack_timeout=2.0, client_timeout=2.0
    )
    spec = localhost_spec(1, 1, 0, num_clients=2, config=config, seed=seed)
    key_range = max(ops // 4, 20)
    acked: dict[bytes, bytes] = {}
    with tempfile.TemporaryDirectory(prefix="coolsm-recovery-bench-") as work:
        data_dir = os.path.join(work, "data")
        with LocalCluster(spec, work, data_dir=data_dir) as cluster:
            cluster.wait_ready()

            async def ingest():
                async with ClientPool(spec, 1, history=History()) as pool:
                    return await pool.run(
                        _writer(pool.clients[0], ops, key_range, acked), "ingest"
                    )

            ingest_started = time.perf_counter()
            asyncio.run(ingest())
            ingest_s = time.perf_counter() - ingest_started

            data_bytes = _dir_bytes(os.path.join(data_dir, "ingestor-0"))
            cluster.kill9("ingestor-0")
            recovery_started = time.perf_counter()
            cluster.restart("ingestor-0")
            recovery_s = time.perf_counter() - recovery_started

            async def readback():
                async with ClientPool(spec, 1, history=History()) as pool:
                    return await pool.run(
                        _reader(pool.clients[0], acked), "readback"
                    )

            lost = asyncio.run(readback())
            exit_codes = cluster.stop()
        log = cluster.log_path("ingestor-0").read_text()
    match = _RECOVERED.search(log)
    return {
        "bench": "recovery",
        "config": {
            "topology": {"ingestors": 1, "compactors": 1, "readers": 0},
            "ops": ops,
            "key_range": key_range,
            "seed": seed,
        },
        "python": platform.python_version(),
        "acked_writes": len(acked),
        "lost_writes": lost,
        "recovered": {
            "manifest_version": int(match.group(1)) if match else None,
            "tables": int(match.group(2)) if match else None,
            "wal_entries": int(match.group(3)) if match else None,
        },
        "ingest_s": round(ingest_s, 4),
        "recovery_s": round(recovery_s, 4),
        "recovery_per_ingest": round(recovery_s / ingest_s, 4),
        "data_bytes": data_bytes,
        "recovery_mb_s": round(
            data_bytes / recovery_s / 1e6 if recovery_s else 0.0, 3
        ),
        "drained_exit_codes": exit_codes,
    }


def check_regression(
    current: dict, baseline: dict | None, max_regression: float = 2.0
) -> list[str]:
    """Failures (empty when healthy).  Correctness is absolute; speed
    is the machine-relative recovery/ingest ratio vs the baseline's."""
    failures: list[str] = []
    if current["lost_writes"]:
        failures.append(f"{current['lost_writes']} acked writes lost across SIGKILL")
    if current["recovered"]["manifest_version"] is None:
        failures.append("restarted Ingestor never logged a RECOVERED line")
    if any(code != 0 for code in current["drained_exit_codes"].values()):
        failures.append(f"non-zero drain exits: {current['drained_exit_codes']}")
    if baseline is not None and _comparable(current, baseline):
        base = baseline.get("recovery_per_ingest", 0.0)
        cur = current["recovery_per_ingest"]
        if base > 0 and cur > base * max_regression:
            failures.append(
                f"recovery_per_ingest regressed {base:.3f} -> {cur:.3f} "
                f"(allowed factor {max_regression}x)"
            )
    return failures


def _comparable(current: dict, baseline: dict) -> bool:
    """Ratios only compare between runs of the same workload shape."""
    return current.get("config") == baseline.get("config")


def run_and_report(
    out: str = "BENCH_recovery.json",
    ops: int = 600,
    seed: int = 0,
    check: str | None = None,
    max_regression: float = 2.0,
) -> int:
    """CLI entrypoint: run, print, write JSON, gate against a baseline."""
    document = run(ops=ops, seed=seed)
    recovered = document["recovered"]
    print(
        f"recovery bench — {document['acked_writes']} acked writes, "
        f"{document['data_bytes']} durable bytes"
    )
    print(
        f"  ingest {document['ingest_s']:.2f}s  "
        f"recovery {document['recovery_s']:.2f}s  "
        f"(ratio {document['recovery_per_ingest']:.3f}, "
        f"{document['recovery_mb_s']:.2f} MB/s)"
    )
    print(
        f"  recovered manifest v{recovered['manifest_version']} "
        f"tables={recovered['tables']} wal_entries={recovered['wal_entries']} "
        f"lost={document['lost_writes']}"
    )
    with open(out, "w") as sink:
        json.dump(document, sink, indent=2)
        sink.write("\n")
    print(f"wrote {out}")
    baseline = None
    if check is not None:
        with open(check) as source:
            baseline = json.load(source)
    failures = check_regression(document, baseline, max_regression)
    for failure in failures:
        print(f"  !! {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_and_report())
