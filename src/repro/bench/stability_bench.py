"""Long-run write-stability benchmark (``repro.cli stability-bench``).

Luo & Carey ("On Performance Stability in LSM-based Storage Systems")
argue that LSM write benchmarks reporting *means* hide the failure mode
that matters: periodic write stalls when compaction debt catches up
with the ingest rate.  This bench measures stability the way they do —
percentiles **over time windows**, not aggregates — and uses it to
prove the flow-control subsystem (:mod:`repro.core.flow`) earns its
keep:

* **sim phase** — the identical open-loop write schedule (same keys,
  same per-op intended issue times: equal offered load, deliberately
  above compaction capacity) is driven twice through a simulated
  1 Ingestor + 2 Compactor cluster: once with ``flow_control=False``
  and once with ``flow_control=True``.  Latency is measured against
  each op's *intended* issue time (coordinated omission correction), so
  a stall shows up in every op it delays, not just the one that hit it.
  The document records per-window throughput/p50/p99/p999 plus the
  Ingestor's stall ledger, and the gate requires flow-on to beat
  flow-off on both the worst-window p999/overall-p50 ratio and total
  stall time.  The simulator is deterministic, so this comparison is
  exactly reproducible and trivially machine-relative.
* **live phase** — a real multi-process durable cluster over localhost
  TCP runs a continuous retry-until-ack writer with flow control
  enabled; the document records wall-clock windows and the gate is zero
  acked-write loss (admission control must shed *requests*, never
  acked data).

Gates follow the repo's convention (:mod:`repro.bench.chaos_bench`):
correctness and the on-beats-off comparison are absolute within one
run; cross-run speed comparisons against a baseline document are
ratio-based so heterogeneous CI machines do not flake.
"""

from __future__ import annotations

import asyncio
import json
import math
import platform
import sys
import tempfile
import time
from dataclasses import replace

from repro.core import ClusterSpec, CooLSMConfig, build_cluster
from repro.core.history import History
from repro.sim.rpc import RemoteError, RpcTimeout

#: Sim-phase window width (simulated seconds).
SIM_WINDOW_S = 0.2
#: Live-phase window width (wall seconds).
LIVE_WINDOW_S = 0.5
#: Windows with fewer acks than this have meaningless p999s; they are
#: reported but excluded from the worst-window scan.
MIN_WINDOW_OPS = 20

#: Sim-phase cluster: aggressive thresholds so a few thousand writes
#: produce many minor compactions, forwards, and inflight-ack waits —
#: the stall mechanics — in a fraction of a simulated second per window.
SIM_CONFIG = CooLSMConfig(
    key_range=4_096,
    memtable_entries=8,
    sstable_entries=8,
    l0_threshold=2,
    l1_threshold=2,
    l2_threshold=4,
    l3_threshold=16,
    max_inflight_tables=4,
    delta=0.002,
    ack_timeout=0.5,
    client_timeout=1.0,
)
#: Open-loop writers in the sim phase.  Each writer issues bursts of
#: ``SIM_BURST_OPS`` at ``SIM_BURST_PACE_S`` (within-burst the fleet
#: offers ~20k ops/s, far above what the 30us/entry merge pipeline
#: absorbs at these thresholds), separated by ``SIM_GAP_S`` idle gaps
#: that bring the *average* offered load back under capacity.  Bursty
#: above-capacity load is where flow control earns its keep: without it
#: every burst lands as compaction debt and pops as a stall; with it
#: the burst is spread into the gap.
SIM_CLIENTS = 4
SIM_BURST_OPS = 100
SIM_BURST_PACE_S = 0.0002
SIM_GAP_S = 0.1


def _percentile(samples: list[float], fraction: float) -> float | None:
    """Nearest-rank percentile; None on an empty sample set."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = max(0, math.ceil(fraction * len(ordered)) - 1)
    return round(ordered[min(index, len(ordered) - 1)], 6)


def _window_stats(
    acks: list[tuple[float, float]], window_s: float
) -> list[dict]:
    """Bucket (ack_time, latency) pairs into fixed-width windows.

    Returns one dict per window from the first ack to the last, with
    throughput and the latency percentiles the stability story needs.
    """
    if not acks:
        return []
    ordered = sorted(acks)
    start = ordered[0][0]
    windows: list[dict] = []
    bucket: list[float] = []
    edge = start + window_s
    for at, latency in ordered:
        while at >= edge:
            windows.append(_one_window(len(windows), bucket, window_s))
            bucket = []
            edge += window_s
        bucket.append(latency)
    windows.append(_one_window(len(windows), bucket, window_s))
    return windows


def _one_window(index: int, latencies: list[float], window_s: float) -> dict:
    return {
        "window": index,
        "ops": len(latencies),
        "throughput": round(len(latencies) / window_s, 2),
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
        "p999_s": _percentile(latencies, 0.999),
    }


def _summarise(acks: list[tuple[float, float]], window_s: float) -> dict:
    """Windows + the headline stability numbers derived from them."""
    windows = _window_stats(acks, window_s)
    latencies = [latency for __, latency in acks]
    full = [w for w in windows if w["ops"] >= MIN_WINDOW_OPS]
    worst_p999 = max((w["p999_s"] for w in full), default=None)
    overall_p50 = _percentile(latencies, 0.50)
    tail_ratio = None
    if worst_p999 is not None and overall_p50:
        tail_ratio = round(worst_p999 / overall_p50, 3)
    return {
        "acked_ops": len(acks),
        "duration_s": round(acks[-1][0] - acks[0][0], 4) if acks else 0.0,
        "overall_p50_s": overall_p50,
        "overall_p99_s": _percentile(latencies, 0.99),
        "overall_p999_s": _percentile(latencies, 0.999),
        "worst_window_p999_s": worst_p999,
        "tail_ratio": tail_ratio,
        "windows": windows,
    }


# ----------------------------------------------------------------------
# Sim phase: flow-off vs flow-on at equal offered load
# ----------------------------------------------------------------------
def _run_sim_phase(flow_control: bool, ops: int, seed: int) -> dict:
    """One deterministic simulated run of the fixed write schedule."""
    config = replace(SIM_CONFIG, flow_control=flow_control)
    cluster = build_cluster(
        ClusterSpec(config=config, num_ingestors=1, num_compactors=2, seed=seed)
    )
    kernel = cluster.kernel
    clients = [
        cluster.add_client(colocate_with="ingestor-0", record_history=False)
        for __ in range(SIM_CLIENTS)
    ]
    per_client = max(1, ops // SIM_CLIENTS)
    acks: list[tuple[float, float]] = []

    def writer(client, index):
        def gen():
            start = kernel.now
            burst_span = SIM_BURST_OPS * SIM_BURST_PACE_S + SIM_GAP_S
            for i in range(per_client):
                # Open-loop schedule: latency is measured against the
                # op's intended issue time, so queueing delay caused by
                # a stall is charged to every op it pushes back.
                intended = (
                    start
                    + (i // SIM_BURST_OPS) * burst_span
                    + (i % SIM_BURST_OPS) * SIM_BURST_PACE_S
                )
                if kernel.now < intended:
                    yield kernel.timeout(intended - kernel.now)
                key = (index * per_client + i) % config.key_range
                value = b"st-%d-%d" % (index, i)
                while True:
                    try:
                        yield from client.upsert(key, value)
                        break
                    except (RpcTimeout, RemoteError):
                        continue
                acks.append((kernel.now, kernel.now - intended))

        return gen

    processes = [
        kernel.spawn(writer(client, i)(), f"stability-writer-{i}")
        for i, client in enumerate(clients)
    ]

    def barrier():
        yield kernel.all_of(processes)

    cluster.run_process(barrier())
    cluster.run()

    admission = cluster.ingestors[0].admission
    summary = _summarise(acks, SIM_WINDOW_S)
    summary.update(
        {
            "flow_control": flow_control,
            "offered_ops": per_client * SIM_CLIENTS,
            "stall_events": len(admission.stall_events),
            "stall_time_s": round(admission.stall_time, 6),
            "admission_rejections": admission.rejected,
            "admission_delays": admission.delayed,
            "admission_delay_time_s": round(admission.delay_time, 6),
            "backpressure_retries": sum(
                client.stats.backpressure_retries for client in clients
            ),
        }
    )
    return summary


# ----------------------------------------------------------------------
# Live phase: real sockets, flow control on, zero acked-write loss
# ----------------------------------------------------------------------
def _run_live_phase(seconds: float, seed: int) -> dict:
    """Write-heavy load on a real durable cluster with flow control on."""
    from repro.live.harness import ClientPool, LocalCluster, localhost_spec
    from repro.sim.kernel import SimError

    config = replace(
        CooLSMConfig().scaled_down(10),
        ack_timeout=1.0,
        client_timeout=1.5,
        flow_control=True,
    )
    spec = localhost_spec(1, 2, 0, num_clients=2, config=config, seed=seed)
    acked: dict[bytes, bytes] = {}
    acks: list[tuple[float, float]] = []
    stop = {"flag": False}
    retries = {"count": 0}

    def writer(client):
        index = 0
        while not stop["flag"]:
            key = index % config.key_range
            value = b"stab-%d" % index
            op_started = time.perf_counter()
            while True:
                try:
                    yield from client.upsert(key, value)
                    break
                except SimError:
                    retries["count"] += 1
                    if stop["flag"]:
                        return index
            acked[str(key).encode()] = value
            acks.append((time.perf_counter(), time.perf_counter() - op_started))
            index += 1
        return index

    def read_all(client):
        lost = 0
        for key, expected in sorted(acked.items()):
            got = None
            for __ in range(10):
                try:
                    got = yield from client.read(int(key))
                    break
                except SimError:
                    continue
            lost += got != expected
        return lost

    with tempfile.TemporaryDirectory(prefix="coolsm-stability-bench-") as work:
        with LocalCluster(spec, work, data_dir=f"{work}/data") as cluster:
            cluster.wait_ready()

            async def drive():
                async with ClientPool(spec, 1, history=History()) as pool:
                    load = asyncio.ensure_future(
                        pool.run(writer(pool.clients[0]), "stability-load")
                    )
                    await asyncio.sleep(seconds)
                    stop["flag"] = True
                    total_ops = await load
                    lost = await pool.run(read_all(pool.clients[0]), "readback")
                    bp = pool.clients[0].stats.backpressure_retries
                return total_ops, lost, bp

            total_ops, lost, bp = asyncio.run(drive())
            cluster.stop()

    summary = _summarise(acks, LIVE_WINDOW_S)
    summary.update(
        {
            "flow_control": True,
            "seconds": seconds,
            "total_acked_ops": total_ops,
            "acked_keys": len(acked),
            "client_retries": retries["count"],
            "backpressure_retries": bp,
            "lost_writes": lost,
        }
    )
    return summary


# ----------------------------------------------------------------------
# Document, gates, CLI entry
# ----------------------------------------------------------------------
def run(ops: int = 12000, seed: int = 0, live_seconds: float = 4.0) -> dict:
    """Run both phases; returns the BENCH_stability.json document.

    ``live_seconds <= 0`` skips the live phase (pure-sim smoke).
    """
    flow_off = _run_sim_phase(False, ops, seed)
    flow_on = _run_sim_phase(True, ops, seed)
    live = _run_live_phase(live_seconds, seed) if live_seconds > 0 else None
    return {
        "bench": "stability",
        "config": {
            "topology": {"ingestors": 1, "compactors": 2, "readers": 0},
            "sim_ops": ops,
            "sim_clients": SIM_CLIENTS,
            "sim_burst_ops": SIM_BURST_OPS,
            "sim_burst_pace_s": SIM_BURST_PACE_S,
            "sim_gap_s": SIM_GAP_S,
            "sim_window_s": SIM_WINDOW_S,
            "live_window_s": LIVE_WINDOW_S,
            "seed": seed,
        },
        "python": platform.python_version(),
        "sim": {"flow_off": flow_off, "flow_on": flow_on},
        "live": live,
    }


def check_regression(
    current: dict, baseline: dict | None, max_regression: float = 2.5
) -> list[str]:
    """Failures (empty when healthy).

    The flow-on-beats-flow-off comparison and zero-loss are absolute —
    both sides were measured in THIS run at equal offered load, so no
    machine normalisation is needed.  The baseline document only gates
    the flow-on tail ratio against genuine cross-run degradation.
    """
    failures: list[str] = []
    off = current["sim"]["flow_off"]
    on = current["sim"]["flow_on"]
    if on["offered_ops"] != off["offered_ops"]:
        failures.append(
            f"offered load differs between runs: "
            f"{off['offered_ops']} vs {on['offered_ops']}"
        )
    if on["acked_ops"] != on["offered_ops"]:
        failures.append(
            f"flow-on run dropped writes: acked {on['acked_ops']} "
            f"of {on['offered_ops']} (admission must delay, not lose)"
        )
    if off["tail_ratio"] is None or on["tail_ratio"] is None:
        failures.append("too few acks per window to compute tail ratios")
    elif on["tail_ratio"] >= off["tail_ratio"]:
        failures.append(
            f"flow control did not improve worst-window p999/p50: "
            f"on {on['tail_ratio']} vs off {off['tail_ratio']}"
        )
    if on["stall_time_s"] > off["stall_time_s"]:
        failures.append(
            f"flow control increased total stall time: "
            f"on {on['stall_time_s']}s vs off {off['stall_time_s']}s"
        )
    live = current.get("live")
    if live is not None and live["lost_writes"]:
        failures.append(f"{live['lost_writes']} acked writes lost in live phase")
    if baseline is not None and _comparable(current, baseline):
        base_on = baseline["sim"]["flow_on"]
        if base_on.get("tail_ratio") and on.get("tail_ratio"):
            if on["tail_ratio"] > base_on["tail_ratio"] * max_regression:
                failures.append(
                    f"flow-on tail ratio regressed "
                    f"{base_on['tail_ratio']} -> {on['tail_ratio']} "
                    f"(allowed factor {max_regression}x)"
                )
    return failures


def _comparable(current: dict, baseline: dict) -> bool:
    """Sim numbers only compare between runs of the same schedule."""
    return current.get("config") == baseline.get("config")


def run_and_report(
    out: str = "BENCH_stability.json",
    ops: int = 12000,
    seed: int = 0,
    live_seconds: float = 4.0,
    check: str | None = None,
    max_regression: float = 2.5,
) -> int:
    """CLI entrypoint: run, print, write JSON, gate against a baseline."""
    document = run(ops=ops, seed=seed, live_seconds=live_seconds)
    for name in ("flow_off", "flow_on"):
        phase = document["sim"][name]
        print(
            f"sim {name:<8} {phase['acked_ops']} acks in "
            f"{phase['duration_s']}s — p50 {phase['overall_p50_s']}s, "
            f"worst-window p999 {phase['worst_window_p999_s']}s "
            f"(tail ratio {phase['tail_ratio']}), "
            f"stalls {phase['stall_events']} for {phase['stall_time_s']}s, "
            f"rejected {phase['admission_rejections']}"
        )
    live = document["live"]
    if live is not None:
        print(
            f"live flow_on  {live['total_acked_ops']} acks in "
            f"{live['seconds']}s — p50 {live['overall_p50_s']}s, "
            f"worst-window p999 {live['worst_window_p999_s']}s, "
            f"lost={live['lost_writes']}"
        )
    with open(out, "w") as sink:
        json.dump(document, sink, indent=2)
        sink.write("\n")
    print(f"wrote {out}")
    baseline = None
    if check is not None:
        with open(check) as source:
            baseline = json.load(source)
    failures = check_regression(document, baseline, max_regression)
    for failure in failures:
        print(f"  !! {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_and_report())
