"""The experiment runner shared by every table/figure reproduction.

An experiment builds a cluster from a :class:`~repro.core.ClusterSpec`,
drives one or more client coroutines, and collects an
:class:`ExperimentResult` — per-kind latency summaries, throughput over
the drivers' wall-span (simulated), and node-side statistics such as
compaction timings.

Scaled-down defaults: the experiments run the paper's configurations
shrunk by :data:`SCALE` (10x) so a full benchmark pass finishes in
minutes on a laptop while preserving the paper's level-size ratios and
therefore the dynamics.  Pass ``scale=1`` for paper-sized runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import Cluster, ClusterSpec, CooLSMConfig, build_cluster

from .metrics import LatencySummary, throughput

#: Default shrink factor for experiment configurations.
SCALE = 10


def scaled_config(key_range: int, scale: int = SCALE, **overrides) -> CooLSMConfig:
    """The paper's configuration for ``key_range``, shrunk by ``scale``."""
    config = CooLSMConfig.for_key_range(key_range)
    if scale > 1:
        config = config.scaled_down(scale)
    if overrides:
        config = replace(config, **overrides)
    return config


@dataclass(slots=True)
class ExperimentResult:
    """Everything an experiment measured."""

    label: str
    duration: float  # simulated seconds spanned by the drivers
    ops: int
    writes: LatencySummary
    reads: LatencySummary
    backup_reads: LatencySummary
    extras: dict = field(default_factory=dict)

    @property
    def write_throughput(self) -> float:
        return throughput(self.writes.count, self.duration)

    @property
    def ops_throughput(self) -> float:
        return throughput(self.ops, self.duration)


def drive(cluster: Cluster, drivers: list, label: str = "") -> ExperimentResult:
    """Spawn all driver coroutines, wait for them, and collect results.

    ``drivers`` is a list of generator objects (typically workload
    coroutines bound to clients).  Throughput is measured over the span
    from the first spawn to the last completion — pending background
    timers (RPC timeout timers etc.) do not inflate the duration.
    """
    kernel = cluster.kernel
    started = kernel.now
    processes = [kernel.spawn(driver) for driver in drivers]

    def barrier():
        yield kernel.all_of(processes)
        return kernel.now

    ended = cluster.run_process(barrier(), name="bench-barrier")
    write_samples: list[float] = []
    read_samples: list[float] = []
    backup_samples: list[float] = []
    for client in cluster.clients:
        write_samples.extend(client.stats.all("write"))
        read_samples.extend(client.stats.all("read"))
        backup_samples.extend(client.stats.all("backup_read"))
    total_ops = len(write_samples) + len(read_samples) + len(backup_samples)
    return ExperimentResult(
        label=label,
        duration=max(ended - started, 1e-12),
        ops=total_ops,
        writes=LatencySummary.from_samples(write_samples),
        reads=LatencySummary.from_samples(read_samples),
        backup_reads=LatencySummary.from_samples(backup_samples),
    )


def compaction_summary(cluster: Cluster) -> dict[int, LatencySummary]:
    """Per-level (paper numbering: 2 and 3) compaction-time summaries
    across all Compactors (drives Figure 4)."""
    by_level: dict[int, list[float]] = {2: [], 3: []}
    for compactor in cluster.compactors:
        for timing in compactor.stats.compactions:
            by_level.setdefault(timing.level, []).append(timing.duration)
    return {
        level: LatencySummary.from_samples(samples)
        for level, samples in by_level.items()
    }


def build(spec: ClusterSpec) -> Cluster:
    """Alias of :func:`repro.core.build_cluster` for experiment modules."""
    return build_cluster(spec)
