"""Read-path micro-benchmark: streaming scans, fence index, read cache.

Measures the monolithic :class:`~repro.lsm.tree.LSMTree` read path
against a faithful re-implementation of the *pre-overhaul* path (linear
level probing, per-table list materialisation on scans, no cache) and
emits a machine-readable report — the checked-in
``BENCH_read_path.json`` at the repository root.

Because both paths run in the same process on the same tree, the
numbers that matter are **ratios** (speedups), which are stable across
machines; absolute latencies are recorded for context only.  The
regression check therefore compares speedups, never wall-clock.

Run::

    PYTHONPATH=src python -m repro.bench.read_path --out BENCH_read_path.json
    PYTHONPATH=src python -m repro.bench.read_path --smoke \
        --check BENCH_read_path.json

The ``--check`` mode re-runs the benchmark and fails (exit 1) if an
invariant breaks (point gets not bit-identical, YCSB-C hit rate below
50%) or if a speedup degraded by more than ``--max-regression`` versus
the baseline file.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Iterator

from repro.lsm.entry import Entry, encode_key
from repro.lsm.iterators import dedup_newest, k_way_merge
from repro.lsm.tree import LSMConfig, LSMTree
from repro.workloads.distributions import Zipfian

from .metrics import LatencySummary, cache_summary

#: Invariant floors (acceptance criteria, not tuning knobs).
MIN_SCAN_SPEEDUP = 2.0
MIN_YCSB_HIT_RATE = 0.5


# ----------------------------------------------------------------------
# Tree construction
# ----------------------------------------------------------------------
def build_tree(
    num_keys: int,
    cache_capacity: int = 4_096,
    cache_policy: str = "lru",
    seed: int = 7,
) -> LSMTree:
    """A populated in-memory tree with a realistic level layout: keys
    are inserted in shuffled order, and the memtable is kept small
    relative to the key count, so flushes and compactions spread the
    data across L0..L3 instead of parking it all in L0."""
    config = LSMConfig(
        memtable_entries=250,
        sstable_entries=100,
        cache_capacity=cache_capacity,
        cache_policy=cache_policy,
    )
    tree = LSMTree(config)
    keys = list(range(num_keys))
    random.Random(seed).shuffle(keys)
    for key in keys:
        tree.put(key, f"value-{key}".encode())
    return tree


# ----------------------------------------------------------------------
# The legacy read path (pre-overhaul), re-implemented for A/B timing
# ----------------------------------------------------------------------
def legacy_get_entry(tree: LSMTree, key: bytes | str | int) -> Entry | None:
    """The pre-overhaul point lookup: linear probe over every table of
    every level (range-checked), no fence-index bisect, no cache."""
    encoded = encode_key(key)
    best = tree._memtable.get(encoded)
    for table in reversed(tree.manifest.level(0)):
        if not table.key_in_range(encoded):
            continue
        found = table.get(encoded)
        if found is not None and (best is None or found.version > best.version):
            best = found
        if best is not None:
            break
    if best is not None:
        return best
    for level in range(1, tree.manifest.num_levels):
        for table in tree.manifest.level(level):
            if not table.key_in_range(encoded):
                continue
            found = table.get(encoded)
            if found is not None:
                return found
    return None


def legacy_scan(
    tree: LSMTree,
    lo: bytes | str | int | None = None,
    hi: bytes | str | int | None = None,
) -> Iterator[tuple[bytes, bytes]]:
    """The pre-overhaul scan: every overlapping table's slice is
    materialised into a list up front, so even a scan consuming one
    result pays for the whole range in every level."""
    lo_b = encode_key(lo) if lo is not None else None
    hi_b = encode_key(hi) if hi is not None else None
    sources: list = [tree._memtable.range(lo_b, hi_b)]
    for table in reversed(tree.manifest.level(0)):
        sources.append(list(table.scan(lo_b, hi_b)))
    for level in range(1, tree.manifest.num_levels):
        for table in tree.manifest.level(level):
            sources.append(list(table.scan(lo_b, hi_b)))
    for entry in dedup_newest(k_way_merge(sources)):
        if not entry.tombstone:
            yield entry.key, entry.value


# ----------------------------------------------------------------------
# Benchmark stages
# ----------------------------------------------------------------------
def _time_gets(get_fn, keys: list[int]) -> tuple[list[float], list]:
    latencies: list[float] = []
    results = []
    for key in keys:
        start = time.perf_counter()
        results.append(get_fn(key))
        latencies.append(time.perf_counter() - start)
    return latencies, results


def bench_point_gets(tree: LSMTree, num_ops: int, seed: int) -> dict:
    """Zipfian point gets, legacy vs current, plus the bit-identity
    invariant: every lookup must return exactly the same entry."""
    picker = Zipfian(tree.approximate_len() or 1)
    rng = random.Random(seed)
    keys = [picker.pick(rng) for __ in range(num_ops)]
    legacy_lat, legacy_res = _time_gets(lambda k: legacy_get_entry(tree, k), keys)
    new_lat, new_res = _time_gets(tree.get_entry, keys)
    identical = legacy_res == new_res
    legacy = LatencySummary.from_samples(legacy_lat)
    new = LatencySummary.from_samples(new_lat)
    return {
        "ops": num_ops,
        "identical": identical,
        "legacy_p50_us": legacy.p50 * 1e6,
        "legacy_p99_us": legacy.p99 * 1e6,
        "new_p50_us": new.p50 * 1e6,
        "new_p99_us": new.p99 * 1e6,
        "speedup_p50": legacy.p50 / new.p50 if new.p50 else 0.0,
    }


def bench_early_scan(tree: LSMTree, limit: int, num_ops: int, seed: int) -> dict:
    """Scans that stop after ``limit`` results — the case streaming is
    for.  The legacy path materialises every level slice regardless."""
    rng = random.Random(seed)
    num_keys = tree.approximate_len()
    starts = [rng.randrange(max(1, num_keys // 2)) for __ in range(num_ops)]

    def run(scan_fn) -> float:
        begin = time.perf_counter()
        for lo in starts:
            taken = 0
            for __ in scan_fn(lo):
                taken += 1
                if taken >= limit:
                    break
        return time.perf_counter() - begin

    legacy_s = run(lambda lo: legacy_scan(tree, lo))
    new_s = run(lambda lo: tree.scan(lo))
    return {
        "ops": num_ops,
        "limit": limit,
        "legacy_s": legacy_s,
        "new_s": new_s,
        "speedup": legacy_s / new_s if new_s else 0.0,
    }


def bench_full_scan(tree: LSMTree) -> dict:
    """Unbounded scan throughput (streaming should not regress it)."""
    begin = time.perf_counter()
    legacy_count = sum(1 for __ in legacy_scan(tree))
    legacy_s = time.perf_counter() - begin
    begin = time.perf_counter()
    new_count = sum(1 for __ in tree.scan())
    new_s = time.perf_counter() - begin
    return {
        "entries": new_count,
        "identical": legacy_count == new_count,
        "legacy_entries_per_s": legacy_count / legacy_s if legacy_s else 0.0,
        "new_entries_per_s": new_count / new_s if new_s else 0.0,
        "speedup": legacy_s / new_s if new_s else 0.0,
    }


def bench_ycsb_c(tree: LSMTree, num_ops: int, seed: int) -> dict:
    """YCSB workload C (read-only, zipfian): the cache's home turf.
    Counters are reset first so the report reflects only this stage."""
    tree.stats.cache.reset()
    picker = Zipfian(tree.approximate_len() or 1)
    rng = random.Random(seed)
    begin = time.perf_counter()
    for __ in range(num_ops):
        tree.get(picker.pick(rng))
    elapsed = time.perf_counter() - begin
    return {
        "ops": num_ops,
        "ops_per_s": num_ops / elapsed if elapsed else 0.0,
        "cache": cache_summary(tree.stats.cache),
    }


def run_benchmark(
    num_keys: int = 20_000,
    num_ops: int = 2_000,
    scan_limit: int = 10,
    cache_capacity: int = 4_096,
    cache_policy: str = "lru",
    seed: int = 7,
) -> dict:
    """The full report (the shape of ``BENCH_read_path.json``)."""
    tree = build_tree(num_keys, cache_capacity, cache_policy, seed)
    report = {
        "benchmark": "read_path",
        "config": {
            "num_keys": num_keys,
            "num_ops": num_ops,
            "scan_limit": scan_limit,
            "cache_capacity": cache_capacity,
            "cache_policy": cache_policy,
            "seed": seed,
            "python": sys.version.split()[0],
        },
        "levels": [len(tree.manifest.level(i)) for i in range(tree.manifest.num_levels)],
        "point_get": bench_point_gets(tree, num_ops, seed),
        "early_scan": bench_early_scan(tree, scan_limit, max(1, num_ops // 10), seed),
        "full_scan": bench_full_scan(tree),
        "ycsb_c": bench_ycsb_c(tree, num_ops, seed),
    }
    return report


# ----------------------------------------------------------------------
# Regression checking
# ----------------------------------------------------------------------
def check_regression(
    current: dict, baseline: dict | None, max_regression: float = 2.0
) -> list[str]:
    """Failures (empty when healthy).  Invariants are absolute; speed
    comparisons are ratio-vs-ratio so heterogeneous CI machines do not
    flake: a failure means *this* machine's own legacy-vs-new gap
    shrank by more than ``max_regression`` against the baseline's."""
    failures: list[str] = []
    if not current["point_get"]["identical"]:
        failures.append("point gets are not bit-identical to the legacy path")
    if not current["full_scan"]["identical"]:
        failures.append("full scan count differs from the legacy path")
    speedup = current["early_scan"]["speedup"]
    if speedup < MIN_SCAN_SPEEDUP:
        failures.append(
            f"early-terminated scan speedup {speedup:.2f}x < {MIN_SCAN_SPEEDUP}x floor"
        )
    hit_rate = current["ycsb_c"]["cache"]["hit_rate"]
    if hit_rate < MIN_YCSB_HIT_RATE:
        failures.append(
            f"YCSB-C cache hit rate {hit_rate:.2%} < {MIN_YCSB_HIT_RATE:.0%} floor"
        )
    if baseline is not None and _comparable(current, baseline):
        for stage, metric in (("early_scan", "speedup"), ("full_scan", "speedup")):
            base = baseline.get(stage, {}).get(metric, 0.0)
            cur = current[stage][metric]
            if base > 0 and cur < base / max_regression:
                failures.append(
                    f"{stage}.{metric} regressed {base:.2f}x -> {cur:.2f}x "
                    f"(allowed factor {max_regression}x)"
                )
    return failures


def _comparable(current: dict, baseline: dict) -> bool:
    """Speedup ratios are only meaningful between runs of the same
    workload shape (a smoke run against the full baseline is not);
    interpreter version may differ."""

    def shape(report: dict) -> dict:
        config = dict(report.get("config", {}))
        config.pop("python", None)
        return config

    return shape(current) == shape(baseline)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keys", type=int, default=20_000)
    parser.add_argument("--ops", type=int, default=2_000)
    parser.add_argument("--scan-limit", type=int, default=10)
    parser.add_argument("--cache-capacity", type=int, default=4_096)
    parser.add_argument("--cache-policy", choices=("lru", "clock"), default="lru")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny workload for CI smoke runs"
    )
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument(
        "--check", help="baseline JSON to compare speedup ratios against"
    )
    parser.add_argument("--max-regression", type=float, default=2.0)
    args = parser.parse_args(argv)
    if args.smoke:
        args.keys = min(args.keys, 5_000)
        args.ops = min(args.ops, 500)
    report = run_benchmark(
        num_keys=args.keys,
        num_ops=args.ops,
        scan_limit=args.scan_limit,
        cache_capacity=args.cache_capacity,
        cache_policy=args.cache_policy,
        seed=args.seed,
    )
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text + "\n")
    else:
        print(text)
    if args.check:
        with open(args.check, "r", encoding="utf-8") as f:
            baseline = json.load(f)
        failures = check_regression(report, baseline, args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
