"""Latency/throughput statistics for the evaluation harness.

Table II reports percentiles (0.99 / 0.999 / 0.9999), average, maximum,
and an operations-over-threshold count; every experiment module reuses
:class:`LatencySummary` so the numbers are computed one way.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Exact (sorted-sample) latency statistics, seconds."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p99: float
    p999: float
    p9999: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary":
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=percentile(ordered, 0.50),
            p99=percentile(ordered, 0.99),
            p999=percentile(ordered, 0.999),
            p9999=percentile(ordered, 0.9999),
        )

    def ms(self, field: str) -> float:
        """A statistic converted to milliseconds."""
        return getattr(self, field) * 1_000.0


def percentile(ordered: list[float], q: float) -> float:
    """Exact percentile of a pre-sorted sample (nearest-rank)."""
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


def count_above(samples: list[float], threshold: float) -> int:
    """Operations slower than ``threshold`` seconds (Table II's
    'latency>50ms' row)."""
    return sum(1 for s in samples if s > threshold)


def throughput(ops: int, duration: float) -> float:
    """Operations per second over a measured duration."""
    if duration <= 0:
        return 0.0
    return ops / duration


def cache_summary(stats) -> dict[str, float]:
    """A :class:`~repro.lsm.cache.CacheStats` flattened to a plain dict
    (the shape ``BENCH_read_path.json`` and reports embed)."""
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "lookups": stats.lookups,
        "hit_rate": stats.hit_rate,
        "inserts": stats.inserts,
        "evictions": stats.evictions,
        "bloom_probes": stats.bloom_probes,
        "bloom_negatives": stats.bloom_negatives,
    }


@dataclass(slots=True)
class ExplorationCounters:
    """Work counters for the model-checking harness (repro.verify).

    One instance accumulates across an exploration run: how many
    schedules were executed, how much work they contained, and what the
    checkers concluded.  Reports embed :meth:`as_dict`, so the counter
    set is also the schema of the ``verify`` CLI report.
    """

    schedules: int = 0
    operations: int = 0
    faults: int = 0
    reconfigs: int = 0
    checker_calls: int = 0
    violations: int = 0
    model_mismatches: int = 0
    failing_schedules: int = 0
    shrink_runs: int = 0

    def merge(self, other: "ExplorationCounters") -> None:
        """Fold another run's counters into this one."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}
