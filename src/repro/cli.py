"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro.cli list                 # show available experiments
    python -m repro.cli run fig3             # one experiment
    python -m repro.cli run fig3 fig8        # several
    python -m repro.cli run all              # everything
    python -m repro.cli run fig3 --ops 20000 # bigger run
    python -m repro.cli run fig3 --scale 1   # paper-sized configuration
    python -m repro.cli verify --seed 42     # model-checking exploration
    python -m repro.cli serve --spec cluster.toml --node ingestor-0
    python -m repro.cli live-bench --out BENCH_live.json

Each experiment prints its series/tables in the paper's shape followed
by paper-vs-measured checks (see EXPERIMENTS.md).

``verify`` runs the deterministic model-checking harness
(:mod:`repro.verify`): a seeded corpus of schedules over operation
interleavings, nemesis faults, and cluster shapes, each checked with
the matrix-appropriate Table I checker plus the sequential reference
model.  Its report is byte-identical across runs of the same seed; a
failing schedule is delta-debugged to a minimal counterexample when
``--shrink`` is given.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import (
    ablations,
    table1_consistency,
    fig3_write_scaling,
    fig4_compaction,
    fig5_client_scaling,
    fig6_read_latency,
    fig7_backup_reads,
    fig8_edge_cloud,
    fig9_smart_traffic,
    table2_latency,
    table3_realtime,
)


def _run_fig7(ops, scale):
    points = fig7_backup_reads.run(scale=scale)
    replication = fig7_backup_reads.run_replication_overhead(
        ops=ops or 10_000, scale=scale
    )
    fig7_backup_reads.report(points, replication)


#: name -> (description, runner(ops, scale))
EXPERIMENTS = {
    "table1": (
        "Table I: consistency matrix, machine-checked",
        lambda ops, scale: table1_consistency.report(
            table1_consistency.run(ops=ops or 300, scale=scale)
        ),
    ),
    "fig3": (
        "Figure 3: write latency/throughput vs #compactors (+ baselines)",
        lambda ops, scale: fig3_write_scaling.report(
            fig3_write_scaling.run(ops=ops or 10_000, scale=scale)
        ),
    ),
    "table2": (
        "Table II: write latency percentiles (1 Ingestor, 5 Compactors)",
        lambda ops, scale: table2_latency.report(
            table2_latency.run(ops=ops or 20_000, scale=scale)
        ),
    ),
    "fig4": (
        "Figure 4: L2/L3 compaction latency vs #compactors",
        lambda ops, scale: fig4_compaction.report(
            fig4_compaction.run(ops=ops or 12_000, scale=scale)
        ),
    ),
    "fig5": (
        "Figure 5: client scaling (distributed/colocated/multithreaded)",
        lambda ops, scale: fig5_client_scaling.report(
            fig5_client_scaling.run(ops_per_client=ops or 6_000, scale=scale)
        ),
    ),
    "fig6": (
        "Figure 6: read latency vs read percentage",
        lambda ops, scale: fig6_read_latency.report(
            fig6_read_latency.run(ops=ops or 2_000, scale=scale)
        ),
    ),
    "fig7": (
        "Figure 7: reads with/without backup + replication overhead",
        lambda ops, scale: _run_fig7(ops, scale),
    ),
    "fig8": (
        "Figure 8: edge-cloud write performance by edge location",
        lambda ops, scale: fig8_edge_cloud.report(
            fig8_edge_cloud.run(ops=ops or 8_000, scale=scale)
        ),
    ),
    "table3": (
        "Table III: real-time V2X action latency by placement",
        lambda ops, scale: table3_realtime.report(
            table3_realtime.run(rounds=ops or 200, scale=scale)
        ),
    ),
    "fig9": (
        "Figure 9: smart traffic benchmark (exploration + analytics)",
        lambda ops, scale: fig9_smart_traffic.report(
            fig9_smart_traffic.run(rounds=ops or 30, scale=scale)
        ),
    ),
    "ablations": (
        "Design-choice ablations (delta, batch size, in-flight cap, overlap)",
        lambda ops, scale: ablations.report(ablations.run(scale=scale)),
    ),
}


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (description, __) in EXPERIMENTS.items():
        print(f"  {name.ljust(width)}  {description}")
    return 0


def _cmd_run(names: list[str], ops: int | None, scale: int) -> int:
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro.cli list`", file=sys.stderr)
        return 2
    for name in names:
        description, runner = EXPERIMENTS[name]
        started = time.time()
        runner(ops, scale)
        print(f"\n[{name}] done in {time.time() - started:.1f}s wall time")
    return 0


def _cmd_verify(args) -> int:
    # Imported lazily so `list`/`run` never pay for the harness.
    from repro.verify import Explorer, inject_bug, render_timeline, shrink_schedule

    explorer = Explorer(
        seed=args.seed,
        ops_per_schedule=args.ops or 40,
        faults_per_schedule=args.faults,
    )
    chunks: list[str] = []
    with inject_bug(args.inject):
        report = explorer.explore(args.schedules)
        chunks.append(report.render())
        if not report.ok and args.shrink:
            from repro.verify import generate_schedule

            failing_seed = report.failing_seeds[0]
            spec = generate_schedule(
                failing_seed, ops=args.ops or 40, faults=args.faults
            )
            result = shrink_schedule(spec)
            chunks.append(
                f"\n# Shrink — seed {failing_seed}: "
                f"{len(result.original.ops)} ops / {len(result.original.faults)} faults"
                f" -> {len(result.shrunk.ops)} ops / {len(result.shrunk.faults)} faults"
                f" in {result.runs} runs\n\n"
            )
            chunks.append(render_timeline(result.outcome))
    text = "".join(chunks)
    # No wall-clock anywhere: the report is byte-identical per seed.
    sys.stdout.write(text)
    if args.out:
        with open(args.out, "w") as sink:
            sink.write(text)
    return 0 if report.ok else 1


def _cmd_serve(args) -> int:
    # Imported lazily so list/run never pay for the live runtime.
    import logging

    from repro.live.node import serve_main

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    return serve_main(args.spec, args.node, data_dir=args.data_dir)


def _cmd_live_bench(args) -> int:
    from repro.bench.live_bench import run_and_report

    return run_and_report(
        out=args.out,
        client_counts=[int(c) for c in args.clients.split(",")],
        ops_per_client=args.ops,
        seed=args.seed,
        depths=[int(d) for d in args.depths.split(",")],
        max_batch=args.batch,
        check=args.check,
        max_regression=args.max_regression,
        shard_counts=(
            [int(s) for s in args.shards.split(",")] if args.shards else None
        ),
    )


def _cmd_recovery_bench(args) -> int:
    from repro.bench.recovery_bench import run_and_report

    return run_and_report(
        out=args.out,
        ops=args.ops,
        seed=args.seed,
        check=args.check,
        max_regression=args.max_regression,
    )


def _cmd_chaos_proxy(args) -> int:
    import logging

    from repro.live.chaos import proxy_main

    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    return proxy_main(args.links)


def _cmd_chaos_bench(args) -> int:
    from repro.bench.chaos_bench import run_and_report

    return run_and_report(
        out=args.out,
        ops=args.ops,
        seed=args.seed,
        check=args.check,
        max_regression=args.max_regression,
    )


def _cmd_stability_bench(args) -> int:
    from repro.bench.stability_bench import run_and_report

    return run_and_report(
        out=args.out,
        ops=args.ops,
        seed=args.seed,
        live_seconds=args.live_seconds,
        check=args.check,
        max_regression=args.max_regression,
    )


def _cmd_scan_bench(args) -> int:
    from repro.bench.scan_bench import run_and_report

    return run_and_report(
        out=args.out,
        num_scans=args.scans,
        sim_ops=args.sim_ops,
        live_scans=args.live_scans,
        seed=args.seed,
        smoke=args.smoke,
        check=args.check,
        max_regression=args.max_regression,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the CooLSM paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("names", nargs="+", help="experiment names, or 'all'")
    run_parser.add_argument(
        "--ops", type=int, default=None, help="operation count (experiment-specific default)"
    )
    run_parser.add_argument(
        "--scale",
        type=int,
        default=10,
        help="configuration shrink factor (1 = paper-sized; default 10)",
    )
    verify_parser = subparsers.add_parser(
        "verify", help="run the deterministic model-checking harness"
    )
    verify_parser.add_argument("--seed", type=int, default=0, help="root seed")
    verify_parser.add_argument(
        "--schedules", type=int, default=20, help="schedules to explore"
    )
    verify_parser.add_argument(
        "--ops", type=int, default=None, help="operations per schedule (default 40)"
    )
    verify_parser.add_argument(
        "--faults", type=int, default=2, help="nemesis faults per schedule"
    )
    verify_parser.add_argument(
        "--inject",
        default=None,
        help="inject a known protocol bug by name (harness self-validation); "
        "see repro.verify.BUGS",
    )
    verify_parser.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug the first failing schedule to a minimal counterexample",
    )
    verify_parser.add_argument(
        "--out", default=None, help="also write the report to this file"
    )
    serve_parser = subparsers.add_parser(
        "serve", help="run one live node over real TCP until SIGTERM"
    )
    serve_parser.add_argument(
        "--spec", required=True, help="cluster spec file (.toml or .json)"
    )
    serve_parser.add_argument(
        "--node", required=True, help="node name from the spec (e.g. ingestor-0)"
    )
    serve_parser.add_argument(
        "--log-level", default="info", help="logging level (default info)"
    )
    serve_parser.add_argument(
        "--data-dir",
        default=None,
        help="durable storage root; the node persists to <data-dir>/<node> "
        "and recovers from it on restart (default: in-memory only)",
    )
    live_bench_parser = subparsers.add_parser(
        "live-bench", help="benchmark a real localhost cluster"
    )
    live_bench_parser.add_argument(
        "--out", default="BENCH_live.json", help="output JSON path"
    )
    live_bench_parser.add_argument(
        "--clients", default="1,2,4,8,16", help="comma-separated client counts"
    )
    live_bench_parser.add_argument(
        "--ops", type=int, default=400, help="operations per client"
    )
    live_bench_parser.add_argument("--seed", type=int, default=0, help="workload seed")
    live_bench_parser.add_argument(
        "--depths",
        default="0,4,16",
        help="comma-separated pipelining depths (0 = synchronous reference path)",
    )
    live_bench_parser.add_argument(
        "--batch", type=int, default=128, help="max upserts per pipelined batch"
    )
    live_bench_parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_live.json; exit 1 on regression",
    )
    live_bench_parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="allowed pipelined_speedup shrink factor vs baseline (default 2.0)",
    )
    live_bench_parser.add_argument(
        "--shards",
        default=None,
        metavar="COUNTS",
        help="also sweep sharded Ingestor fleets (comma-separated counts, "
        "e.g. 1,2,4): aggregate pipelined write throughput per shard "
        "count, gated machine-relatively against min(shards, cpus)",
    )
    recovery_parser = subparsers.add_parser(
        "recovery-bench",
        help="benchmark crash recovery of a real durable cluster",
    )
    recovery_parser.add_argument(
        "--out", default="BENCH_recovery.json", help="output JSON path"
    )
    recovery_parser.add_argument(
        "--ops", type=int, default=600, help="acked upserts before the crash"
    )
    recovery_parser.add_argument("--seed", type=int, default=0, help="workload seed")
    recovery_parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_recovery.json and fail on regression",
    )
    recovery_parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="allowed ratio-of-ratios slowdown vs baseline (default 2.0)",
    )
    chaos_proxy_parser = subparsers.add_parser(
        "chaos-proxy",
        help="run the per-link TCP fault proxy until SIGTERM",
    )
    chaos_proxy_parser.add_argument(
        "--links", required=True, help="links JSON file (see repro.live.chaos)"
    )
    chaos_proxy_parser.add_argument(
        "--log-level", default="info", help="logging level (default info)"
    )
    chaos_bench_parser = subparsers.add_parser(
        "chaos-bench",
        help="benchmark a real cluster under a seeded fault schedule",
    )
    chaos_bench_parser.add_argument(
        "--out", default="BENCH_chaos.json", help="output JSON path"
    )
    chaos_bench_parser.add_argument(
        "--ops", type=int, default=400, help="workload size per phase"
    )
    chaos_bench_parser.add_argument("--seed", type=int, default=0, help="workload seed")
    chaos_bench_parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_chaos.json and fail on regression",
    )
    chaos_bench_parser.add_argument(
        "--max-regression",
        type=float,
        default=2.5,
        help="allowed ratio-of-ratios degradation vs baseline (default 2.5)",
    )
    stability_parser = subparsers.add_parser(
        "stability-bench",
        help="windowed write-stability benchmark: flow control on vs off",
    )
    stability_parser.add_argument(
        "--out", default="BENCH_stability.json", help="output JSON path"
    )
    stability_parser.add_argument(
        "--ops", type=int, default=12000, help="sim-phase writes per run"
    )
    stability_parser.add_argument("--seed", type=int, default=0, help="workload seed")
    stability_parser.add_argument(
        "--live-seconds",
        type=float,
        default=4.0,
        help="live-phase duration in seconds (0 skips the live phase)",
    )
    stability_parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_stability.json and fail on regression",
    )
    stability_parser.add_argument(
        "--max-regression",
        type=float,
        default=2.5,
        help="allowed tail-ratio degradation vs baseline (default 2.5)",
    )
    scan_parser = subparsers.add_parser(
        "scan-bench",
        help="Reader scan benchmark: sorted view vs streaming merge",
    )
    scan_parser.add_argument(
        "--out", default="BENCH_scan.json", help="output JSON path"
    )
    scan_parser.add_argument(
        "--scans", type=int, default=600, help="direct-phase scan count"
    )
    scan_parser.add_argument(
        "--sim-ops", type=int, default=150, help="sim-phase workload ops per run"
    )
    scan_parser.add_argument(
        "--live-scans",
        type=int,
        default=120,
        help="live-phase scan count (0 skips the live phase)",
    )
    scan_parser.add_argument("--seed", type=int, default=7, help="workload seed")
    scan_parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrunken direct phase, live phase skipped (CI)",
    )
    scan_parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_scan.json and fail on regression",
    )
    scan_parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="allowed speedup-ratio degradation vs baseline (default 2.0)",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "live-bench":
        return _cmd_live_bench(args)
    if args.command == "recovery-bench":
        return _cmd_recovery_bench(args)
    if args.command == "chaos-proxy":
        return _cmd_chaos_proxy(args)
    if args.command == "chaos-bench":
        return _cmd_chaos_bench(args)
    if args.command == "stability-bench":
        return _cmd_stability_bench(args)
    if args.command == "scan-bench":
        return _cmd_scan_bench(args)
    return _cmd_run(args.names, args.ops, args.scale)


if __name__ == "__main__":
    raise SystemExit(main())
