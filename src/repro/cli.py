"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro.cli list                 # show available experiments
    python -m repro.cli run fig3             # one experiment
    python -m repro.cli run fig3 fig8        # several
    python -m repro.cli run all              # everything
    python -m repro.cli run fig3 --ops 20000 # bigger run
    python -m repro.cli run fig3 --scale 1   # paper-sized configuration

Each experiment prints its series/tables in the paper's shape followed
by paper-vs-measured checks (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import (
    ablations,
    table1_consistency,
    fig3_write_scaling,
    fig4_compaction,
    fig5_client_scaling,
    fig6_read_latency,
    fig7_backup_reads,
    fig8_edge_cloud,
    fig9_smart_traffic,
    table2_latency,
    table3_realtime,
)


def _run_fig7(ops, scale):
    points = fig7_backup_reads.run(scale=scale)
    replication = fig7_backup_reads.run_replication_overhead(
        ops=ops or 10_000, scale=scale
    )
    fig7_backup_reads.report(points, replication)


#: name -> (description, runner(ops, scale))
EXPERIMENTS = {
    "table1": (
        "Table I: consistency matrix, machine-checked",
        lambda ops, scale: table1_consistency.report(
            table1_consistency.run(ops=ops or 300, scale=scale)
        ),
    ),
    "fig3": (
        "Figure 3: write latency/throughput vs #compactors (+ baselines)",
        lambda ops, scale: fig3_write_scaling.report(
            fig3_write_scaling.run(ops=ops or 10_000, scale=scale)
        ),
    ),
    "table2": (
        "Table II: write latency percentiles (1 Ingestor, 5 Compactors)",
        lambda ops, scale: table2_latency.report(
            table2_latency.run(ops=ops or 20_000, scale=scale)
        ),
    ),
    "fig4": (
        "Figure 4: L2/L3 compaction latency vs #compactors",
        lambda ops, scale: fig4_compaction.report(
            fig4_compaction.run(ops=ops or 12_000, scale=scale)
        ),
    ),
    "fig5": (
        "Figure 5: client scaling (distributed/colocated/multithreaded)",
        lambda ops, scale: fig5_client_scaling.report(
            fig5_client_scaling.run(ops_per_client=ops or 6_000, scale=scale)
        ),
    ),
    "fig6": (
        "Figure 6: read latency vs read percentage",
        lambda ops, scale: fig6_read_latency.report(
            fig6_read_latency.run(ops=ops or 2_000, scale=scale)
        ),
    ),
    "fig7": (
        "Figure 7: reads with/without backup + replication overhead",
        lambda ops, scale: _run_fig7(ops, scale),
    ),
    "fig8": (
        "Figure 8: edge-cloud write performance by edge location",
        lambda ops, scale: fig8_edge_cloud.report(
            fig8_edge_cloud.run(ops=ops or 8_000, scale=scale)
        ),
    ),
    "table3": (
        "Table III: real-time V2X action latency by placement",
        lambda ops, scale: table3_realtime.report(
            table3_realtime.run(rounds=ops or 200, scale=scale)
        ),
    ),
    "fig9": (
        "Figure 9: smart traffic benchmark (exploration + analytics)",
        lambda ops, scale: fig9_smart_traffic.report(
            fig9_smart_traffic.run(rounds=ops or 30, scale=scale)
        ),
    ),
    "ablations": (
        "Design-choice ablations (delta, batch size, in-flight cap, overlap)",
        lambda ops, scale: ablations.report(ablations.run(scale=scale)),
    ),
}


def _cmd_list() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name, (description, __) in EXPERIMENTS.items():
        print(f"  {name.ljust(width)}  {description}")
    return 0


def _cmd_run(names: list[str], ops: int | None, scale: int) -> int:
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print("use `python -m repro.cli list`", file=sys.stderr)
        return 2
    for name in names:
        description, runner = EXPERIMENTS[name]
        started = time.time()
        runner(ops, scale)
        print(f"\n[{name}] done in {time.time() - started:.1f}s wall time")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate the CooLSM paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("names", nargs="+", help="experiment names, or 'all'")
    run_parser.add_argument(
        "--ops", type=int, default=None, help="operation count (experiment-specific default)"
    )
    run_parser.add_argument(
        "--scale",
        type=int,
        default=10,
        help="configuration shrink factor (1 = paper-sized; default 10)",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args.names, args.ops, args.scale)


if __name__ == "__main__":
    raise SystemExit(main())
