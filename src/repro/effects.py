"""The effect protocol: the surface CooLSM nodes are written against.

Every node (Ingestor, Compactor, Reader, Client, ...) is a set of
generator coroutines that ``yield`` *waitables* and interact with the
world exclusively through three capability objects handed to it at
construction time:

``kernel``
    Time and concurrency: ``now``, ``event()``, ``timeout(delay)``,
    ``spawn(generator)``, ``all_of(events)``, ``any_of(events)``.

``machine``
    Compute: ``yield from machine.execute(cost_seconds)`` charges a
    modelled CPU cost against the host the node is placed on.

``network``
    Messaging: ``register(name, machine)`` returns the node's inbox;
    ``send(src, dst, message, size_bytes)`` delivers to a named peer.

Because the node code never touches anything outside this surface, the
*same* generators run under two interpreters:

* the deterministic simulation kernel (:mod:`repro.sim.kernel`), where
  waitables fire on a virtual-time event heap — used for experiments,
  model checking, and replayable fault injection; and
* the live asyncio runtime (:mod:`repro.live.runtime`), where waitables
  fire on the real event loop, ``timeout`` is ``asyncio.sleep``, and
  ``send`` crosses real TCP sockets.

The classes below are :class:`typing.Protocol` definitions — structural
types.  The sim kernel and the live runtime both satisfy them without
inheriting from them; node modules import *these* names for annotations
so that neither backend leaks into the node layer.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Protocol, runtime_checkable

#: A node process: a generator that yields waitables and receives each
#: waitable's value back at the yield point.
ProcessGen = Generator[Any, Any, Any]


@runtime_checkable
class Waitable(Protocol):
    """A one-shot occurrence a process can ``yield`` on.

    Triggered at most once, with a value (:meth:`succeed`) or an
    exception (:meth:`fail`); waiters resume in registration order.
    ``defused`` suppresses the "failed with no waiters" escalation.
    """

    triggered: bool
    ok: bool
    value: Any
    defused: bool

    def succeed(self, value: Any = None) -> "Waitable": ...

    def fail(self, exception: BaseException) -> "Waitable": ...

    def _add_callback(self, callback: Callable[["Waitable"], None]) -> None: ...


@runtime_checkable
class EffectKernel(Protocol):
    """Time and concurrency primitives.

    ``now`` is seconds on the backend's clock: virtual time under the
    simulator, wall time (monotonic, starting at 0) under the live
    runtime.  All other methods build waitables bound to this kernel;
    waitables from different kernels must never be mixed.
    """

    @property
    def now(self) -> float: ...

    def event(self) -> Waitable: ...

    def timeout(self, delay: float, value: Any = None) -> Waitable: ...

    def spawn(self, generator: ProcessGen, name: str = "") -> Waitable: ...

    def all_of(self, events: Iterable[Waitable]) -> Waitable: ...

    def any_of(self, events: Iterable[Waitable]) -> Waitable: ...


@runtime_checkable
class ComputeHost(Protocol):
    """A host with bounded compute that nodes charge costs against.

    The simulator turns ``execute`` into queueing on a core pool in
    virtual time; the live runtime turns it into a cooperative yield
    (optionally scaled into a real sleep for emulation experiments) —
    the actual Python work of a merge or probe runs at hardware speed
    either way.
    """

    name: str

    def execute(self, cost_seconds: float) -> ProcessGen: ...


@runtime_checkable
class Inbox(Protocol):
    """A node's FIFO message queue on the fabric."""

    def put(self, item: Any) -> None: ...

    def get(self) -> Waitable: ...


@runtime_checkable
class Fabric(Protocol):
    """Named-endpoint messaging between nodes.

    The simulator models WAN latency, drops, and partitions; the live
    runtime serialises messages (:mod:`repro.live.wire`) and moves them
    over framed TCP (:mod:`repro.live.transport`).  Both deliver
    ``(src_name, message)`` tuples into the destination's inbox and
    guarantee per-channel FIFO order.
    """

    def register(self, name: str, machine: ComputeHost) -> Inbox: ...

    def send(self, src: str, dst: str, message: Any, size_bytes: int = 256) -> None: ...

    def machine_of(self, name: str) -> ComputeHost: ...
