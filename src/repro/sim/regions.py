"""AWS regions and the wide-area latency model.

The paper deploys the cloud in **Virginia** and edges in **Ohio,
California, Oregon, and London**, "chosen based on their distance to the
cloud datacenter" (Section IV-D).  The round-trip times below are
calibrated from the paper's own measurements where available — Table III
puts a California↔Virginia real-time action (two round trips) at
≈122 ms, i.e. ≈61 ms RTT — and from public inter-region measurements for
the remaining pairs.  Intra-datacenter RTT is set so that the paper's
in-cloud write+read sequence (0.5584 ms) is reproduced.

All times in this module are **seconds** (the simulator's unit).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Region(str, Enum):
    """The five AWS locations used in the paper's evaluation."""

    VIRGINIA = "virginia"
    OHIO = "ohio"
    CALIFORNIA = "california"
    OREGON = "oregon"
    LONDON = "london"


#: The paper's cloud datacenter.
CLOUD_REGION = Region.VIRGINIA

#: The paper's edge locations, nearest first (Section IV-D ordering).
EDGE_REGIONS = (
    Region.VIRGINIA,
    Region.OHIO,
    Region.CALIFORNIA,
    Region.OREGON,
    Region.LONDON,
)

_MS = 1e-3

#: Inter-region round-trip times, seconds.  Symmetric; see module docstring.
_RTT: dict[frozenset[Region], float] = {
    frozenset({Region.VIRGINIA, Region.OHIO}): 11.0 * _MS,
    frozenset({Region.VIRGINIA, Region.CALIFORNIA}): 61.0 * _MS,
    frozenset({Region.VIRGINIA, Region.OREGON}): 67.0 * _MS,
    frozenset({Region.VIRGINIA, Region.LONDON}): 76.0 * _MS,
    frozenset({Region.OHIO, Region.CALIFORNIA}): 50.0 * _MS,
    frozenset({Region.OHIO, Region.OREGON}): 55.0 * _MS,
    frozenset({Region.OHIO, Region.LONDON}): 86.0 * _MS,
    frozenset({Region.CALIFORNIA, Region.OREGON}): 22.0 * _MS,
    frozenset({Region.CALIFORNIA, Region.LONDON}): 140.0 * _MS,
    frozenset({Region.OREGON, Region.LONDON}): 130.0 * _MS,
}

#: RTT between two machines in the same datacenter.
INTRA_DC_RTT = 0.25 * _MS

#: RTT between two processes on the same machine (loopback).
LOOPBACK_RTT = 0.02 * _MS


def rtt(a: Region, b: Region) -> float:
    """Round-trip time between two regions, seconds."""
    if a == b:
        return INTRA_DC_RTT
    return _RTT[frozenset({a, b})]


def one_way(a: Region, b: Region) -> float:
    """One-way propagation delay between two regions, seconds."""
    return rtt(a, b) / 2.0


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Computes message delivery delay between machines.

    delay = propagation(one-way RTT/2) + per-message overhead
            + size / bandwidth + jitter

    Attributes:
        per_message_overhead: Fixed software/NIC overhead per message.
        bandwidth_bytes_per_sec: Link bandwidth for the size term.
        jitter_fraction: Max uniform jitter as a fraction of the
            propagation delay (models congestion variance).
    """

    per_message_overhead: float = 0.02 * _MS
    bandwidth_bytes_per_sec: float = 125_000_000.0  # ~1 Gbit/s
    jitter_fraction: float = 0.05

    def delay(
        self,
        src_region: Region,
        dst_region: Region,
        size_bytes: int,
        jitter_draw: float,
        same_machine: bool = False,
    ) -> float:
        """Delivery delay for one message; ``jitter_draw`` is U(0,1)."""
        if same_machine:
            propagation = LOOPBACK_RTT / 2.0
        else:
            propagation = one_way(src_region, dst_region)
        transfer = size_bytes / self.bandwidth_bytes_per_sec
        jitter = propagation * self.jitter_fraction * jitter_draw
        return propagation + self.per_message_overhead + transfer + jitter
