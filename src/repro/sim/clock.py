"""Loosely-synchronised clocks (the NTP model of Section III-E).

The paper assumes "loose-time synchronization such as NTP" giving every
event a timestamp whose accuracy is bounded by δ: the true time t_g of
an event stamped t satisfies ``t - δ < t_g < t + δ``.  Two events can be
ordered iff their stamps differ by at least 2δ.

:class:`LooseClock` implements a per-node clock as simulated time plus a
bounded offset (constant base plus slow sinusoidal drift, both within
±δ), seeded per node for reproducibility.  :func:`definitely_after`
implements the 2δ ordering predicate used by Ingestors, Compactors, and
the Linearizable+Concurrent consistency checker.
"""

from __future__ import annotations

import math
import random

from repro.effects import EffectKernel


class LooseClock:
    """A node-local clock with error bounded by ``delta``.

    Args:
        kernel: Effect kernel (source of true time — virtual under
            the simulator, wall-clock under the live runtime).
        delta: Synchronisation error bound δ, seconds.
        rng: Stream used to draw this node's offset and drift phase.
    """

    def __init__(self, kernel: EffectKernel, delta: float, rng: random.Random) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.kernel = kernel
        self.delta = delta
        # Base offset plus drift never exceed ±0.95δ in magnitude, so the
        # advertised bound strictly holds.
        self._base = rng.uniform(-0.75, 0.75) * delta
        self._amplitude = rng.uniform(0.0, 0.2) * delta
        self._phase = rng.uniform(0.0, 2.0 * math.pi)
        self._period = rng.uniform(60.0, 600.0)
        self._last = -math.inf
        # Fault injection (nemesis clock-skew spikes): extra offset on
        # top of the bounded NTP error, deliberately able to exceed δ.
        self._injected = 0.0

    def inject_skew(self, extra: float) -> None:
        """Add ``extra`` seconds of error (0.0 restores normality).

        Used by the nemesis to model a clock-sync fault; while nonzero
        the advertised δ bound may be violated on purpose.
        """
        self._injected = extra

    def offset(self) -> float:
        """Current clock error (true + offset = reading)."""
        drift = self._amplitude * math.sin(
            2.0 * math.pi * self.kernel.now / self._period + self._phase
        )
        return self._base + drift + self._injected

    def advance_past(self, watermark: float) -> None:
        """Force future readings strictly above ``watermark``.

        Crash recovery uses this: the live kernel's clock restarts at
        zero with the process, so without restoring the persisted
        timestamp watermark a recovered node would stamp new writes
        *older* than its pre-crash ones, breaking newest-wins ordering.
        The monotone slewing in :meth:`now` does the rest.
        """
        if watermark > self._last:
            self._last = watermark

    def now(self) -> float:
        """This node's current timestamp (monotone per node)."""
        reading = self.kernel.now + self.offset()
        # NTP-disciplined clocks are made monotone by slewing; model that
        # by never letting a reading go backwards.
        if reading <= self._last:
            reading = math.nextafter(self._last, math.inf)
        self._last = reading
        return reading


def definitely_after(ts_late: float, ts_early: float, delta: float) -> bool:
    """True iff loose timestamps prove ``ts_late`` happened after
    ``ts_early`` — the paper's 2δ rule: ``t_a - t_b >= 2δ  =>  b <_t a``."""
    return ts_late - ts_early >= 2.0 * delta


def concurrent(ts_a: float, ts_b: float, delta: float) -> bool:
    """True iff the two events cannot be ordered under the 2δ rule."""
    return abs(ts_a - ts_b) < 2.0 * delta
