"""The wide-area network: ordered, reliable delivery with WAN latency.

CooLSM "use[s] a communication framework that guarantees the ordered
delivery of messages while handling network message drops, delays, and
unordered messages. (We use Google RPC which uses a variant of the TCP
protocol.)" — Section III-H.  The simulator models exactly that
contract:

* per-(src, dst) channels deliver FIFO — a later message never
  overtakes an earlier one on the same channel (TCP ordering);
* a *dropped* message is not lost: it is retransmitted and appears as
  extra delay (one retransmission timeout), as it would under TCP;
* a *partition* between two machines holds messages back until healed.

Faults are injected through :class:`FaultPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .kernel import Kernel
from .machine import Machine
from .regions import LatencyModel
from .resources import Store
from .rng import RngRegistry


@dataclass(slots=True)
class FaultPlan:
    """Network fault injection knobs.

    Attributes:
        drop_probability: Chance each message is dropped once and
            retransmitted (adds ``retransmit_timeout`` to its delay).
        retransmit_timeout: Extra delay per drop (TCP RTO model).
        partitions: Set of frozenset({machine_a, machine_b}) pairs whose
            traffic is held until the pair is removed.
    """

    drop_probability: float = 0.0
    retransmit_timeout: float = 0.2
    partitions: set[frozenset[str]] = field(default_factory=set)

    def partition(self, a: str, b: str) -> None:
        self.partitions.add(frozenset({a, b}))

    def heal(self, a: str, b: str) -> None:
        self.partitions.discard(frozenset({a, b}))

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset({a, b}) in self.partitions


@dataclass(slots=True)
class NetworkStats:
    """Counters for traffic accounting."""

    messages_sent: int = 0
    bytes_sent: int = 0
    drops: int = 0


class Network:
    """Connects machines; delivers messages into named inboxes.

    Nodes register an inbox (:class:`~repro.sim.resources.Store`) under
    their name with :meth:`register`; :meth:`send` schedules delivery of
    ``(sender_name, message)`` tuples after the modelled delay.
    """

    def __init__(
        self,
        kernel: Kernel,
        rng: RngRegistry,
        latency_model: LatencyModel | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.kernel = kernel
        self.latency = latency_model or LatencyModel()
        self.faults = faults or FaultPlan()
        self.stats = NetworkStats()
        self._rng = rng.stream("network.jitter")
        self._drop_rng = rng.stream("network.drops")
        self._inboxes: dict[str, Store] = {}
        self._machines: dict[str, Machine] = {}
        # FIFO enforcement: earliest time the next message on a channel
        # may be delivered.
        self._channel_clear_at: dict[tuple[str, str], float] = {}
        self._held: dict[frozenset[str], list[tuple[str, str, Any, int]]] = {}

    def register(self, name: str, machine: Machine) -> Store:
        """Create and return the inbox for node ``name`` on ``machine``."""
        if name in self._inboxes:
            raise ValueError(f"node name already registered: {name}")
        inbox = Store(self.kernel)
        self._inboxes[name] = inbox
        self._machines[name] = machine
        return inbox

    def machine_of(self, name: str) -> Machine:
        return self._machines[name]

    def send(self, src: str, dst: str, message: Any, size_bytes: int = 256) -> None:
        """Send ``message`` from node ``src`` to node ``dst``.

        Delivery is asynchronous; the message appears in ``dst``'s inbox
        as ``(src, message)`` after the modelled delay.  Messages between
        colocated nodes (same machine) use loopback latency.
        """
        src_machine = self._machines[src]
        dst_machine = self._machines[dst]
        if self.faults.is_partitioned(src_machine.name, dst_machine.name):
            key = frozenset({src_machine.name, dst_machine.name})
            self._held.setdefault(key, []).append((src, dst, message, size_bytes))
            return
        self._deliver(src, dst, message, size_bytes)

    def _deliver(self, src: str, dst: str, message: Any, size_bytes: int) -> None:
        src_machine = self._machines[src]
        dst_machine = self._machines[dst]
        same_machine = src_machine is dst_machine
        delay = self.latency.delay(
            src_machine.region,
            dst_machine.region,
            size_bytes,
            self._rng.random(),
            same_machine=same_machine,
        )
        # Loopback (colocated nodes) never traverses a lossy link: TCP
        # over loopback does not drop, so colocated deployments (e.g.
        # the monolithic baseline) must not pay retransmit delays.
        if not same_machine and self._drop_rng.random() < self.faults.drop_probability:
            self.stats.drops += 1
            delay += self.faults.retransmit_timeout
        now = self.kernel.now
        channel = (src, dst)
        deliver_at = max(now + delay, self._channel_clear_at.get(channel, 0.0))
        self._channel_clear_at[channel] = deliver_at
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size_bytes
        inbox = self._inboxes[dst]
        self.kernel._schedule_at(deliver_at, lambda: inbox.put((src, message)))

    def heal_partition(self, machine_a: str, machine_b: str) -> None:
        """Heal a partition and flush the traffic it held back."""
        self.faults.heal(machine_a, machine_b)
        key = frozenset({machine_a, machine_b})
        for src, dst, message, size_bytes in self._held.pop(key, []):
            self._deliver(src, dst, message, size_bytes)
