"""Machines: bounded compute shared by the nodes placed on them.

The paper's instances are t2.xlarge: four cores.  Each
:class:`Machine` exposes a core pool; every simulated compute step (a
merge, a probe, batch encoding) acquires a core for its modelled service
time.  This is what makes compaction *interfere* with ingestion when
Ingestor and Compactor are colocated (the monolithic baseline), and what
makes the multithreaded-client case of Figure 5 stop scaling while
distributed clients scale.
"""

from __future__ import annotations

from .kernel import Kernel
from .regions import Region
from .resources import Resource

#: Core count of the paper's t2.xlarge instances.
DEFAULT_CORES = 4


class Machine:
    """A simulated host with a region and a core pool.

    Args:
        kernel: The simulation kernel.
        name: Unique machine name (used for loopback detection).
        region: Where the machine lives (drives WAN latency).
        cores: Number of cores (compute jobs run truly in parallel up to
            this count; beyond it they queue FIFO).
        speed: Relative speed multiplier; edge hardware can be modelled
            as ``speed < 1``.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        region: Region,
        cores: int = DEFAULT_CORES,
        speed: float = 1.0,
    ) -> None:
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.kernel = kernel
        self.name = name
        self.region = region
        self.speed = speed
        self.cores = Resource(kernel, cores)
        self.busy_time = 0.0  # cumulative core-seconds consumed

    def execute(self, cost_seconds: float):
        """Process helper: run a compute job of the given nominal cost.

        Usage: ``yield from machine.execute(0.003)``.  The job holds one
        core for ``cost_seconds / speed`` simulated seconds; if all cores
        are busy it waits its turn first.
        """
        if cost_seconds < 0:
            raise ValueError("cost must be non-negative")
        if cost_seconds == 0:
            return
        duration = cost_seconds / self.speed
        self.busy_time += duration
        yield from self.cores.use(duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Machine({self.name!r}, {self.region.value})"
