"""RPC layer: request/response and one-way casts between CooLSM nodes.

:class:`RpcNode` is the base class of every CooLSM component (Ingestor,
Compactor, Reader, client).  It is written purely against the effect
protocol (:mod:`repro.effects`), so the same class serves both backends:
under the simulation kernel its messages ride the modelled WAN, under
the live runtime (:mod:`repro.live`) they ride real TCP sockets.  It
owns an inbox on the network fabric, dispatches incoming requests to
registered handler coroutines, and offers:

``yield self.call(dst, method, payload)``
    Request/response with optional timeout and retries; the yield
    resolves to the peer handler's return value.

``self.cast(dst, method, payload)``
    Fire-and-forget one-way message (used for asynchronous propagation,
    e.g. Compactor → Reader updates).

Crash semantics for fault-tolerance experiments: while
:attr:`RpcNode.crashed` is True the node silently drops everything it
receives and initiates nothing — exactly how a failed machine appears
to its peers (timeouts).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.effects import ComputeHost, EffectKernel, Fabric, Waitable

from .kernel import SimError

_rpc_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class _Request:
    rpc_id: int
    method: str
    payload: Any
    size_bytes: int


@dataclass(frozen=True, slots=True)
class _Response:
    rpc_id: int
    payload: Any
    error: str | None


@dataclass(frozen=True, slots=True)
class _Cast:
    method: str
    payload: Any


class RpcTimeout(SimError):
    """A call exceeded its timeout (and retries, if any)."""


class RemoteError(SimError):
    """The remote handler raised; the message carries its description."""


Handler = Callable[[str, Any], Generator[Waitable, Any, Any]]


class RpcNode:
    """A simulated node addressable by name on the network.

    Subclasses register handlers (generator functions taking
    ``(src_name, payload)`` and returning the reply payload) with
    :meth:`on`, usually in ``__init__``.
    """

    def __init__(
        self, kernel: EffectKernel, network: Fabric, machine: ComputeHost, name: str
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.machine = machine
        self.name = name
        self.crashed = False
        self._handlers: dict[str, Handler] = {}
        self._pending: dict[int, Waitable] = {}
        self._inbox = network.register(name, machine)
        self._receiver = kernel.spawn(self._receive_loop(), f"{name}.recv")
        self.on("health", self._handle_health)

    # ------------------------------------------------------------------
    # Registration and messaging API
    # ------------------------------------------------------------------
    def on(self, method: str, handler: Handler) -> None:
        """Register the handler coroutine for ``method``."""
        self._handlers[method] = handler

    def call(
        self,
        dst: str,
        method: str,
        payload: Any = None,
        size_bytes: int = 256,
        timeout: float | None = None,
        retries: int = 0,
    ) -> Waitable:
        """Start a request; the returned event fires with the reply.

        Usage: ``reply = yield self.call(dst, "read", req)``.
        Raises :class:`RpcTimeout` via the event if the deadline passes
        after all retries, and :class:`RemoteError` if the handler threw.
        """
        return self.kernel.spawn(
            self._call_process(dst, method, payload, size_bytes, timeout, retries),
            f"{self.name}.call.{method}",
        )

    def _call_process(self, dst, method, payload, size_bytes, timeout, retries):
        attempts = retries + 1
        last_error: Exception | None = None
        for __ in range(attempts):
            rpc_id = next(_rpc_ids)
            reply_event = self.kernel.event()
            self._pending[rpc_id] = reply_event
            self.network.send(
                self.name, dst, _Request(rpc_id, method, payload, size_bytes), size_bytes
            )
            if timeout is None:
                response = yield reply_event
            else:
                which, value = yield self.kernel.any_of(
                    [reply_event, self.kernel.timeout(timeout)]
                )
                if which == 1:
                    self._pending.pop(rpc_id, None)
                    reply_event.defused = True
                    last_error = RpcTimeout(f"{self.name} -> {dst} {method} timed out")
                    continue
                response = value
            self._pending.pop(rpc_id, None)
            if response.error is not None:
                raise RemoteError(f"{dst}.{method}: {response.error}")
            return response.payload
        raise last_error or RpcTimeout(f"{self.name} -> {dst} {method} timed out")

    def cast(self, dst: str, method: str, payload: Any = None, size_bytes: int = 256) -> None:
        """One-way message: fire-and-forget."""
        self.network.send(self.name, dst, _Cast(method, payload), size_bytes)

    def compute(self, cost_seconds: float):
        """Process helper: consume CPU on this node's machine.

        Usage: ``yield from self.compute(cost)``.
        """
        yield from self.machine.execute(cost_seconds)

    # ------------------------------------------------------------------
    # Health probe (supervision / failure detection)
    # ------------------------------------------------------------------
    def health_gauges(self) -> dict:
        """Role-specific load gauges for the "health" RPC; subclasses
        override.  An ``"inflight"`` key, when present, becomes the
        reply's headline in-flight count."""
        return {}

    def _handle_health(self, src: str, payload: Any):
        """Answer a liveness probe.  A crashed node never reaches this
        handler (the receive loop drops its traffic), so a health reply
        really does mean "alive and serving" — the supervisor's and the
        chaos soak's failure-detection signal."""
        from repro.core.messages import HealthReply

        gauges = dict(self.health_gauges())
        transport = getattr(self.network, "transport", None)
        if transport is not None:
            gauges.update(transport.stats.as_gauges())
        yield from ()
        return HealthReply(
            name=self.name,
            nonce=getattr(payload, "nonce", 0),
            uptime=self.kernel.now,
            inflight=int(gauges.get("inflight", 0)),
            gauges=gauges,
        )

    # ------------------------------------------------------------------
    # Crash / recover (fault-tolerance experiments)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop: drop all traffic until :meth:`recover`."""
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False

    # ------------------------------------------------------------------
    # Receive loop
    # ------------------------------------------------------------------
    def _receive_loop(self):
        while True:
            src, message = yield self._inbox.get()
            if self.crashed:
                continue
            if isinstance(message, _Response):
                pending = self._pending.pop(message.rpc_id, None)
                if pending is not None and not pending.triggered:
                    pending.succeed(message)
            elif isinstance(message, _Request):
                self.kernel.spawn(
                    self._serve(src, message), f"{self.name}.serve.{message.method}"
                )
            elif isinstance(message, _Cast):
                handler = self._handlers.get(message.method)
                if handler is not None:
                    process = self.kernel.spawn(
                        handler(src, message.payload),
                        f"{self.name}.cast.{message.method}",
                    )
                    process.defused = False  # failures surface in Kernel.run

    def _serve(self, src: str, request: _Request):
        handler = self._handlers.get(request.method)
        if handler is None:
            response = _Response(request.rpc_id, None, f"no handler for {request.method}")
        else:
            try:
                result = yield self.kernel.spawn(
                    handler(src, request.payload),
                    f"{self.name}.handle.{request.method}",
                )
                response = _Response(request.rpc_id, result, None)
            except Exception as error:  # noqa: BLE001 - report to caller
                response = _Response(request.rpc_id, None, repr(error))
        if not self.crashed:
            self.network.send(self.name, src, response, 256)
