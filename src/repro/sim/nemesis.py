"""The nemesis: deterministic, composable, replayable fault scenarios.

The fault-tolerance claims of Section III-H (and the guarantees of
Table I) are only credible if they survive *composed* faults — a crash
in the middle of a forward, a partition during an election, a machine
that is slow but not dead.  The nemesis makes fault schedules
first-class data; the **event vocabulary, schedule generator, and
applied-action log live in** :mod:`repro.chaos_events`, shared with the
live runtime's :class:`repro.live.chaos.LiveNemesis`, so one seeded
scenario runs under the simulation kernel *and* against real processes
and produces the same :class:`~repro.chaos_events.NemesisLog`
fingerprint (the schedule-portability guarantee).

This module is the **sim interpreter** of that vocabulary:

* :meth:`Nemesis.schedule` turns a scenario into kernel processes that
  apply each fault at its time and revert it after its duration;
* every applied action is appended to the log with its *scheduled*
  time (the virtual clock lands on it exactly), so
  :meth:`~repro.chaos_events.NemesisLog.fingerprint` is identical
  across replays of a seed;
* :meth:`Nemesis.random_schedule` draws a scenario from a named,
  seeded RNG stream — a failing seed is a reproducible bug report.

The module deliberately knows nothing about CooLSM node types: targets
are any objects with ``crash()``/``recover()`` (fault-stop),
:class:`~repro.sim.machine.Machine` instances (slowdowns, partitions),
or :class:`~repro.sim.clock.LooseClock` instances (skew spikes).
:meth:`Nemesis.for_cluster` wires all three maps from a built cluster
by duck typing, keeping ``sim`` free of ``core`` imports.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence

from repro import chaos_events
from repro.chaos_events import (
    CrashNode,
    DropBurst,
    NemesisEvent,
    NemesisLog,
    NemesisRecord,
    NemesisStats,
    PartitionPair,
    SkewClock,
    SlowMachine,
    flapping_partition,
    rolling_partitions,
)

from .kernel import Kernel, Process
from .machine import Machine
from .network import Network

__all__ = [
    "CrashNode",
    "DropBurst",
    "Nemesis",
    "NemesisEvent",
    "NemesisLog",
    "NemesisRecord",
    "NemesisStats",
    "PartitionPair",
    "SkewClock",
    "SlowMachine",
    "flapping_partition",
    "rolling_partitions",
]


class Nemesis:
    """Schedules fault scenarios against a running simulation.

    Args:
        kernel: The simulation kernel events run on.
        network: The network whose fault plan is manipulated.
        nodes: name -> object with ``crash()``/``recover()``.
        machines: name -> :class:`Machine` (slowdowns; names are also
            what :class:`PartitionPair` refers to).
        clocks: name -> :class:`~repro.sim.clock.LooseClock`.
        rng: Seeded stream for :meth:`random_schedule` draws.
    """

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        nodes: dict[str, Any] | None = None,
        machines: dict[str, Machine] | None = None,
        clocks: dict[str, Any] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.nodes = dict(nodes or {})
        self.machines = dict(machines or {})
        self.clocks = dict(clocks or {})
        self.rng = rng or random.Random(0)
        self.log = NemesisLog()
        self.stats = NemesisStats()
        self._processes: list[Process] = []

    @classmethod
    def for_cluster(cls, cluster) -> "Nemesis":
        """Wire a nemesis from a built cluster (duck-typed: any object
        with kernel/network/rngs plus the standard node lists works)."""
        nodes: dict[str, Any] = {}
        for group in (
            getattr(cluster, "ingestors", []),
            getattr(cluster, "compactors", []),
            getattr(cluster, "readers", []),
        ):
            for node in group:
                nodes[node.name] = node
        for replica_group in getattr(cluster, "replica_groups", []):
            for replica in replica_group.replicas:
                nodes[replica.name] = replica
        monolith = getattr(cluster, "monolith", None)
        if monolith is not None:
            nodes[monolith.name] = monolith
        return cls(
            cluster.kernel,
            cluster.network,
            nodes=nodes,
            machines=dict(getattr(cluster, "machines", {})),
            clocks=dict(getattr(cluster, "clocks", {})),
            rng=cluster.rngs.stream("nemesis"),
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, events: Iterable[NemesisEvent]) -> list[Process]:
        """Spawn one process per event; returns the process handles so
        callers can barrier on the whole scenario finishing."""
        spawned = []
        for event in events:
            self._validate(event)
            runner = self._runner_for(event)
            spawned.append(
                self.kernel.spawn(runner, f"nemesis.{type(event).__name__}")
            )
        self._processes.extend(spawned)
        return spawned

    def done(self) -> bool:
        """True once every scheduled event has been applied and reverted."""
        return all(p.triggered for p in self._processes)

    def _validate(self, event: NemesisEvent) -> None:
        """Fail fast on typo'd targets at schedule time, instead of a
        bare ``KeyError`` surfacing mid-run inside the kernel."""

        def known(name: str, table: dict, kind: str) -> None:
            # An empty table means the caller wired the Nemesis by hand
            # without that facet; don't reject what we can't check.
            if table and name not in table:
                raise ValueError(
                    f"nemesis: unknown {kind} {name!r}; "
                    f"known: {', '.join(sorted(table))}"
                )

        if isinstance(event, CrashNode):
            known(event.target, self.nodes, "node")
        elif isinstance(event, SlowMachine):
            known(event.machine, self.machines, "machine")
        elif isinstance(event, SkewClock):
            known(event.target, self.clocks, "clock")
        elif isinstance(event, PartitionPair):
            known(event.machine_a, self.machines, "machine")
            known(event.machine_b, self.machines, "machine")

    def _runner_for(self, event: NemesisEvent):
        if isinstance(event, CrashNode):
            return self._run_crash(event)
        if isinstance(event, PartitionPair):
            return self._run_partition(event)
        if isinstance(event, DropBurst):
            return self._run_drop_burst(event)
        if isinstance(event, SlowMachine):
            return self._run_slowdown(event)
        if isinstance(event, SkewClock):
            return self._run_skew(event)
        raise TypeError(f"unknown nemesis event: {event!r}")

    def _sleep_until(self, at: float):
        yield self.kernel.timeout(max(0.0, at - self.kernel.now))

    def _log(self, time: float, action: str, target: str) -> None:
        # Scheduled time goes in the fingerprinted field; the virtual
        # clock (equal unless an event was scheduled in the past) in
        # ``wall`` — mirroring what the live nemesis records.
        self.log.add(time, action, target, wall=self.kernel.now)

    def _run_crash(self, event: CrashNode):
        node = self.nodes[event.target]
        yield from self._sleep_until(event.at)
        node.crash()
        self.stats.crashes += 1
        self._log(event.at, "crash", event.target)
        if event.downtime is None:
            return
        yield self.kernel.timeout(event.downtime)
        node.recover()
        self.stats.restarts += 1
        self._log(event.at + event.downtime, "recover", event.target)

    def _run_partition(self, event: PartitionPair):
        yield from self._sleep_until(event.at)
        self.network.faults.partition(event.machine_a, event.machine_b)
        self.stats.partitions += 1
        key = f"{event.machine_a}|{event.machine_b}"
        self._log(event.at, "partition", key)
        yield self.kernel.timeout(event.duration)
        self.network.heal_partition(event.machine_a, event.machine_b)
        self.stats.heals += 1
        self._log(event.at + event.duration, "heal", key)

    def _run_drop_burst(self, event: DropBurst):
        yield from self._sleep_until(event.at)
        previous = self.network.faults.drop_probability
        self.network.faults.drop_probability = event.probability
        self.stats.drop_bursts += 1
        self._log(event.at, "drop_burst", f"p={event.probability}")
        yield self.kernel.timeout(event.duration)
        self.network.faults.drop_probability = previous
        self._log(event.at + event.duration, "drop_restore", f"p={previous}")

    def _run_slowdown(self, event: SlowMachine):
        machine = self.machines[event.machine]
        yield from self._sleep_until(event.at)
        previous = machine.speed
        machine.speed = previous / event.factor
        self.stats.slowdowns += 1
        self._log(event.at, "slow", event.machine)
        yield self.kernel.timeout(event.duration)
        machine.speed = previous
        self._log(event.at + event.duration, "restore_speed", event.machine)

    def _run_skew(self, event: SkewClock):
        clock = self.clocks[event.target]
        yield from self._sleep_until(event.at)
        clock.inject_skew(event.skew)
        self.stats.skews += 1
        self._log(event.at, "skew", event.target)
        yield self.kernel.timeout(event.duration)
        clock.inject_skew(0.0)
        self._log(event.at + event.duration, "unskew", event.target)

    # ------------------------------------------------------------------
    # Random scenario generation (seeded, hence replayable)
    # ------------------------------------------------------------------
    def random_schedule(
        self,
        horizon: float,
        crashes: int = 2,
        partitions: int = 2,
        drop_bursts: int = 1,
        slowdowns: int = 1,
        skews: int = 0,
        mean_downtime: float = 0.5,
        max_skew: float = 0.05,
        crash_targets: Sequence[str] | None = None,
    ) -> list[NemesisEvent]:
        """Draw a scenario from this nemesis's seeded RNG stream (the
        shared :func:`repro.chaos_events.random_schedule` draw, so sim
        and live nemeses generate identical scenarios per seed)."""
        return chaos_events.random_schedule(
            self.rng,
            horizon,
            node_names=list(crash_targets or self.nodes),
            machine_names=list(self.machines),
            clock_names=list(self.clocks),
            crashes=crashes,
            partitions=partitions,
            drop_bursts=drop_bursts,
            slowdowns=slowdowns,
            skews=skews,
            mean_downtime=mean_downtime,
            max_skew=max_skew,
        )
