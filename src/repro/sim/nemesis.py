"""The nemesis: deterministic, composable, replayable fault scenarios.

The fault-tolerance claims of Section III-H (and the guarantees of
Table I) are only credible if they survive *composed* faults — a crash
in the middle of a forward, a partition during an election, a machine
that is slow but not dead.  Before this module, faults were injected ad
hoc per test: a static ``drop_probability`` here, a manual
``FaultPlan.partition()`` there.  The nemesis makes fault schedules
first-class data:

* a **scenario** is a list of fault events (:class:`CrashNode`,
  :class:`PartitionPair`, :class:`DropBurst`, :class:`SlowMachine`,
  :class:`SkewClock`), each with an absolute simulation time;
* :meth:`Nemesis.schedule` turns the scenario into kernel processes
  that apply each fault at its time and revert it after its duration;
* every applied action is appended to :class:`NemesisLog`, whose
  :meth:`~NemesisLog.fingerprint` lets tests assert that two runs of
  the same seed executed the *identical* fault sequence;
* :meth:`Nemesis.random_schedule` draws a scenario from a named,
  seeded RNG stream, so chaotic runs replay bit-identically — a
  failing seed is a reproducible bug report.

The module deliberately knows nothing about CooLSM node types: targets
are any objects with ``crash()``/``recover()`` (fault-stop),
:class:`~repro.sim.machine.Machine` instances (slowdowns, partitions),
or :class:`~repro.sim.clock.LooseClock` instances (skew spikes).
:meth:`Nemesis.for_cluster` wires all three maps from a built cluster
by duck typing, keeping ``sim`` free of ``core`` imports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from .kernel import Kernel, Process
from .machine import Machine
from .network import Network


# ----------------------------------------------------------------------
# Scenario events (pure data; times are absolute simulation seconds)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CrashNode:
    """Fail-stop ``target`` at ``at``; restart after ``downtime``
    (``None`` = stays down for the rest of the run)."""

    target: str
    at: float
    downtime: float | None = None


@dataclass(frozen=True, slots=True)
class PartitionPair:
    """Partition the two *machines* at ``at``; heal after ``duration``.

    Traffic between the machines is held (TCP model: retransmitted, not
    lost) and flushed at heal time.
    """

    machine_a: str
    machine_b: str
    at: float
    duration: float


@dataclass(frozen=True, slots=True)
class DropBurst:
    """Raise the network drop probability to ``probability`` during
    [at, at + duration), then restore the previous value."""

    probability: float
    at: float
    duration: float


@dataclass(frozen=True, slots=True)
class SlowMachine:
    """Gray failure: divide ``machine``'s speed by ``factor`` during the
    window — the node answers, just slowly (no failure detector fires
    cleanly on it)."""

    machine: str
    at: float
    duration: float
    factor: float = 4.0


@dataclass(frozen=True, slots=True)
class SkewClock:
    """Clock-skew spike: add ``skew`` seconds to ``target``'s loose
    clock during the window (deliberately violating the δ bound, to
    probe the 2δ ordering machinery)."""

    target: str
    at: float
    duration: float
    skew: float


NemesisEvent = CrashNode | PartitionPair | DropBurst | SlowMachine | SkewClock


def flapping_partition(
    machine_a: str,
    machine_b: str,
    at: float,
    up: float,
    down: float,
    flaps: int,
) -> list[PartitionPair]:
    """A link that flaps: ``flaps`` partition windows of length ``down``
    separated by ``up`` seconds of connectivity, starting at ``at``."""
    if flaps < 1:
        raise ValueError("flaps must be >= 1")
    events = []
    start = at
    for __ in range(flaps):
        events.append(PartitionPair(machine_a, machine_b, start, down))
        start += down + up
    return events


def rolling_partitions(
    machines: Sequence[str], peer: str, at: float, duration: float, gap: float = 0.0
) -> list[PartitionPair]:
    """Partition each machine in ``machines`` from ``peer`` in turn —
    a rolling isolation sweep."""
    events = []
    start = at
    for machine in machines:
        events.append(PartitionPair(machine, peer, start, duration))
        start += duration + gap
    return events


# ----------------------------------------------------------------------
# Applied-action log (for replay assertions)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class NemesisRecord:
    """One applied or reverted fault action."""

    time: float
    action: str
    target: str


class NemesisLog:
    """Append-only record of what the nemesis actually did and when."""

    def __init__(self) -> None:
        self.records: list[NemesisRecord] = []

    def add(self, time: float, action: str, target: str) -> None:
        self.records.append(NemesisRecord(time, action, target))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def fingerprint(self) -> tuple:
        """Hashable summary; equal across replays of the same seed."""
        return tuple((r.time, r.action, r.target) for r in self.records)


@dataclass(slots=True)
class NemesisStats:
    """Counters, split by fault family."""

    crashes: int = 0
    restarts: int = 0
    partitions: int = 0
    heals: int = 0
    drop_bursts: int = 0
    slowdowns: int = 0
    skews: int = 0


class Nemesis:
    """Schedules fault scenarios against a running simulation.

    Args:
        kernel: The simulation kernel events run on.
        network: The network whose fault plan is manipulated.
        nodes: name -> object with ``crash()``/``recover()``.
        machines: name -> :class:`Machine` (slowdowns; names are also
            what :class:`PartitionPair` refers to).
        clocks: name -> :class:`~repro.sim.clock.LooseClock`.
        rng: Seeded stream for :meth:`random_schedule` draws.
    """

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        nodes: dict[str, Any] | None = None,
        machines: dict[str, Machine] | None = None,
        clocks: dict[str, Any] | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.nodes = dict(nodes or {})
        self.machines = dict(machines or {})
        self.clocks = dict(clocks or {})
        self.rng = rng or random.Random(0)
        self.log = NemesisLog()
        self.stats = NemesisStats()
        self._processes: list[Process] = []

    @classmethod
    def for_cluster(cls, cluster) -> "Nemesis":
        """Wire a nemesis from a built cluster (duck-typed: any object
        with kernel/network/rngs plus the standard node lists works)."""
        nodes: dict[str, Any] = {}
        for group in (
            getattr(cluster, "ingestors", []),
            getattr(cluster, "compactors", []),
            getattr(cluster, "readers", []),
        ):
            for node in group:
                nodes[node.name] = node
        for replica_group in getattr(cluster, "replica_groups", []):
            for replica in replica_group.replicas:
                nodes[replica.name] = replica
        monolith = getattr(cluster, "monolith", None)
        if monolith is not None:
            nodes[monolith.name] = monolith
        return cls(
            cluster.kernel,
            cluster.network,
            nodes=nodes,
            machines=dict(getattr(cluster, "machines", {})),
            clocks=dict(getattr(cluster, "clocks", {})),
            rng=cluster.rngs.stream("nemesis"),
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, events: Iterable[NemesisEvent]) -> list[Process]:
        """Spawn one process per event; returns the process handles so
        callers can barrier on the whole scenario finishing."""
        spawned = []
        for event in events:
            self._validate(event)
            runner = self._runner_for(event)
            spawned.append(
                self.kernel.spawn(runner, f"nemesis.{type(event).__name__}")
            )
        self._processes.extend(spawned)
        return spawned

    def done(self) -> bool:
        """True once every scheduled event has been applied and reverted."""
        return all(p.triggered for p in self._processes)

    def _validate(self, event: NemesisEvent) -> None:
        """Fail fast on typo'd targets at schedule time, instead of a
        bare ``KeyError`` surfacing mid-run inside the kernel."""

        def known(name: str, table: dict, kind: str) -> None:
            # An empty table means the caller wired the Nemesis by hand
            # without that facet; don't reject what we can't check.
            if table and name not in table:
                raise ValueError(
                    f"nemesis: unknown {kind} {name!r}; "
                    f"known: {', '.join(sorted(table))}"
                )

        if isinstance(event, CrashNode):
            known(event.target, self.nodes, "node")
        elif isinstance(event, SlowMachine):
            known(event.machine, self.machines, "machine")
        elif isinstance(event, SkewClock):
            known(event.target, self.clocks, "clock")
        elif isinstance(event, PartitionPair):
            known(event.machine_a, self.machines, "machine")
            known(event.machine_b, self.machines, "machine")

    def _runner_for(self, event: NemesisEvent):
        if isinstance(event, CrashNode):
            return self._run_crash(event)
        if isinstance(event, PartitionPair):
            return self._run_partition(event)
        if isinstance(event, DropBurst):
            return self._run_drop_burst(event)
        if isinstance(event, SlowMachine):
            return self._run_slowdown(event)
        if isinstance(event, SkewClock):
            return self._run_skew(event)
        raise TypeError(f"unknown nemesis event: {event!r}")

    def _sleep_until(self, at: float):
        yield self.kernel.timeout(max(0.0, at - self.kernel.now))

    def _run_crash(self, event: CrashNode):
        node = self.nodes[event.target]
        yield from self._sleep_until(event.at)
        node.crash()
        self.stats.crashes += 1
        self.log.add(self.kernel.now, "crash", event.target)
        if event.downtime is None:
            return
        yield self.kernel.timeout(event.downtime)
        node.recover()
        self.stats.restarts += 1
        self.log.add(self.kernel.now, "recover", event.target)

    def _run_partition(self, event: PartitionPair):
        yield from self._sleep_until(event.at)
        self.network.faults.partition(event.machine_a, event.machine_b)
        self.stats.partitions += 1
        key = f"{event.machine_a}|{event.machine_b}"
        self.log.add(self.kernel.now, "partition", key)
        yield self.kernel.timeout(event.duration)
        self.network.heal_partition(event.machine_a, event.machine_b)
        self.stats.heals += 1
        self.log.add(self.kernel.now, "heal", key)

    def _run_drop_burst(self, event: DropBurst):
        yield from self._sleep_until(event.at)
        previous = self.network.faults.drop_probability
        self.network.faults.drop_probability = event.probability
        self.stats.drop_bursts += 1
        self.log.add(self.kernel.now, "drop_burst", f"p={event.probability}")
        yield self.kernel.timeout(event.duration)
        self.network.faults.drop_probability = previous
        self.log.add(self.kernel.now, "drop_restore", f"p={previous}")

    def _run_slowdown(self, event: SlowMachine):
        machine = self.machines[event.machine]
        yield from self._sleep_until(event.at)
        previous = machine.speed
        machine.speed = previous / event.factor
        self.stats.slowdowns += 1
        self.log.add(self.kernel.now, "slow", event.machine)
        yield self.kernel.timeout(event.duration)
        machine.speed = previous
        self.log.add(self.kernel.now, "restore_speed", event.machine)

    def _run_skew(self, event: SkewClock):
        clock = self.clocks[event.target]
        yield from self._sleep_until(event.at)
        clock.inject_skew(event.skew)
        self.stats.skews += 1
        self.log.add(self.kernel.now, "skew", event.target)
        yield self.kernel.timeout(event.duration)
        clock.inject_skew(0.0)
        self.log.add(self.kernel.now, "unskew", event.target)

    # ------------------------------------------------------------------
    # Random scenario generation (seeded, hence replayable)
    # ------------------------------------------------------------------
    def random_schedule(
        self,
        horizon: float,
        crashes: int = 2,
        partitions: int = 2,
        drop_bursts: int = 1,
        slowdowns: int = 1,
        skews: int = 0,
        mean_downtime: float = 0.5,
        max_skew: float = 0.05,
        crash_targets: Sequence[str] | None = None,
    ) -> list[NemesisEvent]:
        """Draw a scenario from this nemesis's seeded RNG stream.

        Target choices iterate sorted name lists, so the draw depends
        only on the seed and the deployment shape — the same seed
        always yields the same scenario.
        """
        rng = self.rng
        events: list[NemesisEvent] = []
        node_names = sorted(crash_targets or self.nodes)
        machine_names = sorted(self.machines)
        clock_names = sorted(self.clocks)
        for __ in range(crashes):
            if not node_names:
                break
            events.append(
                CrashNode(
                    rng.choice(node_names),
                    rng.uniform(0.0, horizon),
                    rng.uniform(0.5, 1.5) * mean_downtime,
                )
            )
        for __ in range(partitions):
            if len(machine_names) < 2:
                break
            a, b = rng.sample(machine_names, 2)
            events.append(
                PartitionPair(a, b, rng.uniform(0.0, horizon), rng.uniform(0.5, 1.5) * mean_downtime)
            )
        for __ in range(drop_bursts):
            events.append(
                DropBurst(
                    rng.uniform(0.1, 0.4),
                    rng.uniform(0.0, horizon),
                    rng.uniform(0.5, 1.5) * mean_downtime,
                )
            )
        for __ in range(slowdowns):
            if not machine_names:
                break
            events.append(
                SlowMachine(
                    rng.choice(machine_names),
                    rng.uniform(0.0, horizon),
                    rng.uniform(0.5, 1.5) * mean_downtime,
                    factor=rng.uniform(2.0, 8.0),
                )
            )
        for __ in range(skews):
            if not clock_names:
                break
            events.append(
                SkewClock(
                    rng.choice(clock_names),
                    rng.uniform(0.0, horizon),
                    rng.uniform(0.5, 1.5) * mean_downtime,
                    skew=rng.uniform(-max_skew, max_skew),
                )
            )
        return sorted(events, key=lambda e: e.at)
