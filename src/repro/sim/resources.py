"""Shared resources for processes: FIFO resources and stores.

:class:`Resource` models a pool of identical servers (e.g. the cores of
a machine): processes request a unit, hold it for some time, and release
it; excess requests queue FIFO.  :class:`Store` is an unbounded FIFO
queue of items used as node inboxes.

Both classes are written against the effect protocol
(:mod:`repro.effects`) — they only ever call ``kernel.event()`` and
``kernel.timeout()`` — so the same implementations back the simulator
and the live asyncio runtime.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.effects import EffectKernel, Waitable

from .kernel import SimError


class Resource:
    """A FIFO pool of ``capacity`` interchangeable units."""

    def __init__(self, kernel: EffectKernel, capacity: int) -> None:
        if capacity <= 0:
            raise SimError("capacity must be positive")
        self.kernel = kernel
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Waitable] = deque()

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Waitable:
        """An event that fires when a unit is granted to the caller."""
        grant = self.kernel.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            grant.succeed()
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Return a unit; the oldest waiter (if any) is granted it."""
        if self.in_use <= 0:
            raise SimError("release without matching request")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def use(self, duration: float):
        """Process helper: acquire a unit, hold for ``duration``, release.

        Usage: ``yield from resource.use(1.5)``.
        """
        yield self.request()
        try:
            yield self.kernel.timeout(duration)
        finally:
            self.release()


class Store:
    """An unbounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, kernel: EffectKernel) -> None:
        self.kernel = kernel
        self._items: deque[Any] = deque()
        self._getters: deque[Waitable] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue an item, waking the oldest waiting getter."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Waitable:
        """An event that fires with the next item (immediately if any)."""
        event = self.kernel.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
