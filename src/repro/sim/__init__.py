"""Deterministic discrete-event simulation substrate.

Replaces the paper's AWS testbed: machines with bounded cores
(:mod:`repro.sim.machine`), a wide-area network with paper-calibrated
RTTs and TCP-like ordered delivery (:mod:`repro.sim.network`,
:mod:`repro.sim.regions`), request/response RPC (:mod:`repro.sim.rpc`),
and loosely synchronised clocks (:mod:`repro.sim.clock`), all driven by
a generator-coroutine event kernel (:mod:`repro.sim.kernel`).
"""

from .clock import LooseClock, concurrent, definitely_after
from .kernel import AllOf, AnyOf, Event, Interrupted, Kernel, Process, SimError, Timeout
from .machine import DEFAULT_CORES, Machine
from .nemesis import (
    CrashNode,
    DropBurst,
    Nemesis,
    NemesisLog,
    NemesisRecord,
    NemesisStats,
    PartitionPair,
    SkewClock,
    SlowMachine,
    flapping_partition,
    rolling_partitions,
)
from .network import FaultPlan, Network, NetworkStats
from .regions import (
    CLOUD_REGION,
    EDGE_REGIONS,
    INTRA_DC_RTT,
    LOOPBACK_RTT,
    LatencyModel,
    Region,
    one_way,
    rtt,
)
from .resources import Resource, Store
from .rng import RngRegistry
from .rpc import RemoteError, RpcNode, RpcTimeout

__all__ = [
    "AllOf",
    "AnyOf",
    "CLOUD_REGION",
    "CrashNode",
    "DEFAULT_CORES",
    "DropBurst",
    "EDGE_REGIONS",
    "Event",
    "FaultPlan",
    "INTRA_DC_RTT",
    "Interrupted",
    "Kernel",
    "LOOPBACK_RTT",
    "LatencyModel",
    "LooseClock",
    "Machine",
    "Nemesis",
    "NemesisLog",
    "NemesisRecord",
    "NemesisStats",
    "Network",
    "NetworkStats",
    "PartitionPair",
    "Process",
    "Region",
    "RemoteError",
    "Resource",
    "RngRegistry",
    "RpcNode",
    "RpcTimeout",
    "SimError",
    "SkewClock",
    "SlowMachine",
    "Store",
    "Timeout",
    "concurrent",
    "definitely_after",
    "flapping_partition",
    "one_way",
    "rolling_partitions",
    "rtt",
]
