"""A deterministic discrete-event simulation kernel.

The paper evaluates CooLSM on a fleet of EC2 machines across five AWS
regions.  We reproduce the *dynamics* of that testbed — queueing on
machine cores, wide-area message latency, asynchronous compaction — with
a discrete-event simulator.  This module is the scheduler at the bottom:
an event heap plus generator-coroutine processes, in the style of SimPy
but self-contained and fully deterministic (ties broken by insertion
order, no wall-clock anywhere).

Processes are Python generators that ``yield`` waitables::

    def worker(kernel):
        yield kernel.timeout(1.5)          # sleep 1.5 simulated seconds
        result = yield some_event          # wait for an event, get its value
        yield kernel.all_of([e1, e2])      # barrier

Spawn with :meth:`Kernel.spawn`; a :class:`Process` is itself an event
that fires with the generator's return value, so processes compose.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

ProcessGen = Generator["Event", Any, Any]


class SimError(Exception):
    """Base class for simulator errors."""


class Interrupted(SimError):
    """Raised inside a process that another process interrupted."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, either with a value
    (:meth:`succeed`) or an exception (:meth:`fail`).  Waiting processes
    are resumed in the order they started waiting.
    """

    __slots__ = ("kernel", "callbacks", "triggered", "ok", "value", "defused")

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.callbacks: list[Callable[[Event], None]] = []
        self.triggered = False
        self.ok = True
        self.value: Any = None
        # A failed event with no waiters re-raises inside Kernel.run()
        # so bugs cannot pass silently; set defused=True to suppress.
        self.defused = False

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event with a value; waiters resume this tick."""
        if self.triggered:
            raise SimError("event already triggered")
        self.triggered = True
        self.value = value
        self.kernel._schedule_now(self._dispatch)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception; waiters see it raised."""
        if self.triggered:
            raise SimError("event already triggered")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.kernel._schedule_now(self._dispatch)
        return self

    def _dispatch(self) -> None:
        callbacks, self.callbacks = self.callbacks, []
        if not callbacks and not self.ok and not self.defused:
            raise self.value
        for callback in callbacks:
            callback(self)

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.triggered:
            # Already fired: deliver on the next tick, preserving order.
            self.kernel._schedule_now(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None) -> None:
        super().__init__(kernel)
        if delay < 0:
            raise SimError(f"negative timeout: {delay}")
        kernel._schedule_at(kernel.now + delay, lambda: self._fire(value))

    def _fire(self, value: Any) -> None:
        self.triggered = True
        self.value = value
        self._dispatch()


class Process(Event):
    """A running generator coroutine; fires when the generator returns."""

    __slots__ = ("generator", "name", "_waiting_on", "_interrupt")

    def __init__(self, kernel: "Kernel", generator: ProcessGen, name: str = "") -> None:
        super().__init__(kernel)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        self._interrupt: BaseException | None = None
        kernel._schedule_now(lambda: self._resume(None, None))

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, reason: str = "") -> None:
        """Raise :class:`Interrupted` inside the process at its next wait."""
        if self.triggered:
            return
        exc = Interrupted(reason)
        if self._waiting_on is not None:
            waiting, self._waiting_on = self._waiting_on, None
            # Detach from the event we were waiting on.
            try:
                waiting.callbacks.remove(self._on_event)
            except ValueError:
                pass
            self.kernel._schedule_now(lambda: self._resume(None, exc))
        else:
            self._interrupt = exc

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: BaseException | None) -> None:
        if self.triggered:
            return
        if self._interrupt is not None and exc is None:
            exc, self._interrupt = self._interrupt, None
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.triggered = True
            self.value = stop.value
            self.kernel._schedule_now(self._dispatch)
            return
        except Interrupted:
            self.triggered = True
            self.value = None
            self.kernel._schedule_now(self._dispatch)
            return
        except BaseException as error:  # noqa: BLE001 - deliver to waiters
            self.triggered = True
            self.ok = False
            self.value = error
            self.kernel._schedule_now(self._dispatch)
            return
        if not isinstance(target, Event):
            raise SimError(
                f"process {self.name!r} yielded {type(target).__name__}, not an Event"
            )
        self._waiting_on = target
        target._add_callback(self._on_event)


class AllOf(Event):
    """Fires once every child event has fired; value is the list of values."""

    __slots__ = ("_pending", "_values")

    def __init__(self, kernel: "Kernel", events: Iterable[Event]) -> None:
        super().__init__(kernel)
        events = list(events)
        self._pending = len(events)
        self._values: list[Any] = [None] * len(events)
        if not events:
            self.succeed([])
            return
        for index, event in enumerate(events):
            event._add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_fire(event: Event) -> None:
            if self.triggered:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self._values[index] = event.value
            self._pending -= 1
            if self._pending == 0:
                self.succeed(list(self._values))

        return on_fire


class AnyOf(Event):
    """Fires when the first child event fires; value is (index, value)."""

    __slots__ = ()

    def __init__(self, kernel: "Kernel", events: Iterable[Event]) -> None:
        super().__init__(kernel)
        for index, event in enumerate(events):
            event._add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_fire(event: Event) -> None:
            if self.triggered:
                return
            if event.ok:
                self.succeed((index, event.value))
            else:
                self.fail(event.value)

        return on_fire


class Kernel:
    """The event loop: a time-ordered heap of callbacks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._processes_spawned = 0
        self.events_dispatched = 0
        # Schedule hooks: observers called with the dispatch time of
        # every executed event.  The verification harness uses them to
        # fingerprint a run's exact schedule (event count + times), so
        # replay-exactness is asserted on the *executed* interleaving,
        # not just on its observable outputs.  Empty (the default) costs
        # one truthiness check per event.
        self._schedule_hooks: list[Callable[[float], None]] = []

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def _schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        if time < self.now:
            raise SimError(f"cannot schedule in the past ({time} < {self.now})")
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, callback))

    def _schedule_now(self, callback: Callable[[], None]) -> None:
        self._schedule_at(self.now, callback)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def add_schedule_hook(self, hook: Callable[[float], None]) -> None:
        """Register an observer invoked with each executed event's time."""
        self._schedule_hooks.append(hook)

    def remove_schedule_hook(self, hook: Callable[[float], None]) -> None:
        """Unregister a previously added schedule hook."""
        self._schedule_hooks.remove(hook)

    def _dispatch_one(self, time: float, callback: Callable[[], None]) -> None:
        self.now = time
        self.events_dispatched += 1
        if self._schedule_hooks:
            for hook in self._schedule_hooks:
                hook(time)
        callback()

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: ProcessGen, name: str = "") -> Process:
        """Start a process; returns the (awaitable) Process handle."""
        self._processes_spawned += 1
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def run(self, until: float | None = None) -> float:
        """Execute events until the heap drains or ``until`` is reached.

        Returns the simulation time at which execution stopped.
        """
        while self._heap:
            time, __, callback = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self._dispatch_one(time, callback)
        if until is not None:
            self.now = max(self.now, until)
        return self.now

    def run_process(self, generator: ProcessGen, name: str = "") -> Any:
        """Spawn a process, run until *it* completes, and return its value.

        Stops as soon as the process finishes — background periodic
        processes (heartbeat monitors, retry timers) do not keep the
        run alive.  Raises if the process raised, or if the event heap
        drains before it completes (deadlock).
        """
        process = self.spawn(generator, name)
        while not process.triggered and self._heap:
            time, __, callback = heapq.heappop(self._heap)
            self._dispatch_one(time, callback)
        if not process.triggered:
            raise SimError(f"process {process.name!r} did not finish (deadlock?)")
        if not process.ok:
            raise process.value
        return process.value
