"""Named, seeded random streams.

Every stochastic element of the simulation (network jitter, workload key
choice, clock offsets, ...) draws from its own named stream, so changing
one consumer never perturbs another and whole experiments replay
bit-identically from a single seed.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created deterministically on first use)."""
        if name not in self._streams:
            digest = hashlib.blake2b(
                f"{self.seed}:{name}".encode("utf-8"), digest_size=8
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest, "little"))
        return self._streams[name]
