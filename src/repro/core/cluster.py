"""Deployment builder: assemble any CooLSM topology from a spec.

A :class:`ClusterSpec` describes one cell of the paper's design space —
how many Ingestors (and where), how many partitioned or overlapping
Compactors, how many Readers, or the monolithic baseline — and
:func:`build_cluster` wires the simulated machines, network, clocks,
and nodes.  The resulting :class:`Cluster` spawns clients and runs the
simulation.

Placement conventions follow the paper: Compactors and Readers live in
the cloud region (Virginia by default); Ingestors live at edge regions;
clients are placed next to whatever they drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsm.errors import InvalidConfigError
from repro.sim.clock import LooseClock
from repro.sim.kernel import Kernel
from repro.sim.machine import DEFAULT_CORES, Machine
from repro.sim.network import FaultPlan, Network
from repro.sim.regions import CLOUD_REGION, LatencyModel, Region
from repro.sim.rng import RngRegistry

from .client import Client
from .compactor import Compactor
from .config import CooLSMConfig
from .history import History
from .ingestor import Ingestor
from .keyspace import Partitioning
from .monolithic import MonolithicNode
from .reader import Reader


@dataclass(slots=True)
class ClusterSpec:
    """Shape of a deployment.

    Attributes:
        config: Shared CooLSM parameters.
        num_ingestors: Ingestor count (>1 enables the multi-Ingestor
            protocols and Linearizable+Concurrent consistency).
        num_compactors: Compactor count; with ``compactor_replicas > 1``
            consecutive groups of that size overlap on one partition.
        num_readers: Reader (backup) count.
        cloud_region: Where Compactors and Readers are placed.
        ingestor_regions: Region per Ingestor (cycled if shorter);
            defaults to the cloud region.
        reader_regions: Region per Reader; defaults to the cloud region.
        ingestors_share_machine: Place all Ingestors on one machine
            (Figure 5's "colocated scaling").
        ingestors_feed_readers: Section III-D.3 variant — Ingestors push
            their L1 snapshot to the Readers after every minor
            compaction, making Reader state fresher at the cost of
            extra coordination traffic.
        monolithic: Build the single-machine baseline instead.
        sharded: Range-shard the key space across the Ingestors: each
            key has exactly one owner, clients route by a versioned
            shard map and chase WrongShard redirects, and online splits
            (:func:`repro.live.membership.split_ingestor_shard`) move
            ranges between Ingestors at runtime.  Disables the
            overlapping multi-Ingestor read protocol — sharded fleets
            are Linearizable via single ownership plus epoch fencing.
        spare_ingestors: Extra Ingestors (named after the active ones)
            built with the cluster but owning no shards; splits hand
            them ranges at higher epochs.
        seed: RNG seed for the whole simulation.
        drop_probability: Network fault injection.
        tolerated_failures: f > 0 replicates each Compactor's operation
            log to 2f replicas (Section III-H); Ingestor acks then wait
            for a replication majority, and heartbeat-driven Paxos
            elections promote a replica when the leader fails.
    """

    config: CooLSMConfig = field(default_factory=CooLSMConfig)
    num_ingestors: int = 1
    num_compactors: int = 1
    num_readers: int = 0
    compactor_replicas: int = 1
    cloud_region: Region = CLOUD_REGION
    ingestor_regions: tuple[Region, ...] | None = None
    reader_regions: tuple[Region, ...] | None = None
    ingestors_share_machine: bool = False
    ingestors_feed_readers: bool = False
    monolithic: bool = False
    sharded: bool = False
    spare_ingestors: int = 0
    seed: int = 0
    drop_probability: float = 0.0
    tolerated_failures: int = 0

    @property
    def multi_ingestor(self) -> bool:
        # Sharded deployments use disjoint ownership: one owner per
        # key, never the overlapping 2δ read protocol.
        return self.num_ingestors > 1 and not self.sharded

    def initial_shard_map(self):
        """Epoch-1 shard map (``None`` when unsharded): the active
        Ingestors split the key space uniformly; spares own nothing."""
        if not self.sharded:
            return None
        from .shard import ShardMap

        return ShardMap.uniform(
            self.config.key_range,
            [f"ingestor-{i}" for i in range(self.num_ingestors)],
        )


class Cluster:
    """A wired deployment: machines, nodes, clocks, shared history."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.config = spec.config
        self.kernel = Kernel()
        self.rngs = RngRegistry(spec.seed)
        self.network = Network(
            self.kernel,
            self.rngs,
            LatencyModel(),
            FaultPlan(drop_probability=spec.drop_probability),
        )
        self.history = History()
        self.machines: dict[str, Machine] = {}
        self.clocks: dict[str, LooseClock] = {}
        self.ingestors: list[Ingestor] = []
        self.compactors: list[Compactor] = []
        self.readers: list[Reader] = []
        self.monolith: MonolithicNode | None = None
        self.clients: list[Client] = []
        self.partitioning: Partitioning | None = None
        self.replica_groups: list = []
        self._client_seq = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def machine(self, name: str, region: Region, cores: int = DEFAULT_CORES, speed: float = 1.0) -> Machine:
        """Create (or fetch) a named machine."""
        if name not in self.machines:
            self.machines[name] = Machine(self.kernel, name, region, cores, speed)
        return self.machines[name]

    def clock_for(self, node_name: str) -> LooseClock:
        clock = LooseClock(
            self.kernel, self.config.delta, self.rngs.stream(f"clock.{node_name}")
        )
        self.clocks[node_name] = clock
        return clock

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def add_client(
        self,
        region: Region | None = None,
        colocate_with: str | None = None,
        ingestors: list[str] | None = None,
        readers: list[str] | None = None,
        record_history: bool = True,
    ) -> Client:
        """Create a client.

        Args:
            region: Place the client on its own machine in this region.
            colocate_with: Instead, place it on the named node's machine
                (e.g. next to "its" Ingestor, as in the paper's write
                experiments).
            ingestors: Ingestor names it may use (default: all; the
                first entry is its primary).
            readers: Reader names it may use (default: all).
            record_history: Append its operations to the shared history.
        """
        self._client_seq += 1
        name = f"client-{self._client_seq}"
        if colocate_with is not None:
            machine = self.network.machine_of(colocate_with)
        else:
            machine = self.machine(
                f"m-{name}", region if region is not None else self.spec.cloud_region
            )
        if ingestors is None:
            if self.monolith is not None:
                ingestors = [self.monolith.name]
            else:
                ingestors = [node.name for node in self.ingestors]
        if readers is None:
            readers = [node.name for node in self.readers]
        client = Client(
            self.kernel,
            self.network,
            machine,
            name,
            self.config,
            self.partitioning,
            ingestors,
            readers,
            multi_ingestor=self.spec.multi_ingestor,
            history=self.history if record_history else None,
            shard_map=self.spec.initial_shard_map(),
        )
        self.clients.append(client)
        return client

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Run the simulation (to quiescence or ``until``)."""
        return self.kernel.run(until)

    def run_process(self, generator, name: str = "driver"):
        """Spawn a driver process and run until it completes."""
        return self.kernel.run_process(generator, name)

    def total_entries(self) -> int:
        """Entries across all node levels (excluding memtables)."""
        nodes = [*self.ingestors, *self.compactors, *self.readers]
        total = sum(node.manifest.total_entries() for node in nodes)
        if self.monolith is not None:
            total += self.monolith.tree.manifest.total_entries()
        return total


def build_cluster(spec: ClusterSpec) -> Cluster:
    """Build and wire a deployment from a spec."""
    cluster = Cluster(spec)
    if spec.monolithic:
        return _build_monolithic(cluster)
    if spec.num_ingestors < 1 or spec.num_compactors < 1:
        raise InvalidConfigError("need at least one Ingestor and one Compactor")
    if spec.num_compactors % spec.compactor_replicas != 0:
        raise InvalidConfigError(
            "num_compactors must be a multiple of compactor_replicas"
        )

    reader_names = [f"reader-{i}" for i in range(spec.num_readers)]
    reader_regions = spec.reader_regions or (spec.cloud_region,)
    for index, name in enumerate(reader_names):
        machine = cluster.machine(
            f"m-{name}", reader_regions[index % len(reader_regions)]
        )
        cluster.readers.append(
            Reader(cluster.kernel, cluster.network, machine, name, spec.config)
        )

    compactor_names = [f"compactor-{i}" for i in range(spec.num_compactors)]
    for reader in cluster.readers:
        reader.set_sources(compactor_names)

    cluster.partitioning = Partitioning.uniform(
        spec.config.key_range, compactor_names, replicas=spec.compactor_replicas
    )
    for name in compactor_names:
        machine = cluster.machine(f"m-{name}", spec.cloud_region)
        if spec.tolerated_failures > 0:
            from repro.replication.replica import ReplicatedCompactor

            replica_names = [
                f"{name}-replica-{r}" for r in range(2 * spec.tolerated_failures)
            ]
            node = ReplicatedCompactor(
                cluster.kernel,
                cluster.network,
                machine,
                name,
                spec.config,
                cluster.clock_for(name),
                replicas=replica_names,
                tolerated_failures=spec.tolerated_failures,
                backups=reader_names,
                multi_ingestor=spec.multi_ingestor,
            )
        else:
            node = Compactor(
                cluster.kernel,
                cluster.network,
                machine,
                name,
                spec.config,
                cluster.clock_for(name),
                backups=reader_names,
                multi_ingestor=spec.multi_ingestor,
            )
        cluster.compactors.append(node)

    active_names = [f"ingestor-{i}" for i in range(spec.num_ingestors)]
    ingestor_names = active_names + [
        f"ingestor-{spec.num_ingestors + i}" for i in range(spec.spare_ingestors)
    ]
    if spec.spare_ingestors and not spec.sharded:
        raise InvalidConfigError("spare_ingestors require sharded=True")
    ingestor_regions = spec.ingestor_regions or (spec.cloud_region,)
    shared_machine = None
    if spec.ingestors_share_machine:
        shared_machine = cluster.machine("m-ingestors", ingestor_regions[0])
    for index, name in enumerate(ingestor_names):
        machine = shared_machine or cluster.machine(
            f"m-{name}", ingestor_regions[index % len(ingestor_regions)]
        )
        peers = (
            [n for n in active_names if n != name] if spec.multi_ingestor else []
        )
        cluster.ingestors.append(
            Ingestor(
                cluster.kernel,
                cluster.network,
                machine,
                name,
                spec.config,
                cluster.clock_for(name),
                cluster.partitioning,
                peers=peers,
                multi_ingestor=spec.multi_ingestor,
                backups=reader_names if spec.ingestors_feed_readers else (),
                rng=cluster.rngs.stream(f"backoff.{name}"),
                shard_map=spec.initial_shard_map(),
            )
        )
    if spec.tolerated_failures > 0:
        from repro.replication.failover import build_replica_groups

        build_replica_groups(cluster, spec.tolerated_failures)
    return cluster


def _build_monolithic(cluster: Cluster) -> Cluster:
    spec = cluster.spec
    machine = cluster.machine("m-mono", spec.cloud_region)
    name = "mono-0"
    cluster.partitioning = Partitioning.uniform(spec.config.key_range, [name])
    cluster.monolith = MonolithicNode(
        cluster.kernel,
        cluster.network,
        machine,
        name,
        spec.config,
        cluster.clock_for(name),
    )
    return cluster
