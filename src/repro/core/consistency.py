"""Consistency checkers for the guarantees of Table I.

Three checkers, one per guarantee the paper defines:

:func:`check_linearizable`
    Classic linearizability (Herlihy & Wing) for per-key register
    histories, decided by a Wing–Gong style search.  Sound and complete
    for histories with *distinct written values* (our test workloads
    always write unique values).

:func:`check_snapshot_linearizable`
    Section III-D.2: for any two consecutive reads of the same object
    served by the same backup, the versions read must not go backwards
    with respect to the write order of the main system, and every value
    read must correspond to a past write.

:func:`check_linearizable_concurrent`
    Definition 1 (Section III-E.2): whenever two operations' loose
    timestamps differ by at least 2δ, the later one must be logically
    ordered after the earlier one.  We verify the observable
    consequences on reads/writes of each key.

Each checker returns a :class:`ConsistencyReport` with the violations
found (empty list = the history satisfies the guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .history import History, Operation


@dataclass(slots=True)
class Violation:
    """One detected consistency violation."""

    rule: str
    detail: str
    operations: tuple[int, ...] = ()


@dataclass(slots=True)
class ConsistencyReport:
    """Outcome of a consistency check."""

    guarantee: str
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, rule: str, detail: str, *ops: Operation) -> None:
        self.violations.append(Violation(rule, detail, tuple(o.op_id for o in ops)))


# ----------------------------------------------------------------------
# Linearizability (per-key register, unique written values)
# ----------------------------------------------------------------------
def check_linearizable(history: History) -> ConsistencyReport:
    """Check linearizability key by key (keys are independent registers)."""
    report = ConsistencyReport("linearizable")
    for key in sorted(history.keys()):
        if not _key_linearizable(history.for_key(key).operations):
            report.violations.append(
                Violation("linearizability", f"key {key!r} has no linearization")
            )
    return report


def _key_linearizable(ops: list[Operation]) -> bool:
    """Wing–Gong search over one key's operations.

    State: the set of completed operations (frozenset of ids) plus the
    value of the register after them; memoised to prune the search.
    Initial register value is None (reads may return None before any
    write).
    """
    if not ops:
        return True
    ops = sorted(ops, key=lambda o: o.invoked_at)
    by_id = {op.op_id: op for op in ops}
    all_ids = frozenset(by_id)
    seen: set[tuple[frozenset[int], bytes | None]] = set()

    def min_pending_return(done: frozenset[int]) -> float:
        pending = [by_id[i].returned_at for i in all_ids - done]
        return min(pending) if pending else float("inf")

    def search(done: frozenset[int], value: bytes | None) -> bool:
        if done == all_ids:
            return True
        state = (done, value)
        if state in seen:
            return False
        seen.add(state)
        # An op can be linearised next only if it was invoked before
        # every still-pending op returns (otherwise it would be ordered
        # after an op that finished before it started).
        horizon = min_pending_return(done)
        for op in ops:
            if op.op_id in done or op.invoked_at > horizon:
                continue
            if op.is_write:
                if search(done | {op.op_id}, op.value):
                    return True
            elif op.value == value:
                if search(done | {op.op_id}, value):
                    return True
        return False

    return search(frozenset(), None)


# ----------------------------------------------------------------------
# Snapshot linearizability
# ----------------------------------------------------------------------
def check_snapshot_linearizable(
    history: History, backup_reads: History
) -> ConsistencyReport:
    """Check Section III-D.2's guarantee.

    Args:
        history: The main system's history (its writes define the
            linearizable order; we use write timestamps/seqnos, which
            for a single Ingestor coincide with the linearization).
        backup_reads: Reads served by backup nodes; ``server`` is the
            backup's name.
    """
    report = ConsistencyReport("snapshot-linearizable")
    writes_by_key: dict[bytes, dict[bytes, int]] = {}
    for index, write in enumerate(
        sorted(history.writes(), key=lambda w: (w.timestamp, w.op_id))
    ):
        writes_by_key.setdefault(write.key, {})[write.value] = index

    per_backup_key: dict[tuple[str, bytes], list[Operation]] = {}
    for read in backup_reads.reads():
        per_backup_key.setdefault((read.server, read.key), []).append(read)

    for (backup, key), reads in sorted(per_backup_key.items()):
        order = writes_by_key.get(key, {})
        reads.sort(key=lambda r: r.invoked_at)
        last_rank = -1
        last_read: Operation | None = None
        for read in reads:
            if read.value is None:
                rank = -1
            elif read.value in order:
                rank = order[read.value]
            else:
                report.add(
                    "stale-value",
                    f"backup {backup} returned a value never written to {key!r}",
                    read,
                )
                continue
            if rank < last_rank:
                report.add(
                    "time-regression",
                    f"backup {backup} reads of {key!r} went backwards in the "
                    f"write order ({last_rank} -> {rank})",
                    *( [last_read, read] if last_read else [read] ),
                )
            last_rank, last_read = rank, read
    return report


# ----------------------------------------------------------------------
# Linearizable + Concurrent
# ----------------------------------------------------------------------
def check_linearizable_concurrent(history: History, delta: float) -> ConsistencyReport:
    """Check Definition 1 on the observable read/write outcomes.

    For each key, with ts(x) the loose timestamp of operation x and
    version(r) the timestamp of the write a read returned
    (-inf for a miss):

    * write w, read r with ts(r) - ts(w) >= 2δ  =>  version(r) >= ts(w);
    * read r, write w with ts(w) - ts(r) >= 2δ  =>  version(r) < ts(w)
      (the read must not observe a write ordered after it);
    * reads r1, r2 with ts(r2) - ts(r1) >= 2δ   =>  version(r2) >= version(r1).
    """
    report = ConsistencyReport("linearizable+concurrent")
    two_delta = 2.0 * delta
    for key in sorted(history.keys()):
        ops = history.for_key(key).operations
        writes = [o for o in ops if o.is_write]
        reads = [o for o in ops if o.is_read]
        version_ts: dict[bytes, float] = {w.value: w.timestamp for w in writes}

        def version_of(read: Operation) -> float:
            if read.value is None:
                return float("-inf")
            return version_ts.get(read.value, read.timestamp)

        for read in reads:
            observed = version_of(read)
            for write in writes:
                if read.timestamp - write.timestamp >= two_delta and observed < write.timestamp:
                    report.add(
                        "lost-write",
                        f"read at ts {read.timestamp:.6f} ordered after write at "
                        f"ts {write.timestamp:.6f} but did not observe it (key {key!r})",
                        write,
                        read,
                    )
                if write.timestamp - read.timestamp >= two_delta and observed >= write.timestamp:
                    report.add(
                        "future-read",
                        f"read at ts {read.timestamp:.6f} observed a write ordered "
                        f"after it (ts {write.timestamp:.6f}, key {key!r})",
                        read,
                        write,
                    )
        ordered_reads = sorted(reads, key=lambda r: r.timestamp)
        for i, first in enumerate(ordered_reads):
            for second in ordered_reads[i + 1 :]:
                if second.timestamp - first.timestamp >= two_delta:
                    if version_of(second) < version_of(first):
                        report.add(
                            "read-regression",
                            f"later read (ts {second.timestamp:.6f}) observed an "
                            f"older version than an earlier read "
                            f"(ts {first.timestamp:.6f}) of key {key!r}",
                            first,
                            second,
                        )
    return report
