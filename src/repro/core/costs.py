"""The compute cost model: simulated service times for storage work.

The authors measured wall-clock latencies on t2.xlarge instances; we
model each storage operation's CPU+I/O service time and let the
simulator's queueing produce the dynamics.  The defaults are calibrated
so the *monolithic, in-cloud* configuration lands at the paper's
magnitudes (average write latency ≈0.1 ms, minor compaction stalls of
tens-to-hundreds of ms — Table II's max is 200 ms — and L2 major
compactions of ~0.1–1 s — Figure 4), and all comparisons in the
evaluation are relative to that anchor.

All costs are **seconds**; ``*_per_entry`` costs multiply by the number
of entries processed.
"""

from __future__ import annotations

from dataclasses import dataclass

_US = 1e-6


@dataclass(frozen=True, slots=True)
class CostModel:
    """Service-time parameters for simulated storage operations.

    Attributes:
        upsert_cpu: Stamping + appending one write to the batch.
        flush_per_entry: Sorting/building an L0 table from the memtable.
        merge_per_entry: K-way merge work per entry, including the
            modelled sstable read/write I/O (dominant term; drives
            compaction latencies).
        probe_table: One sstable probe: bloom check, fence-pointer
            lookup, one block binary search.
        read_base: Fixed per-read dispatch overhead on a node.
        scan_per_entry: Streaming an entry out of a range query.
        install_per_entry: A Reader installing forwarded sstables.
        entry_size_bytes: Wire size of one entry (drives network
            transfer time for forwarded sstables).
    """

    upsert_cpu: float = 10.0 * _US
    flush_per_entry: float = 5.0 * _US
    merge_per_entry: float = 30.0 * _US
    probe_table: float = 30.0 * _US
    read_base: float = 20.0 * _US
    scan_per_entry: float = 2.0 * _US
    install_per_entry: float = 2.0 * _US
    entry_size_bytes: int = 100

    def merge_cost(self, num_entries: int) -> float:
        """Service time of a k-way merge over ``num_entries`` entries."""
        return self.merge_per_entry * num_entries

    def flush_cost(self, num_entries: int) -> float:
        """Service time of freezing a memtable into an L0 table."""
        return self.flush_per_entry * num_entries

    def tables_size_bytes(self, num_entries: int) -> int:
        """Wire size of forwarded sstables holding ``num_entries``."""
        return max(64, num_entries * self.entry_size_bytes)


#: The calibrated default model used by all experiments.
DEFAULT_COSTS = CostModel()
