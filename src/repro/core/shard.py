"""Versioned shard map: key-range → Ingestor ownership for scale-out.

The paper's headline multi-Ingestor mode lets several Ingestors accept
the *same* keys and relies on 2δ loose-timestamp ordering to merge their
outputs.  The scale-out mode implemented here is the complementary
classic design: the key space is *range-partitioned across* Ingestors,
each key has exactly one owner at any time, and ownership moves by
splitting a shard — so per-key writes are serialized by a single node
and histories stay plainly linearizable.

The map is versioned for online reconfiguration:

``epoch``
    Bumped on every ownership change.  Nodes install a new map only if
    its epoch is strictly greater than the one they hold, so a stale
    coordinator can never roll ownership back.

``term`` (per shard)
    Bumped for every range whose owner changes.  A deposed owner holds
    a map in which its old range carries a higher term owned by someone
    else; any write routed to it under the old term is rejected with
    :class:`WrongShardError` — the fencing that makes "late writes to
    the previous owner" impossible rather than merely unlikely.

Everything here is pure data shared by the simulator and the live TCP
runtime; the live membership layer (``repro.live.membership``) drives
splits over RPC, and clients refresh their copy of the map lazily when
a node rejects a misrouted request.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.lsm.entry import encode_key

#: Marker embedded in the exception message so the redirect survives the
#: RPC layer's ``RemoteError(repr(error))`` round-trip and can be
#: recognised by clients without a dedicated error channel.
WRONG_SHARD_MARKER = "WRONG_SHARD"


class WrongShardError(Exception):
    """Raised by a node asked to serve a key it does not own.

    Clients treat this as a redirect: refresh the shard map from any
    live Ingestor and re-route, instead of burning failover retries.
    """

    def __init__(self, node: str, epoch: int) -> None:
        super().__init__(f"{WRONG_SHARD_MARKER} node={node} epoch={epoch}")
        self.node = node
        self.epoch = epoch


def is_wrong_shard(error: BaseException) -> bool:
    """True if ``error`` is (or wraps, as a ``RemoteError`` string) a
    :class:`WrongShardError` redirect."""
    return WRONG_SHARD_MARKER in str(error)


@dataclass(frozen=True, slots=True)
class Shard:
    """One contiguous key range and its owner.

    Attributes:
        lower: Inclusive lower bound; ``None`` for the leftmost shard
            (covers from the beginning of the key space).  The upper
            bound is the next shard's lower bound, exclusive.
        owner: Name of the Ingestor that accepts writes/reads for the
            range.
        term: Fencing term, bumped each time this range changes owner.
    """

    lower: bytes | None
    owner: str
    term: int = 1


@dataclass(frozen=True, slots=True)
class ShardMap:
    """An immutable, versioned assignment of the whole key space.

    Shards are sorted by lower bound; the first covers from the start of
    the key space, so every key has exactly one owner (full coverage, no
    overlap — by construction, and re-checked by :meth:`validate`).
    """

    epoch: int
    shards: tuple[Shard, ...]

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check full coverage, no overlap, and positive terms."""
        if self.epoch < 0:
            raise ValueError("shard map epoch must be non-negative")
        if not self.shards:
            raise ValueError("shard map must contain at least one shard")
        if self.shards[0].lower is not None:
            raise ValueError("first shard must cover from the start (lower=None)")
        for left, right in zip(self.shards, self.shards[1:]):
            if right.lower is None:
                raise ValueError("only the first shard may have lower=None")
            if left.lower is not None and left.lower >= right.lower:
                raise ValueError("shard boundaries must be strictly increasing")
        for shard in self.shards:
            if shard.term < 1:
                raise ValueError("shard terms start at 1")
            if not shard.owner:
                raise ValueError("every shard needs an owner")

    # -- construction ---------------------------------------------------

    @classmethod
    def single(cls, owner: str, epoch: int = 1) -> "ShardMap":
        """The whole key space owned by one Ingestor."""
        return cls(epoch, (Shard(None, owner),))

    @classmethod
    def uniform(cls, key_range: int, owners: list[str], epoch: int = 1) -> "ShardMap":
        """Split ``[0, key_range)`` integer keys evenly across ``owners``.

        Mirrors :meth:`repro.core.keyspace.Partitioning.uniform` so the
        Ingestor shard boundaries line up with how benches and tests
        think about integer key spaces.
        """
        if not owners:
            raise ValueError("need at least one owner")
        shards = []
        for index, owner in enumerate(owners):
            lower = None if index == 0 else encode_key(index * key_range // len(owners))
            shards.append(Shard(lower, owner))
        return cls(epoch, tuple(shards))

    # -- routing --------------------------------------------------------

    @property
    def _boundaries(self) -> list[bytes]:
        return [shard.lower for shard in self.shards[1:]]  # type: ignore[misc]

    def shard_for(self, key: bytes | str | int) -> Shard:
        """The shard owning ``key`` (bisect over the sorted boundaries)."""
        encoded = encode_key(key)
        return self.shards[bisect.bisect_right(self._boundaries, encoded)]

    def owner_of(self, key: bytes | str | int) -> str:
        """Name of the Ingestor that owns ``key``."""
        return self.shard_for(key).owner

    def owners(self) -> list[str]:
        """All distinct owners, in shard order."""
        seen: list[str] = []
        for shard in self.shards:
            if shard.owner not in seen:
                seen.append(shard.owner)
        return seen

    def owns(self, owner: str, key: bytes | str | int) -> bool:
        return self.owner_of(key) == owner

    # -- reconfiguration ------------------------------------------------

    def split(self, boundary: bytes | str | int, new_owner: str) -> "ShardMap":
        """Split the shard containing ``boundary`` at it.

        The upper half ``[boundary, next)`` moves to ``new_owner`` with
        a bumped term; the lower half stays with the old owner.  The
        result's epoch is this map's plus one.
        """
        encoded = encode_key(boundary)
        index = bisect.bisect_right(self._boundaries, encoded)
        victim = self.shards[index]
        if victim.lower == encoded:
            raise ValueError("boundary is already a shard boundary")
        shards = (
            self.shards[:index]
            + (victim, Shard(encoded, new_owner, victim.term + 1))
            + self.shards[index + 1 :]
        )
        return ShardMap(self.epoch + 1, shards)

    # -- state / identity -----------------------------------------------

    def to_state(self) -> dict:
        """JSON-serialisable form for the durable node store."""
        return {
            "epoch": self.epoch,
            "shards": [
                [None if s.lower is None else s.lower.hex(), s.owner, s.term]
                for s in self.shards
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ShardMap":
        shards = tuple(
            Shard(None if lower is None else bytes.fromhex(lower), owner, term)
            for lower, owner, term in state["shards"]
        )
        return cls(int(state["epoch"]), shards)

    def fingerprint(self) -> tuple:
        """Hashable identity used by tests and the verify oracle."""
        return (
            self.epoch,
            tuple((s.lower, s.owner, s.term) for s in self.shards),
        )
