"""The Ingestor: CooLSM's edge-resident write front-end.

An Ingestor (Section III-B/C) owns the memtable and levels **L0 and
L1**.  It batches upserts, performs *minor* (tiering) compaction of
L0+L1, and forwards L1's overflow sstables to the partitioned
Compactors — retaining a copy of every forwarded table until the
Compactor acknowledges the merge, so no key is ever temporarily
invisible on the read path.

Flow control: when too many forwarded tables await acks
(``config.max_inflight_tables``), the next minor compaction — and the
upsert that triggered it — stalls until acks drain.  This backpressure
is what couples write latency to the number (and speed) of Compactors
and produces Figure 3's trends and Table II's tail.

In multi-Ingestor deployments (Section III-E) the Ingestor additionally
stamps every write with its loose clock, retains multiple versions per
key, answers coordinator-timestamped phase-1 reads, and exposes
``ts_c`` — the timestamp of the most recent record it has sent to
Compactors — which clients use to decide whether phase 2 is needed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from repro.effects import ComputeHost, EffectKernel, Fabric
from repro.lsm.cache import ReadCache
from repro.lsm.compaction import KeepPolicy, NEWEST_WINS, merge_tables
from repro.lsm.entry import Entry
from repro.lsm.errors import CorruptionError
from repro.lsm.manifest import LevelEdit, Manifest
from repro.lsm.memtable import Memtable
from repro.lsm.policy import make_policy
from repro.lsm.sstable import SSTable
from repro.sim.clock import LooseClock
from repro.sim.resources import Resource
from repro.sim.rpc import RemoteError, RpcNode, RpcTimeout

from .config import CooLSMConfig
from .flow import AdmissionController
from .keyspace import Partitioning
from .messages import (
    ForwardReply,
    ForwardRequest,
    IngestorL1Update,
    IngestorReadResult,
    InstallShardMap,
    InstallShardMapReply,
    Phase1Reply,
    Phase1Request,
    RangeQuery,
    RangeQueryReply,
    ReadReply,
    ReadRequest,
    ShardDrainReply,
    ShardDrainRequest,
    ShardMapReply,
    ShardMapRequest,
    UpsertBatchReply,
    UpsertBatchRequest,
    UpsertReply,
    UpsertRequest,
)
from .shard import ShardMap, WrongShardError


@dataclass(slots=True)
class IngestorStats:
    """Counters and timings exposed for the evaluation harness."""

    upserts: int = 0
    batch_upserts: int = 0
    group_commits: int = 0
    group_commit_entries: int = 0
    reads: int = 0
    flushes: int = 0
    minor_compactions: int = 0
    minor_compaction_times: list[float] = field(default_factory=list)
    forwarded_tables: int = 0
    forward_retries: int = 0
    forward_failovers: int = 0
    forward_backoff_time: float = 0.0
    stall_time: float = 0.0
    reads_forwarded: int = 0
    read_retries: int = 0


class Ingestor(RpcNode):
    """A CooLSM Ingestor node.

    Args:
        kernel/network/machine/name: Simulation plumbing.
        config: Deployment parameters.
        clock: This node's loose clock.
        partitioning: Compactor key-range map for forwarding and reads.
        peers: Names of the *other* Ingestors (multi-Ingestor mode).
        multi_ingestor: Retain versions + timestamp protocols when True.
        backups: Reader names to push this Ingestor's L1 snapshot to
            after each minor compaction — the Section III-D.3 variant
            that makes Reader state fresher at the cost of extra
            coordination.  Empty (the default) means Readers are fed by
            Compactors only.
    """

    def __init__(
        self,
        kernel: EffectKernel,
        network: Fabric,
        machine: ComputeHost,
        name: str,
        config: CooLSMConfig,
        clock: LooseClock,
        partitioning: Partitioning,
        peers: Iterable[str] = (),
        multi_ingestor: bool = False,
        backups: Iterable[str] = (),
        rng: random.Random | None = None,
        shard_map: ShardMap | None = None,
    ) -> None:
        super().__init__(kernel, network, machine, name)
        self.config = config
        self.clock = clock
        self.partitioning = partitioning
        self.peers = list(peers)
        self.multi_ingestor = multi_ingestor
        self.backups = list(backups)
        # Sharded scale-out mode: when set, this node serves only the
        # key ranges the map assigns to it and rejects everything else
        # with a WrongShard redirect.  ``None`` (the default) keeps the
        # classic accept-everything behaviour.
        self.shard_map = shard_map
        # Jitter stream for retry backoff; seeded per node by the
        # cluster builder so chaotic runs replay bit-identically.
        self._rng = rng or random.Random(0xC001)
        # Event forward-retry loops wait on while this node is down.
        self._recovered: "object | None" = None
        self.stats = IngestorStats()
        # The compaction policy decides minor-compaction inputs and
        # forward selection; it is a pure decider (no effects), so the
        # default keeps the historical schedule byte-identical.
        self._policy = make_policy(config.compaction_policy)
        # Write admission control (config.flow_control); the controller
        # always exists so debt gauges are observable either way.
        self.admission = AdmissionController(config, name)
        # Index 0 = L0, index 1 = L1; tiered policies stack overlapping
        # runs in L1, the default keeps it a single disjoint run.
        self.manifest = Manifest(
            2, overlapping_levels=self._policy.ingestor_overlapping()
        )
        # Per-node read cache over immutable sstable rows.  Volatile:
        # wiped on crash (it is reconstructible state, never durable).
        self.read_cache: ReadCache | None = (
            ReadCache(config.read_cache_capacity)
            if config.read_cache_capacity > 0
            else None
        )
        self._memtable = self._new_memtable()
        self._seqno = 0
        self._batch_seq = 0
        # Timestamp of the most recent record sent to Compactors; -inf
        # means "nothing ever forwarded", which lets readers prove that
        # this Ingestor contributed nothing to the Compactors.
        self.ts_c = float("-inf")
        self._in_flight: dict[int, list[SSTable]] = {}
        self._inflight_high_ts: dict[int, float] = {}
        self._inflight_tables = 0
        self._forward_pointer: bytes | None = None
        # The current batch's not-yet-flushed entries (Section III-H
        # recovery: "recovering a consistent, recent state ... includes
        # both the data structure and the meta-information").  In the
        # simulation this in-memory list *models* the WAL — durable
        # state is everything except the memtable, and recovery replays
        # it.  With a NodeStore attached the same entries are also in a
        # real fsynced write-ahead log before every ack.
        self._unflushed: list[Entry] = []
        # Optional durable storage (live runtime); None under the
        # simulator, where all persistence stays modelled.
        self._store = None
        # WAL group commit (config.wal_group_commit): pending
        # (entries, ack-event) groups awaiting the shared fsync, the
        # total entry count buffered, and the single flusher's state.
        self._gc_buffer: list = []
        self._gc_buffered = 0
        self._gc_flusher_active = False
        self._gc_wake = None
        # Highest timestamp this node ever stamped: persisted so a
        # restarted process (whose kernel clock restarts at zero) keeps
        # issuing strictly newer timestamps.
        self._max_entry_ts = float("-inf")
        self._drain_waiters: list = []
        self._compact_lock = Resource(kernel, 1)
        self.on("upsert", self._handle_upsert)
        self.on("upsert_batch", self._handle_upsert_batch)
        self.on("read", self._handle_read)
        self.on("read_phase1", self._handle_read_phase1)
        self.on("ingestor_read", self._handle_ingestor_read)
        self.on("range_query", self._handle_range_query)
        self.on("shard_map", self._handle_shard_map)
        self.on("install_shard_map", self._handle_install_shard_map)
        self.on("shard_drain", self._handle_shard_drain)
        self.on("shard_status", self._handle_shard_status)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _new_memtable(self) -> Memtable:
        return Memtable(
            self.config.memtable_entries, retain_versions=self.multi_ingestor
        )

    def _next_seqno(self) -> int:
        self._seqno += 1
        return self._seqno

    def _keep_policy(self) -> KeepPolicy:
        if not self.multi_ingestor:
            return NEWEST_WINS
        # Never garbage collect a version an in-flight read might need.
        return KeepPolicy(retain_horizon=self.clock.now() - self.config.gc_slack)

    @property
    def level0(self) -> list[SSTable]:
        return self.manifest.level(0)

    @property
    def level1(self) -> list[SSTable]:
        return self.manifest.level(1)

    @property
    def inflight_tables(self) -> int:
        return self._inflight_tables

    def _check_owner(self, key: bytes) -> None:
        """Fence misrouted traffic in sharded mode.

        After a split, the deposed owner of a range holds a map (epoch
        E+1) in which someone else owns it; any request routed here
        under the stale map is rejected so the client refreshes and
        re-routes — late writes can never land on the old owner.
        """
        if self.shard_map is not None and self.shard_map.owner_of(key) != self.name:
            raise WrongShardError(self.name, self.shard_map.epoch)

    def health_gauges(self) -> dict:
        gauges = {
            "inflight": self._inflight_tables,
            "shard_epoch": -1 if self.shard_map is None else self.shard_map.epoch,
            "l0_tables": len(self.level0),
            "l1_tables": len(self.level1),
            "forward_retries": self.stats.forward_retries,
            "forward_failovers": self.stats.forward_failovers,
            "batch_upserts": self.stats.batch_upserts,
            "wal_group_commits": self.stats.group_commits,
            "wal_group_commit_entries": self.stats.group_commit_entries,
            "flow_control": int(self.config.flow_control),
            "compaction_stall_time": round(self.stats.stall_time, 6),
        }
        # Debt is recomputed at sample time so the gauge is current even
        # when no write has consulted the controller recently.
        self._debt_snapshot()
        gauges.update(self.admission.gauges())
        return gauges

    def _debt_snapshot(self):
        """Current compaction debt (updates ``admission.last_debt``)."""
        pending_entries = sum(
            len(t) for batch in self._in_flight.values() for t in batch
        )
        pending_bytes = (
            self.config.costs.tables_size_bytes(pending_entries)
            if pending_entries
            else 0
        )
        return self.admission.snapshot(
            len(self.level0),
            len(self.level1),
            self._inflight_tables,
            pending_bytes=pending_bytes,
        )

    def _admit_write(self):
        """Consult admission control before accepting a write.

        Pays the controller's slowdown delay via a kernel timeout, or
        lets its BackpressureError propagate to the client (which backs
        off and retries).  Only reached when ``config.flow_control`` is
        on, so the default write path yields exactly as before.
        """
        delay = self.admission.admit(self._debt_snapshot(), self.kernel.now)
        if delay > 0:
            yield self.kernel.timeout(delay)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _handle_upsert(self, src: str, request: UpsertRequest):
        self._check_owner(request.key)
        if self.config.flow_control:
            yield from self._admit_write()
        yield from self.compute(self.config.costs.upsert_cpu)
        entry = self._stamp(request)
        # Log-then-ack: the reply below is only sent once the entry is
        # fsynced, so "acked" means "survives SIGKILL".  Under group
        # commit the wait parks this handler until the shared fsync
        # covering its record completes.
        yield from self._log_durable([entry])
        self.stats.upserts += 1
        if self._memtable.is_full():
            # The batch is full: this request pays for the flush (and any
            # cascading minor compaction + forwarding stall) — the
            # occasional slow writes of Table II.
            yield from self._flush_and_compact()
        return UpsertReply(entry.timestamp, entry.seqno)

    def _handle_upsert_batch(self, src: str, request: UpsertBatchRequest):
        """Apply a whole client batch with one durability wait.

        Ops are stamped and applied in order; with WAL group commit one
        fsync (shared with any concurrent batches) covers every ack in
        the reply, which is what makes the pipelined write path cheap.
        Externally equivalent to the same ops sent one at a time.
        """
        if not request.ops:
            return UpsertBatchReply(())
        # All-or-nothing ownership: a batch containing any key this node
        # does not own bounces whole, before any op is applied — the
        # client refreshes its map and re-splits the batch per shard.
        for op in request.ops:
            self._check_owner(op.key)
        if self.config.flow_control:
            # One admission decision covers the whole batch: it either
            # enters whole or bounces whole, like the ownership check.
            yield from self._admit_write()
        yield from self.compute(len(request.ops) * self.config.costs.upsert_cpu)
        entries = [self._stamp(op) for op in request.ops]
        yield from self._log_durable(entries)
        self.stats.upserts += len(entries)
        self.stats.batch_upserts += 1
        if self._memtable.is_full():
            # The memtable tolerates overshoot, so the whole batch lands
            # in one generation and pays for at most one flush.
            yield from self._flush_and_compact()
        return UpsertBatchReply(
            tuple(UpsertReply(e.timestamp, e.seqno) for e in entries)
        )

    def _stamp(self, request: UpsertRequest) -> Entry:
        """Stamp one op and apply it to the in-memory write state."""
        timestamp = self.clock.now()
        entry = Entry(
            request.key, self._next_seqno(), timestamp, request.value, request.tombstone
        )
        self._unflushed.append(entry)
        self._memtable.put(entry)
        self._max_entry_ts = timestamp
        return entry

    def _log_durable(self, entries: list[Entry]):
        """Make ``entries`` durable (WAL) before the caller acks.

        Without a store this is a no-op *with zero yields*, so the sim
        schedule is untouched.  Without ``wal_group_commit`` it is the
        synchronous log-then-ack path: one fsynced record per call.
        With group commit the entries join the shared buffer and the
        caller parks until the flusher's fsync covers them — one fsync
        then acks every handler that contributed to the buffer.
        """
        if self._store is None:
            return
        if not self.config.wal_group_commit:
            self._store.log_entries(entries)
            return
        waiter = self.kernel.event()
        self._gc_buffer.append((entries, waiter))
        self._gc_buffered += len(entries)
        if not self._gc_flusher_active:
            self._gc_flusher_active = True
            self.kernel.spawn(self._group_commit_loop(), f"{self.name}.group-commit")
        elif (
            self._gc_wake is not None
            and not self._gc_wake.triggered
            and self._gc_buffered >= self.config.group_commit_max_batch
        ):
            self._gc_wake.succeed()  # full buffer: cut the delay short
        yield waiter

    def _group_commit_loop(self):
        """The single group-commit flusher.

        Spawned lazily by the first buffered append and exits once the
        buffer drains (a later append spawns a fresh one).  Each round
        waits one scheduler tick (plus up to ``group_commit_max_delay``
        while the buffer is short) so concurrent handlers can pile on,
        then writes up to ``group_commit_max_batch`` entries as ONE
        fsynced WAL record and wakes every handler it covered.
        """
        try:
            while self._gc_buffer:
                delay = self.config.group_commit_max_delay
                if delay > 0 and self._gc_buffered < self.config.group_commit_max_batch:
                    self._gc_wake = self.kernel.event()
                    yield self.kernel.any_of(
                        [self._gc_wake, self.kernel.timeout(delay)]
                    )
                    self._gc_wake = None
                else:
                    # One tick: everything already runnable gets to
                    # append before the fsync, at no added latency.
                    yield self.kernel.timeout(0.0)
                while self._gc_buffer:
                    # Take whole groups (a handler's entries are never
                    # split across fsyncs) up to max_batch — always at
                    # least one group, so oversized batches still flush.
                    groups = [self._gc_buffer.pop(0)]
                    taken = len(groups[0][0])
                    while (
                        self._gc_buffer
                        and taken + len(self._gc_buffer[0][0])
                        <= self.config.group_commit_max_batch
                    ):
                        group = self._gc_buffer.pop(0)
                        groups.append(group)
                        taken += len(group[0])
                    self._gc_buffered -= taken
                    record = [e for entries, __ in groups for e in entries]
                    try:
                        self._store.log_entries(record)
                    except Exception as error:
                        for __, waiter in groups:
                            waiter.fail(error)
                        raise
                    self.stats.group_commits += 1
                    self.stats.group_commit_entries += taken
                    for __, waiter in groups:
                        waiter.succeed()
        finally:
            self._gc_flusher_active = False

    def _flush_and_compact(self):
        yield self._compact_lock.request()
        try:
            if not self._memtable.is_full():
                return  # another request already flushed this batch
            # Atomic swap: the frozen batch becomes an L0 table in the
            # same tick, so reads never miss buffered entries.
            entries = self._memtable.entries()
            self._memtable = self._new_memtable()
            self._unflushed = []  # batch is durable in L0 now
            table = SSTable(entries)
            self.manifest.apply(LevelEdit().add(0, [table]))
            if self._store is not None:
                # Synchronous (no yields since the swap): the L0 table
                # is durable before the WAL floor advances, and entries
                # logged for the *new* memtable carry higher seqnos.
                self._persist(wal_floor=self._seqno)
            self.stats.flushes += 1
            yield from self.compute(self.config.costs.flush_cost(len(entries)))
            if len(self.level0) > self.config.l0_threshold:
                yield from self._minor_compaction()
        finally:
            self._compact_lock.release()

    def _minor_compaction(self):
        # Backpressure: wait for Compactor acks if too much is in flight.
        stall_start = self.kernel.now
        while self._inflight_tables > self.config.max_inflight_tables:
            waiter = self.kernel.event()
            self._drain_waiters.append(waiter)
            yield waiter
        stalled = self.kernel.now - stall_start
        self.stats.stall_time += stalled
        if stalled > 0:
            # The blocking wait on forward acks is the classic write
            # stall; record it so the Monitor sees start/duration/cause.
            self.admission.record_stall(stall_start, stalled, "inflight_acks")

        started = self.kernel.now
        l0_newest_first = list(reversed(self.level0))
        l1_tables = list(self.level1)
        # The policy picks the merge inputs: everything in both levels
        # for the default (tiering into a fresh L1 run), L0 only for
        # stacked policies (the output becomes a new L1 run).
        sources, replaced_l1 = self._policy.minor_plan(l0_newest_first, l1_tables)
        total = sum(len(t) for t in sources)
        yield from self.compute(self.config.costs.merge_cost(total))
        result = merge_tables(
            sources,
            self.config.sstable_entries,
            self._keep_policy(),
        )
        edit = (
            LevelEdit()
            .remove(0, list(self.level0))
            .remove(1, replaced_l1)
            .add(1, result.tables)
        )
        self.manifest.apply(edit)
        self.stats.minor_compactions += 1
        self.stats.minor_compaction_times.append(self.kernel.now - started)
        if self._store is not None:
            self._persist()
        self._push_l1_to_backups()
        self._maybe_forward()

    def _push_l1_to_backups(self) -> None:
        """Section III-D.3: ship the fresh L1 snapshot to the Readers.

        Sent on FIFO channels after every minor compaction, so a Reader's
        fresh area for this Ingestor is always one of its past L1 states
        — snapshot progression is preserved per source.
        """
        if not self.backups:
            return
        tables = tuple(self.level1)
        entries = sum(len(t) for t in tables)
        update = IngestorL1Update(tables, self.name)
        for backup in self.backups:
            self.cast(
                backup,
                "ingestor_update",
                update,
                size_bytes=self.config.costs.tables_size_bytes(entries),
            )

    def _maybe_forward(self) -> None:
        """Move L1's overflow tables into the in-flight set and ship them.

        The policy selects the overflow: the default sweeps a rotating
        pointer over the sorted run so no key region is starved; stacked
        (tiered) policies forward the oldest runs first.
        """
        overflow, self._forward_pointer = self._policy.select_forward(
            self.level1, self.config.l1_threshold, self._forward_pointer
        )
        if not overflow:
            return
        self._launch_forwards(overflow)

    def _launch_forwards(self, overflow: list[SSTable]) -> None:
        """Move ``overflow`` (tables currently in L1) into the in-flight
        set and ship them to the owning Compactor partitions."""
        self.manifest.apply(LevelEdit().remove(1, overflow))
        high_ts = max(e.timestamp for t in overflow for e in t.entries)
        self.ts_c = max(self.ts_c, high_ts)
        # Split at partition boundaries, group per partition.
        per_partition: dict[int, list[SSTable]] = {}
        partition_by_id: dict[int, object] = {}
        for table in overflow:
            for partition, piece in self.partitioning.split_table(table):
                pid = id(partition)
                partition_by_id[pid] = partition
                per_partition.setdefault(pid, []).append(piece)
        launches = []
        for pid, pieces in per_partition.items():
            self._batch_seq += 1
            batch_id = self._batch_seq
            self._in_flight[batch_id] = pieces
            self._inflight_high_ts[batch_id] = high_ts
            self._inflight_tables += len(pieces)
            self.stats.forwarded_tables += len(pieces)
            launches.append((partition_by_id[pid], pieces, batch_id))
        if self._store is not None:
            # The in-flight registration must hit disk before the first
            # forward can leave the node, or a crash after a Compactor
            # merge but before our ack-processing would lose track of
            # what we owe (and what we may re-send).
            self._persist()
        for partition, pieces, batch_id in launches:
            self.kernel.spawn(
                self._forward_batch(partition, pieces, batch_id, high_ts),
                f"{self.name}.forward.{batch_id}",
            )

    def _forward_batch(self, partition, pieces: list[SSTable], batch_id: int, high_ts: float):
        """Ship one batch until a Compactor acks the merge.

        Failed attempts back off exponentially with jitter (bounded by
        ``forward_backoff_cap``) instead of hammering a struggling or
        partitioned Compactor; after ``forward_retry_budget`` failures
        against one target the loop fails over to the partition's next
        member — which round-robin load balancing or a completed leader
        election may have repointed.  Retries reuse the same
        ``(ingestor, batch_id)``, so the Compactor's dedup table makes
        redelivery after a lost ack harmless.
        """
        entries = sum(len(t) for t in pieces)
        request = ForwardRequest(tuple(pieces), high_ts, batch_id, ingestor=self.name)
        size = self.config.costs.tables_size_bytes(entries)
        target = partition.writer()
        failures_on_target = 0
        backoff = self.config.forward_backoff_base
        while True:
            # A crashed Ingestor initiates nothing: hold the retry loop
            # until recovery (the in-flight set is durable state).
            while self.crashed:
                yield self._recovery_event()
            try:
                reply = yield self.call(
                    target,
                    "forward",
                    request,
                    size_bytes=size,
                    timeout=self.config.ack_timeout,
                )
                assert isinstance(reply, ForwardReply)
                break
            except (RpcTimeout, RemoteError):
                self.stats.forward_retries += 1
                failures_on_target += 1
                if failures_on_target >= self.config.forward_retry_budget:
                    # Budget exhausted: move on (round-robin picks the
                    # next overlapping member, or the promoted
                    # replacement) and restart the backoff ramp.
                    self.stats.forward_failovers += 1
                    target = partition.writer()
                    failures_on_target = 0
                    backoff = self.config.forward_backoff_base
                delay = backoff * (0.5 + 0.5 * self._rng.random())
                self.stats.forward_backoff_time += delay
                yield self.kernel.timeout(delay)
                backoff = min(backoff * 2.0, self.config.forward_backoff_cap)
        # Ack received: the Compactor has merged the tables; drop our
        # retained copies and wake any stalled compaction.
        self._in_flight.pop(batch_id, None)
        self._inflight_high_ts.pop(batch_id, None)
        self._inflight_tables -= len(pieces)
        if self._store is not None:
            self._persist()
        if self._inflight_tables <= self.config.max_inflight_tables:
            waiters, self._drain_waiters = self._drain_waiters, []
            for waiter in waiters:
                waiter.succeed()

    # ------------------------------------------------------------------
    # Shard membership (live scale-out)
    # ------------------------------------------------------------------
    def _handle_shard_map(self, src: str, request: ShardMapRequest):
        """Serve this node's current shard map to a redirected client."""
        yield from ()
        return ShardMapReply(self.shard_map)

    def _handle_install_shard_map(self, src: str, request: InstallShardMap):
        """Adopt a newer shard map (split coordinator, step A and C).

        Epoch-monotone: installs are accepted only when strictly newer
        than what this node holds, so a stale or replayed install can
        never resurrect old ownership.  The accepted map is persisted
        before the reply — a deposed owner stays fenced across a crash.
        ``clock_floor`` raises the loose clock past the previous owner's
        timestamp watermark so a newly activated owner stamps strictly
        newer versions than anything it inherited.
        """
        yield from ()
        current = self.shard_map
        if current is not None and request.shard_map.epoch <= current.epoch:
            return InstallShardMapReply(current.epoch, False)
        self.shard_map = request.shard_map
        self.clock.advance_past(request.clock_floor)
        if self._store is not None:
            self._persist()
        return InstallShardMapReply(request.shard_map.epoch, True)

    def _handle_shard_drain(self, src: str, request: ShardDrainRequest):
        """Migration step B: push everything this node holds downstream.

        Called on the deposed owner *after* the fence (so no new writes
        for the moving range can arrive): flush the memtable — which
        raises the durable WAL floor via :meth:`_persist` — minor-compact
        L0 into L1, then forward ALL of L1 to the Compactors through the
        normal retained/acked path.  The reply snapshots the in-flight
        batch ids; once those specific batches are acked (polled via
        ``shard_status``), every write acked before the fence is
        readable at the Compactors and the new owner can go live.
        """
        yield self._compact_lock.request()
        try:
            entries = self._memtable.entries()
            if entries:
                # Same atomic swap as _flush_and_compact, without the
                # is-full gate: drain flushes whatever is buffered.
                self._memtable = self._new_memtable()
                self._unflushed = []
                self.manifest.apply(LevelEdit().add(0, [SSTable(entries)]))
                if self._store is not None:
                    self._persist(wal_floor=self._seqno)
                self.stats.flushes += 1
                yield from self.compute(self.config.costs.flush_cost(len(entries)))
            if self.level0:
                yield from self._minor_compaction()
            leftover = list(self.level1)
            if leftover:
                self._launch_forwards(leftover)
        finally:
            self._compact_lock.release()
        return self._shard_status()

    def _handle_shard_status(self, src: str, request: ShardDrainRequest):
        """Cheap poll of the drain snapshot (no flushing side effects)."""
        yield from ()
        return self._shard_status()

    def _shard_status(self) -> ShardDrainReply:
        return ShardDrainReply(
            pending=tuple(sorted(self._in_flight)),
            inflight_tables=self._inflight_tables,
            watermark=self._max_entry_ts,
            ts_c=self.ts_c,
        )

    # ------------------------------------------------------------------
    # Crash recovery (Section III-H)
    # ------------------------------------------------------------------
    def crash(self, lose_memtable: bool = True) -> None:
        """Fail-stop.  With ``lose_memtable`` (the realistic default)
        the in-memory buffer is wiped — L0/L1, the in-flight set, and
        the WAL survive (they model durable state)."""
        super().crash()
        if lose_memtable:
            self._memtable = self._new_memtable()
        if self.read_cache is not None:
            self.read_cache.clear()

    def _recovery_event(self):
        """The event :meth:`recover` fires; created lazily while down."""
        if self._recovered is None:
            self._recovered = self.kernel.event()
        return self._recovered

    def recover(self) -> None:
        """Restart: replay the WAL into a fresh memtable, restoring the
        pre-crash batch exactly, then resume serving (which also
        releases any forward-retry loops parked during the outage)."""
        for entry in self._unflushed:
            self._memtable.put(entry)
        super().recover()
        event, self._recovered = self._recovered, None
        if event is not None:
            event.succeed()

    # ------------------------------------------------------------------
    # Durable storage (live runtime)
    # ------------------------------------------------------------------
    def _persist(self, wal_floor: int | None = None) -> None:
        """Commit the recovery-critical state to the attached store:
        L0/L1 contents, the in-flight forward set, counters, ts_c, and
        the clock watermark.  Synchronous — never yields, so attaching
        a store cannot change the simulator's schedule."""
        tables = (
            list(self.level0)
            + list(self.level1)
            + [t for batch in self._in_flight.values() for t in batch]
        )
        state = {
            "policy": self._policy.name,
            "seqno": self._seqno,
            "batch_seq": self._batch_seq,
            "ts_c": self.ts_c,
            "clock_watermark": self._max_entry_ts,
            "shard_map": None if self.shard_map is None else self.shard_map.to_state(),
            "levels": [
                [t.table_id for t in self.level0],
                [t.table_id for t in self.level1],
            ],
            "in_flight": {
                str(batch_id): {
                    "tables": [t.table_id for t in pieces],
                    "high_ts": self._inflight_high_ts.get(batch_id, self.ts_c),
                }
                for batch_id, pieces in self._in_flight.items()
            },
        }
        self._store.commit(tables, state, wal_floor=wal_floor)

    def attach_store(self, store) -> None:
        """Attach a :class:`~repro.store.node_store.NodeStore`,
        restoring any state a previous incarnation persisted.

        Recovery rebuilds L0/L1 and the in-flight set from the stored
        sstables, replays the durable WAL (entries above the flushed
        floor) into the memtable, restores the seqno/batch counters and
        ``ts_c``, raises the loose clock past the persisted timestamp
        watermark (the live kernel's clock restarts at zero, which
        would otherwise stamp new writes older than pre-crash ones),
        and respawns the forward-retry loop for every unacked batch —
        the Compactors' durable dedup tables make redelivery harmless.
        Must be called before the node serves traffic.
        """
        self._store = store
        recovered = store.recovered
        if recovered is None:
            self._persist()
            return
        state = recovered.state
        persisted_policy = state.get("policy")
        if persisted_policy is not None and persisted_policy != self._policy.name:
            # A tiered store holds overlapping L1 runs a leveled node
            # would corrupt on its first minor compaction; refuse.
            raise CorruptionError(
                f"{self.name}: store written by compaction policy "
                f"{persisted_policy!r}, refusing to recover as "
                f"{self._policy.name!r}"
            )
        tables = recovered.tables
        self._seqno = int(state.get("seqno", 0))
        self._batch_seq = int(state.get("batch_seq", 0))
        self.ts_c = float(state.get("ts_c", float("-inf")))
        persisted_map = state.get("shard_map")
        if persisted_map is not None:
            restored = ShardMap.from_state(persisted_map)
            # The spec's initial map seeds construction; a persisted map
            # from a later epoch (an install survived a crash) wins, so
            # a deposed owner comes back up still fenced.
            if self.shard_map is None or restored.epoch > self.shard_map.epoch:
                self.shard_map = restored
        edit = LevelEdit()
        for level, ids in enumerate(state.get("levels", ())):
            if ids:
                edit.add(level, [tables[tid] for tid in ids])
        self.manifest.apply(edit)
        relaunch = []
        for batch_str, meta in state.get("in_flight", {}).items():
            batch_id = int(batch_str)
            pieces = [tables[tid] for tid in meta["tables"]]
            self._in_flight[batch_id] = pieces
            self._inflight_high_ts[batch_id] = float(meta["high_ts"])
            self._inflight_tables += len(pieces)
            relaunch.append((batch_id, pieces, float(meta["high_ts"])))
        watermark = float(state.get("clock_watermark", float("-inf")))
        for entry in recovered.wal_entries:
            self._unflushed.append(entry)
            self._memtable.put(entry)
            self._seqno = max(self._seqno, entry.seqno)
            watermark = max(watermark, entry.timestamp)
        self._max_entry_ts = watermark
        self.clock.advance_past(watermark)
        for batch_id, pieces, high_ts in sorted(relaunch):
            # Pieces never straddle partitions (they were split at
            # boundaries before the first send), so any key identifies
            # the owning partition.
            partition = self.partitioning.partition_for(pieces[0].min_key)
            self.kernel.spawn(
                self._forward_batch(partition, pieces, batch_id, high_ts),
                f"{self.name}.forward.{batch_id}",
            )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _call_retry(self, target: str, method: str, request):
        """Remote call with the configured timeout and a bounded retry
        budget, so a crashed or partitioned peer surfaces an error to
        the caller instead of hanging the read forever.  Raises the
        last failure once the budget is exhausted — never returns a
        partial answer (which could violate Table I's guarantees)."""
        last_error: Exception | None = None
        for attempt in range(self.config.client_retry_budget):
            if attempt:
                self.stats.read_retries += 1
            try:
                reply = yield self.call(
                    target, method, request, timeout=self.config.request_timeout
                )
                return reply
            except (RpcTimeout, RemoteError) as error:
                last_error = error
        raise last_error

    def _search_local(self, key: bytes, as_of: float | None) -> tuple[Entry | None, int]:
        """Newest visible version in memtable/L0/L1/in-flight tables.

        Returns (entry, probes) where probes counts the sstables whose
        blocks were actually searched (for the cost model).
        """
        probes = 0
        candidates: list[Entry] = []
        candidates.extend(self._visible(self._memtable.versions(key), as_of))
        for table in reversed(self.level0):
            if table.key_in_range(key) and table.bloom.might_contain(key):
                probes += 1
                candidates.extend(
                    self._visible(table.versions(key, self.read_cache), as_of)
                )
                if candidates and as_of is None:
                    break  # L0 newest-first: first hit wins
        # L1 is non-overlapping: the manifest's fence index bisects to
        # the single candidate table instead of scanning the level.
        search_l1 = self.manifest.tables_for_key(1, key)
        inflight = [
            t
            for batch in self._in_flight.values()
            for t in batch
            if t.key_in_range(key)
        ]
        for table in search_l1 + inflight:
            if table.bloom.might_contain(key):
                probes += 1
                candidates.extend(
                    self._visible(table.versions(key, self.read_cache), as_of)
                )
        if not candidates:
            return None, probes
        return max(candidates, key=lambda e: e.version), probes

    @staticmethod
    def _visible(versions: list[Entry], as_of: float | None) -> list[Entry]:
        if as_of is None:
            return versions[:1]
        return [v for v in versions if v.timestamp <= as_of]

    def _handle_read(self, src: str, request: ReadRequest):
        """Full read path (Section III-C): local levels, then the
        appropriate Compactor."""
        self._check_owner(request.key)
        self.stats.reads += 1
        yield from self.compute(self.config.costs.read_base)
        entry, probes = self._search_local(request.key, request.as_of)
        yield from self.compute(probes * self.config.costs.probe_table)
        if entry is not None and request.as_of is None:
            return ReadReply(entry, self.name)
        self.stats.reads_forwarded += 1
        partition = self.partitioning.partition_for(request.key)
        if len(partition.members) == 1:
            reply = yield from self._call_retry(partition.members[0], "read", request)
        else:
            # Overlapping Compactors: ask all members, newest wins.
            calls = [
                self.kernel.spawn(self._call_retry(m, "read", request))
                for m in partition.members
            ]
            replies = yield self.kernel.all_of(calls)
            found = [r.entry for r in replies if r.entry is not None]
            best = max(found, key=lambda e: e.version) if found else None
            reply = ReadReply(best, "overlap-group")
        remote = reply.entry
        if entry is not None and (remote is None or entry.version > remote.version):
            return ReadReply(entry, self.name)
        return reply

    def _handle_range_query(self, src: str, request: RangeQuery):
        """Global range scan: merge the local levels with the range
        results of every Compactor partition intersecting [lo, hi]."""
        from repro.lsm.iterators import dedup_newest, k_way_merge

        self.stats.reads += 1
        yield from self.compute(self.config.costs.read_base)
        sources: list = [self._memtable.range(request.lo, request.hi)]
        local_tables = (
            list(reversed(self.level0))
            + list(self.level1)
            + [t for batch in self._in_flight.values() for t in batch]
        )
        for table in local_tables:
            if table.overlaps(request.lo, request.hi):
                sources.append(table.scan(request.lo, request.hi))
        # Fan out to every partition the range touches (all members of
        # overlapping groups, newest version wins).
        partitions = self.partitioning.partitions_for_range(request.lo, request.hi)
        members = [m for p in partitions for m in p.members]
        calls = [
            self.kernel.spawn(self._call_retry(m, "range_query", request))
            for m in members
        ]
        replies = yield self.kernel.all_of(calls)
        remote_by_key: dict[bytes, list[tuple[bytes, bytes]]] = {}
        for reply in replies:
            for key, value in reply.pairs:
                remote_by_key.setdefault(key, []).append((key, value))
        pairs: list[tuple[bytes, bytes]] = []
        local_merged = list(dedup_newest(k_way_merge(sources)))
        # Local levels are strictly fresher than the Compactors for any
        # key they contain (single-Ingestor deployments), so local wins.
        combined: dict[bytes, bytes | None] = {}
        for key, versions in remote_by_key.items():
            combined[key] = versions[0][1]
        for entry in local_merged:
            combined[entry.key] = None if entry.tombstone else entry.value
        for key in sorted(combined):
            value = combined[key]
            if value is None:
                continue
            pairs.append((key, value))
            if request.limit is not None and len(pairs) >= request.limit:
                break
        yield from self.compute(len(pairs) * self.config.costs.scan_per_entry)
        return RangeQueryReply(tuple(pairs))

    def _handle_ingestor_read(self, src: str, request: ReadRequest):
        """Phase-1 probe from a coordinator: local result plus ts_c."""
        yield from self.compute(self.config.costs.read_base)
        entry, probes = self._search_local(request.key, request.as_of)
        yield from self.compute(probes * self.config.costs.probe_table)
        return IngestorReadResult(entry, self.ts_c, self.name)

    def _handle_read_phase1(self, src: str, request: Phase1Request):
        """Coordinate a multi-Ingestor read (Section III-E.2).

        Stamps the read with this node's loose clock and gathers every
        Ingestor's newest visible version and ts_c; the client decides
        whether phase 2 (asking Compactors) is needed.
        """
        self.stats.reads += 1
        read_ts = self.clock.now()
        probe = ReadRequest(request.key, as_of=read_ts)
        calls = [
            self.kernel.spawn(self._call_retry(peer, "ingestor_read", probe))
            for peer in self.peers
        ]
        yield from self.compute(self.config.costs.read_base)
        entry, probes = self._search_local(request.key, read_ts)
        yield from self.compute(probes * self.config.costs.probe_table)
        own = IngestorReadResult(entry, self.ts_c, self.name)
        others = yield self.kernel.all_of(calls)
        return Phase1Reply(read_ts, tuple([own] + list(others)))
