"""Reconfiguration: elastic Expand -> Migrate -> Detach (Section III-I).

Two operations, both live (reads and writes keep flowing throughout):

:func:`replace_compactor`
    Swap one Compactor for a fresh node (e.g. new hardware): the new
    node is added as an *overlapping* member of the partition (Expand),
    the old node's sstables are forwarded to it (Migrate), and the old
    node is removed from the partition (Detach).

:func:`split_partition`
    Scale out: split a partition's key range at a boundary, handing the
    upper half to a new Compactor.  The new node overlaps during
    migration, then the partitioning is re-cut so each node serves its
    half exclusively.

Correctness during migration relies on the same mechanism as normal
operation: reads fan out to all overlapping members and the newest
version wins, so a key is never unreachable while its tables move.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lsm.entry import encode_key
from repro.lsm.sstable import SSTable

from .compactor import Compactor
from .keyspace import Partition
from .messages import ForwardRequest


@dataclass(slots=True)
class ReconfigStats:
    """Outcome of one reconfiguration."""

    tables_migrated: int = 0
    entries_migrated: int = 0


def add_compactor(cluster, name: str) -> Compactor:
    """Create a fresh Compactor node in the cloud region (not yet in any
    partition); used as the target of Expand."""
    machine = cluster.machine(f"m-{name}", cluster.spec.cloud_region)
    node = Compactor(
        cluster.kernel,
        cluster.network,
        machine,
        name,
        cluster.config,
        cluster.clock_for(name),
        backups=[r.name for r in cluster.readers],
        multi_ingestor=cluster.spec.multi_ingestor,
    )
    cluster.compactors.append(node)
    return node


def _migrate_tables(
    source: Compactor,
    target_name: str,
    tables: list[SSTable],
    stats: ReconfigStats,
    phase: str = "migrate",
):
    """Forward ``tables`` from a Compactor to another via the normal
    forward/merge path, in bounded batches.

    ``phase`` namespaces the batch ids in the target's idempotency
    table: each migration phase restarts its batch counter, so without
    a distinct sender tag the target would deduplicate (i.e. drop) the
    second phase's batches against the first phase's.
    """
    batch_size = 16
    batch_id = 1_000_000  # distinct from Ingestor batch ids
    sender = f"{source.name}#{phase}"
    for start in range(0, len(tables), batch_size):
        batch = tables[start : start + batch_size]
        if not batch:
            continue
        high_ts = max(e.timestamp for t in batch for e in t.entries)
        entries = sum(len(t) for t in batch)
        batch_id += 1
        yield source.call(
            target_name,
            "forward",
            ForwardRequest(tuple(batch), high_ts, batch_id, ingestor=sender),
            size_bytes=source.config.costs.tables_size_bytes(entries),
            timeout=source.config.ack_timeout,
        )
        stats.tables_migrated += len(batch)
        stats.entries_migrated += entries


def replace_compactor(cluster, old_name: str, new_name: str):
    """Generator: live-replace ``old_name`` with a new Compactor node.

    Run inside the simulation, e.g.
    ``cluster.run_process(replace_compactor(cluster, "compactor-0", "compactor-0b"))``.
    Returns :class:`ReconfigStats`.
    """
    stats = ReconfigStats()
    old = next(c for c in cluster.compactors if c.name == old_name)
    partition = next(
        p for p in cluster.partitioning.partitions if old_name in p.members
    )
    new = add_compactor(cluster, new_name)

    # 1. Expand: the new node overlaps the old one's range.  New writes
    #    are load-balanced across both; reads fan out to both.
    partition.members.append(new_name)

    # 2. Migrate: push the old node's state to the new node.
    tables = list(old.level2) + list(old.level3)
    yield from _migrate_tables(old, new_name, tables, stats, phase="migrate")

    # 3. Detach: retire the old node.  Any tables it accumulated while
    #    migration ran (round-robin writes) are drained first.
    partition.members.remove(old_name)
    straggler_tables = [
        t
        for t in list(old.level2) + list(old.level3)
        if t.table_id not in {x.table_id for x in tables}
    ]
    yield from _migrate_tables(old, new_name, straggler_tables, stats, phase="drain")
    old.crash()  # retired: stops serving anything
    cluster.compactors.remove(old)
    return stats


def split_partition(cluster, compactor_name: str, new_name: str, boundary_key=None):
    """Generator: split a Compactor's range, handing keys >= boundary to
    a new Compactor.  Defaults to the midpoint of the node's current
    data.  Returns :class:`ReconfigStats`.
    """
    stats = ReconfigStats()
    parts = cluster.partitioning
    old = next(c for c in cluster.compactors if c.name == compactor_name)
    index = next(
        i for i, p in enumerate(parts.partitions) if compactor_name in p.members
    )
    partition = parts.partitions[index]

    if boundary_key is None:
        keys = sorted(
            key
            for level in (old.level2, old.level3)
            for t in level
            for key in (t.min_key, t.max_key)
        )
        if not keys:
            raise ValueError("cannot split an empty compactor without a boundary")
        boundary = keys[len(keys) // 2]
    else:
        boundary = encode_key(boundary_key)

    add_compactor(cluster, new_name)

    # 1. Expand: the new node exists but the old node keeps serving the
    #    whole range (migration *copies* tables, so every key remains
    #    readable at the old node throughout).
    # 2. Migrate: copy tables (splitting any that straddle the boundary)
    #    whose keys are >= boundary to the new node.
    yield from _migrate_upper_half(old, new_name, boundary, stats, phase="copy")

    # 3. Detach: atomically re-cut the partitioning so each node owns
    #    its half, sweep any stragglers that landed on the old node in
    #    the meantime, then drop the migrated range from the old node.
    new_partition = Partition(boundary, [new_name])
    parts.partitions.insert(index + 1, new_partition)
    parts._boundaries = [p.lower for p in parts.partitions[1:]]
    yield from _migrate_upper_half(old, new_name, boundary, stats, phase="sweep")
    _drop_upper_half(old, boundary)
    return stats


def _migrate_upper_half(
    old: Compactor,
    new_name: str,
    boundary: bytes,
    stats: ReconfigStats,
    phase: str = "migrate",
):
    to_move: list[SSTable] = []
    for level_tables in (list(old.level2), list(old.level3)):
        for table in level_tables:
            if table.min_key >= boundary:
                to_move.append(table)
            elif table.max_key >= boundary:
                for piece in table.split_at([boundary]):
                    if piece.min_key >= boundary:
                        to_move.append(piece)
    yield from _migrate_tables(old, new_name, to_move, stats, phase=phase)


def _drop_upper_half(old: Compactor, boundary: bytes) -> None:
    """Remove keys >= boundary from the old node, atomically per level."""
    from repro.lsm.manifest import LevelEdit

    for level_index in (0, 1):
        current = old.manifest.level(level_index)
        edit = LevelEdit()
        replacements: list[SSTable] = []
        removals: list[SSTable] = []
        for table in current:
            if table.min_key >= boundary:
                removals.append(table)
            elif table.max_key >= boundary:
                removals.append(table)
                kept = [p for p in table.split_at([boundary]) if p.min_key < boundary]
                replacements.extend(kept)
        if removals:
            edit.remove(level_index, removals)
        if replacements:
            edit.add(level_index, replacements)
        if removals or replacements:
            old.manifest.apply(edit)
