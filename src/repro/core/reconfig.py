"""Reconfiguration: elastic Expand -> Migrate -> Detach (Section III-I).

Two operations, both live (reads and writes keep flowing throughout):

:func:`replace_compactor`
    Swap one Compactor for a fresh node (e.g. new hardware): the new
    node is added as an *overlapping* member of the partition (Expand),
    the old node's sstables are forwarded to it (Migrate), and the old
    node is removed from the partition (Detach).

:func:`split_partition`
    Scale out: split a partition's key range at a boundary, handing the
    upper half to a new Compactor.  The new node overlaps during
    migration, then the partitioning is re-cut so each node serves its
    half exclusively.

Correctness during migration relies on the same mechanism as normal
operation: reads fan out to all overlapping members and the newest
version wins, so a key is never unreachable while its tables move.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lsm.entry import encode_key
from repro.lsm.sstable import SSTable
from repro.sim.rpc import RemoteError, RpcTimeout

from .compactor import Compactor
from .keyspace import Partition
from .messages import ForwardRequest

#: Attempts per migration batch before the reconfiguration gives up.
#: Retries reuse the batch id, so a duplicate delivery (timeout after
#: the target already applied the merge) is deduplicated by the
#: target's idempotency table rather than double-applied.
MIGRATE_RETRY_BUDGET = 8


def _record_phase(cluster, label: str, detail: str = "") -> None:
    """Capture a reconfiguration phase boundary in the shared history.

    Marks interleave with client operations in verification timelines,
    so a shrunk counterexample shows *where* in Expand -> Migrate ->
    Detach the workload sat when consistency broke.
    """
    history = getattr(cluster, "history", None)
    if history is not None:
        history.mark(cluster.kernel.now, label, detail)


@dataclass(slots=True)
class ReconfigStats:
    """Outcome of one reconfiguration."""

    tables_migrated: int = 0
    entries_migrated: int = 0


def add_compactor(cluster, name: str) -> Compactor:
    """Create a fresh Compactor node in the cloud region (not yet in any
    partition); used as the target of Expand."""
    machine = cluster.machine(f"m-{name}", cluster.spec.cloud_region)
    node = Compactor(
        cluster.kernel,
        cluster.network,
        machine,
        name,
        cluster.config,
        cluster.clock_for(name),
        backups=[r.name for r in cluster.readers],
        multi_ingestor=cluster.spec.multi_ingestor,
    )
    cluster.compactors.append(node)
    return node


def _migrate_tables(
    source: Compactor,
    target_name: str,
    tables: list[SSTable],
    stats: ReconfigStats,
    phase: str = "migrate",
):
    """Forward ``tables`` from a Compactor to another via the normal
    forward/merge path, in bounded batches.

    ``phase`` namespaces the batch ids in the target's idempotency
    table: each migration phase restarts its batch counter, so without
    a distinct sender tag the target would deduplicate (i.e. drop) the
    second phase's batches against the first phase's.
    """
    batch_size = 16
    batch_id = 1_000_000  # distinct from Ingestor batch ids
    sender = f"{source.name}#{phase}"
    for start in range(0, len(tables), batch_size):
        batch = tables[start : start + batch_size]
        if not batch:
            continue
        high_ts = max(e.timestamp for t in batch for e in t.entries)
        entries = sum(len(t) for t in batch)
        batch_id += 1
        last_error: Exception | None = None
        for attempt in range(MIGRATE_RETRY_BUDGET):
            try:
                yield source.call(
                    target_name,
                    "forward",
                    ForwardRequest(tuple(batch), high_ts, batch_id, ingestor=sender),
                    size_bytes=source.config.costs.tables_size_bytes(entries),
                    timeout=source.config.ack_timeout,
                )
                last_error = None
                break
            except (RpcTimeout, RemoteError) as error:
                # Dropped request or ack (e.g. a nemesis drop burst or a
                # partition outlasting the ack timeout): resend the same
                # batch; the target dedupes by (sender, batch_id).
                last_error = error
        if last_error is not None:
            raise last_error
        stats.tables_migrated += len(batch)
        stats.entries_migrated += entries


def _ingestors_quiescent(cluster) -> bool:
    """True when no Ingestor has forwarded tables awaiting a Compactor
    ack — i.e. nothing routed under the *current* partitioning is still
    in flight toward a node the reconfiguration is about to retire."""
    return all(i.inflight_tables == 0 for i in getattr(cluster, "ingestors", []))


def replace_compactor(cluster, old_name: str, new_name: str):
    """Generator: live-replace ``old_name`` with a new Compactor node.

    Run inside the simulation, e.g.
    ``cluster.run_process(replace_compactor(cluster, "compactor-0", "compactor-0b"))``.
    Returns :class:`ReconfigStats`.

    Detach is only taken once a drain round finds *nothing left to
    move*: the old node stays an overlapping member (so reads keep
    fanning out to it) while successive rounds forward whatever writes
    landed on it mid-migration, and the final empty check, the
    membership removal, and the crash happen without yielding — so no
    operation can slip between "old is fully copied" and "old is gone".
    An earlier version detached *before* the drain, which the
    model-checking harness (repro.verify) caught as a linearizability
    violation: reads issued during the drain window missed data only
    the old node held, and a forward acked by the old node mid-drain
    was lost when it was crashed.
    """
    stats = ReconfigStats()
    old = next(c for c in cluster.compactors if c.name == old_name)
    partition = next(
        p for p in cluster.partitioning.partitions if old_name in p.members
    )
    add_compactor(cluster, new_name)

    # 1. Expand: the new node overlaps the old one's range.  New writes
    #    are load-balanced across both; reads fan out to both.
    partition.members.append(new_name)
    _record_phase(cluster, "reconfig.expand", f"{old_name} += {new_name}")

    # 2. Migrate: push the old node's state to the new node, in rounds,
    #    until a round finds no table that has not already moved.
    _record_phase(cluster, "reconfig.migrate", f"{old_name} -> {new_name}")
    migrated: set = set()
    round_index = 0
    while True:
        pending = [
            t
            for t in list(old.level2) + list(old.level3)
            if t.table_id not in migrated
        ]
        if not pending:
            if _ingestors_quiescent(cluster):
                break  # nothing left anywhere: detach atomically below
            yield cluster.kernel.timeout(max(cluster.config.delta, 1e-4))
            continue
        migrated.update(t.table_id for t in pending)
        phase = "migrate" if round_index == 0 else f"drain{round_index}"
        yield from _migrate_tables(old, new_name, pending, stats, phase=phase)
        round_index += 1

    # 3. Detach: retire the old node.  No yields between the empty drain
    #    check above and the crash here, so an in-flight forward either
    #    already landed (and was drained) or will fail over to the new
    #    member after the crash.
    partition.members.remove(old_name)
    old.crash()  # retired: stops serving anything
    cluster.compactors.remove(old)
    _record_phase(cluster, "reconfig.detach", f"{old_name} retired")
    return stats


def split_partition(cluster, compactor_name: str, new_name: str, boundary_key=None):
    """Generator: split a Compactor's range, handing keys >= boundary to
    a new Compactor.  Defaults to the midpoint of the node's current
    data.  Returns :class:`ReconfigStats`.
    """
    stats = ReconfigStats()
    parts = cluster.partitioning
    old = next(c for c in cluster.compactors if c.name == compactor_name)
    index = next(
        i for i, p in enumerate(parts.partitions) if compactor_name in p.members
    )
    partition = parts.partitions[index]

    if boundary_key is None:
        keys = sorted(
            key
            for level in (old.level2, old.level3)
            for t in level
            for key in (t.min_key, t.max_key)
        )
        if not keys:
            raise ValueError("cannot split an empty compactor without a boundary")
        boundary = keys[len(keys) // 2]
    else:
        boundary = encode_key(boundary_key)

    add_compactor(cluster, new_name)
    _record_phase(cluster, "reconfig.expand", f"{compactor_name} += {new_name}")

    # 1. Expand: the new node exists but the old node keeps serving the
    #    whole range (migration *copies* tables, so every key remains
    #    readable at the old node throughout).
    # 2. Migrate: copy tables (splitting any that straddle the boundary)
    #    whose keys are >= boundary to the new node, in rounds, until a
    #    round finds no unprocessed source table and no Ingestor still
    #    has a forward in flight (an unacked batch may carry upper-half
    #    keys routed to the old node under the pre-split cut).
    _record_phase(cluster, "reconfig.migrate", f"{compactor_name} -> {new_name}")
    copied: set = set()
    round_index = 0
    while True:
        pending = [
            t
            for t in list(old.level2) + list(old.level3)
            if t.table_id not in copied and t.max_key >= boundary
        ]
        if not pending:
            if _ingestors_quiescent(cluster):
                break  # nothing in flight: re-cut atomically below
            yield cluster.kernel.timeout(max(cluster.config.delta, 1e-4))
            continue
        copied.update(t.table_id for t in pending)
        phase = "copy" if round_index == 0 else f"sweep{round_index}"
        yield from _migrate_upper_half(old, new_name, boundary, stats, pending, phase)
        round_index += 1

    # 3. Detach: re-cut the partitioning so each node owns its half and
    #    drop the migrated range from the old node.  No yields between
    #    the empty sweep check above, the re-cut, and the drop — so an
    #    upper-half write is either already copied (and safely dropped
    #    here) or routed to the new node under the new cut.
    new_partition = Partition(boundary, [new_name])
    parts.partitions.insert(index + 1, new_partition)
    parts._boundaries = [p.lower for p in parts.partitions[1:]]
    _drop_upper_half(old, boundary)
    _record_phase(cluster, "reconfig.detach", f"split at {boundary!r}")
    return stats


def _migrate_upper_half(
    old: Compactor,
    new_name: str,
    boundary: bytes,
    stats: ReconfigStats,
    tables: list[SSTable] | None = None,
    phase: str = "migrate",
):
    if tables is None:
        tables = [
            t
            for t in list(old.level2) + list(old.level3)
            if t.max_key >= boundary
        ]
    to_move: list[SSTable] = []
    for table in tables:
        if table.min_key >= boundary:
            to_move.append(table)
        else:
            for piece in table.split_at([boundary]):
                if piece.min_key >= boundary:
                    to_move.append(piece)
    yield from _migrate_tables(old, new_name, to_move, stats, phase=phase)


def _drop_upper_half(old: Compactor, boundary: bytes) -> None:
    """Remove keys >= boundary from the old node, atomically per level."""
    from repro.lsm.manifest import LevelEdit

    for level_index in (0, 1):
        current = old.manifest.level(level_index)
        edit = LevelEdit()
        replacements: list[SSTable] = []
        removals: list[SSTable] = []
        for table in current:
            if table.min_key >= boundary:
                removals.append(table)
            elif table.max_key >= boundary:
                removals.append(table)
                kept = [p for p in table.split_at([boundary]) if p.min_key < boundary]
                replacements.extend(kept)
        if removals:
            edit.remove(level_index, removals)
        if replacements:
            edit.add(level_index, replacements)
        if removals or replacements:
            old.manifest.apply(edit)
