"""CooLSM core: the deconstructed, distributed LSM tree.

Public surface:

* :class:`CooLSMConfig` / :class:`CostModel` — deployment parameters.
* :class:`ClusterSpec` / :func:`build_cluster` / :class:`Cluster` —
  assemble any topology of the paper's design space.
* :class:`Ingestor`, :class:`Compactor`, :class:`Reader`,
  :class:`MonolithicNode` — the node types.
* :class:`Client` — the client-side protocols (including the two-phase
  multi-Ingestor read).
* :class:`History` + the consistency checkers — machine-checkable
  versions of Table I's guarantees.
"""

from .client import Client, ClientStats
from .cluster import Cluster, ClusterSpec, build_cluster
from .compactor import CompactionTiming, Compactor, CompactorStats
from .config import CooLSMConfig
from .consistency import (
    ConsistencyReport,
    Violation,
    check_linearizable,
    check_linearizable_concurrent,
    check_snapshot_linearizable,
)
from .costs import DEFAULT_COSTS, CostModel
from .history import History, Mark, Operation
from .ingestor import Ingestor, IngestorStats
from .keyspace import Partition, Partitioning
from .messages import (
    BackupUpdate,
    ForwardReply,
    ForwardRequest,
    IngestorL1Update,
    IngestorReadResult,
    Phase1Reply,
    Phase1Request,
    RangeQuery,
    RangeQueryReply,
    ReadReply,
    ReadRequest,
    UpsertReply,
    UpsertRequest,
)
from .monitor import ClusterMonitor, Sample, Timeline
from .monolithic import MonolithicNode
from .reader import Reader, ReaderStats
from .reconfig import (
    ReconfigStats,
    add_compactor,
    replace_compactor,
    split_partition,
)
from .shard import Shard, ShardMap, WrongShardError, is_wrong_shard

__all__ = [
    "BackupUpdate",
    "Client",
    "ClientStats",
    "Cluster",
    "ClusterMonitor",
    "ClusterSpec",
    "CompactionTiming",
    "Compactor",
    "CompactorStats",
    "ConsistencyReport",
    "CooLSMConfig",
    "CostModel",
    "DEFAULT_COSTS",
    "ForwardReply",
    "ForwardRequest",
    "History",
    "Ingestor",
    "IngestorL1Update",
    "IngestorReadResult",
    "IngestorStats",
    "Mark",
    "MonolithicNode",
    "Operation",
    "Partition",
    "Partitioning",
    "Phase1Reply",
    "Phase1Request",
    "RangeQuery",
    "RangeQueryReply",
    "ReadReply",
    "ReadRequest",
    "Reader",
    "Sample",
    "Shard",
    "ShardMap",
    "Timeline",
    "ReaderStats",
    "ReconfigStats",
    "WrongShardError",
    "is_wrong_shard",
    "add_compactor",
    "replace_compactor",
    "split_partition",
    "UpsertReply",
    "UpsertRequest",
    "Violation",
    "build_cluster",
    "check_linearizable",
    "check_linearizable_concurrent",
    "check_snapshot_linearizable",
]
