"""Write flow control: compaction-debt accounting and admission control.

Luo & Carey ("On Performance Stability in LSM-based Storage Systems")
show that an LSM ingest path without admission control hides write
stalls behind a healthy *mean* throughput: L0 stacks up, a minor
compaction eventually blocks on in-flight forwards, and the writes that
trigger it pay multi-second tails.  This module adds the missing
machinery at the Ingestor:

* :class:`DebtSnapshot` — the instantaneous *compaction debt*: L0 run
  count, L1 backlog, and in-flight forwarded tables, each normalised by
  its configured threshold.
* :class:`AdmissionController` — a two-threshold controller (cf.
  RocksDB's slowdown/stop write controller).  Below
  ``flow_slowdown_debt`` writes pass untouched; between the thresholds
  each admitted write pays a graduated delay; above ``flow_stall_debt``
  writes are rejected with :class:`BackpressureError`, which travels
  over the wire inside the ordinary error reply and tells the client to
  back off and retry (the write is shed *before* it can stack more L0).
* :class:`StallEvent` — start/duration/trigger records for every stall,
  exposed through ``health_gauges()`` and the Monitor so stability is
  observable over time, not just on average.

``BackpressureError`` follows the same marker convention as
``WrongShardError`` (:mod:`repro.core.shard`): the marker substring
survives the RPC layer's error stringification, so no new wire message
is needed and :func:`is_backpressure` works on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .config import CooLSMConfig

#: Substring embedded in every BackpressureError message; survives the
#: RPC error round-trip (RemoteError wraps repr(error)).
BACKPRESSURE_MARKER = "BACKPRESSURE"

STATE_OK = "ok"
STATE_SLOWDOWN = "slowdown"
STATE_STALL = "stall"

#: Numeric encoding for gauges/timelines (dicts of floats on the wire).
STATE_CODES = {STATE_OK: 0, STATE_SLOWDOWN: 1, STATE_STALL: 2}


class BackpressureError(Exception):
    """A write was rejected by admission control.

    Retryable by construction: the node is healthy but shedding load;
    the client should back off and resend rather than fail over.
    """

    def __init__(self, node: str, debt: float, trigger: str) -> None:
        super().__init__(
            f"{BACKPRESSURE_MARKER}: {node} shedding writes "
            f"(debt={debt:.3f}, trigger={trigger})"
        )
        self.node = node
        self.debt = debt
        self.trigger = trigger


def is_backpressure(error: object) -> bool:
    """True when ``error`` is (or wraps, at any RPC distance) a
    :class:`BackpressureError`."""
    return BACKPRESSURE_MARKER in str(error)


@dataclass(frozen=True, slots=True)
class DebtSnapshot:
    """Instantaneous compaction debt at one Ingestor.

    Each ratio is the raw quantity over its configured threshold; the
    controller acts on the worst of them, so debt 1.0 means "exactly at
    the threshold that triggers compaction/stalling work".
    """

    l0_tables: int
    l1_tables: int
    inflight_forwards: int
    pending_bytes: int
    l0_ratio: float
    l1_ratio: float
    inflight_ratio: float

    @property
    def debt(self) -> float:
        return max(self.l0_ratio, self.l1_ratio, self.inflight_ratio)

    @property
    def trigger(self) -> str:
        """Name of the dominating debt component."""
        worst = self.debt
        if self.inflight_ratio == worst:
            return "inflight_forwards"
        if self.l0_ratio == worst:
            return "l0_tables"
        return "l1_backlog"


@dataclass(slots=True)
class StallEvent:
    """One write stall: when it began, how long it lasted, and which
    debt component (or blocking wait) caused it."""

    start: float
    duration: float
    trigger: str


class AdmissionController:
    """Two-threshold admission control over :class:`DebtSnapshot`.

    Pure bookkeeping plus decisions — it never sleeps or yields itself;
    the Ingestor applies returned delays with its own kernel timeout, so
    the controller is identical under the simulator and the live
    runtime.
    """

    def __init__(self, config: "CooLSMConfig", node: str = "") -> None:
        self.config = config
        self.node = node
        self.state = STATE_OK
        self.admitted = 0
        self.delayed = 0
        self.rejected = 0
        self.delay_time = 0.0
        self.last_debt = 0.0
        self.stall_events: list[StallEvent] = []
        self._stall_started: float | None = None
        self._stall_trigger = ""

    # ------------------------------------------------------------------
    # Debt accounting
    # ------------------------------------------------------------------
    def snapshot(
        self,
        l0_tables: int,
        l1_tables: int,
        inflight_forwards: int,
        pending_bytes: int = 0,
    ) -> DebtSnapshot:
        """Build a debt snapshot normalised by this config's thresholds."""
        config = self.config
        snap = DebtSnapshot(
            l0_tables=l0_tables,
            l1_tables=l1_tables,
            inflight_forwards=inflight_forwards,
            pending_bytes=pending_bytes,
            l0_ratio=l0_tables / max(1, config.l0_threshold),
            l1_ratio=l1_tables / max(1, config.l1_threshold),
            inflight_ratio=inflight_forwards / max(1, config.max_inflight_tables),
        )
        self.last_debt = snap.debt
        return snap

    # ------------------------------------------------------------------
    # Admission decision
    # ------------------------------------------------------------------
    def admit(self, snap: DebtSnapshot, now: float) -> float:
        """Decide one write's fate.

        Returns the delay (seconds, possibly 0) the write must pay
        before proceeding, or raises :class:`BackpressureError` when
        debt is past the stall threshold.  ``now`` stamps stall events.
        """
        config = self.config
        debt = snap.debt
        self.last_debt = debt
        if debt >= config.flow_stall_debt:
            if self._stall_started is None:
                self._stall_started = now
                self._stall_trigger = snap.trigger
            self.state = STATE_STALL
            self.rejected += 1
            raise BackpressureError(self.node, debt, snap.trigger)
        self._close_stall(now)
        self.admitted += 1
        if debt >= config.flow_slowdown_debt:
            self.state = STATE_SLOWDOWN
            span = config.flow_stall_debt - config.flow_slowdown_debt
            fraction = (debt - config.flow_slowdown_debt) / span if span > 0 else 1.0
            delay = config.flow_max_delay * min(1.0, max(fraction, 0.0))
            if delay > 0:
                self.delayed += 1
                self.delay_time += delay
            return delay
        self.state = STATE_OK
        return 0.0

    def _close_stall(self, now: float) -> None:
        if self._stall_started is not None:
            self.record_stall(
                self._stall_started, now - self._stall_started, self._stall_trigger
            )
            self._stall_started = None

    def record_stall(self, start: float, duration: float, trigger: str) -> None:
        """Record a completed stall (also used by the Ingestor for its
        blocking wait on in-flight forward acks)."""
        self.stall_events.append(StallEvent(start, duration, trigger))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def stall_time(self) -> float:
        """Total seconds spent in recorded (closed) stalls."""
        return sum(event.duration for event in self.stall_events)

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def gauges(self) -> dict[str, float]:
        """Flow-control gauges merged into the node's health reply."""
        return {
            "compaction_debt": round(self.last_debt, 4),
            "admission_state": self.state_code,
            "admission_admitted": self.admitted,
            "admission_rejections": self.rejected,
            "admission_delays": self.delayed,
            "admission_delay_time": round(self.delay_time, 6),
            "stall_events": len(self.stall_events),
            "stall_time": round(self.stall_time, 6),
        }
