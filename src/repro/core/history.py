"""Operation histories: the raw material of consistency checking.

Clients record every operation's invocation time, response time, and
effect (value written / version read) into a :class:`History`.  The
checkers in :mod:`repro.core.consistency` then decide whether the
history satisfies linearizability, snapshot linearizability, or
Linearizable+Concurrent — the three guarantees of the paper's Table I.

Times here are *true* simulation times (the observer's clock); the
``timestamp`` field on operations carries the loose-clock stamp a node
assigned, which is what the 2δ rule reasons about.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Mark:
    """A timestamped annotation on a history (not an operation).

    Reconfiguration phases (Expand / Migrate / Detach) and other
    cluster-level transitions record marks so that verification
    timelines can interleave them with client operations; the
    consistency checkers ignore them.
    """

    time: float
    label: str
    detail: str = ""


@dataclass(frozen=True, slots=True)
class Operation:
    """One completed client operation.

    Attributes:
        op_id: Unique id.
        kind: "write" or "read".
        key: The key operated on.
        value: Value written, or value returned (None for a miss).
        invoked_at / returned_at: True simulation times of the client's
            call and return.
        timestamp: Loose-clock timestamp assigned by the serving node —
            the write's stamp for writes, the version-read's stamp (or
            the read's coordinator stamp) for reads.
        client: Issuing client name.
        server: Node that served the operation (reads: where the value
            came from).
    """

    op_id: int
    kind: str
    key: bytes
    value: bytes | None
    invoked_at: float
    returned_at: float
    timestamp: float
    client: str = ""
    server: str = ""

    @property
    def is_read(self) -> bool:
        return self.kind == "read"

    @property
    def is_write(self) -> bool:
        return self.kind == "write"


class History:
    """An append-only log of completed operations.

    Op ids are assigned from a *per-History* counter (1, 2, 3, ...) so
    that two replays of the same workload produce bit-identical
    histories — a module-level counter would leak state across
    replays (and across tests) and break replay-exactness.
    """

    def __init__(self) -> None:
        self.operations: list[Operation] = []
        self.marks: list[Mark] = []
        self._op_ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def record(
        self,
        kind: str,
        key: bytes,
        value: bytes | None,
        invoked_at: float,
        returned_at: float,
        timestamp: float,
        client: str = "",
        server: str = "",
    ) -> Operation:
        """Append one completed operation."""
        if kind not in ("write", "read"):
            raise ValueError(f"unknown operation kind: {kind}")
        if returned_at < invoked_at:
            raise ValueError("operation returned before it was invoked")
        op = Operation(
            next(self._op_ids), kind, key, value, invoked_at, returned_at, timestamp,
            client, server,
        )
        self.operations.append(op)
        return op

    def mark(self, time: float, label: str, detail: str = "") -> Mark:
        """Append a timestamped annotation (ignored by checkers)."""
        mark = Mark(time, label, detail)
        self.marks.append(mark)
        return mark

    def for_key(self, key: bytes) -> "History":
        """The sub-history touching one key."""
        sub = History()
        sub.operations = [op for op in self.operations if op.key == key]
        return sub

    def keys(self) -> set[bytes]:
        return {op.key for op in self.operations}

    def writes(self) -> list[Operation]:
        return [op for op in self.operations if op.is_write]

    def reads(self) -> list[Operation]:
        return [op for op in self.operations if op.is_read]
