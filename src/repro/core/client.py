"""The CooLSM client library.

A :class:`Client` is a simulated application node.  It implements the
paper's client-side protocols:

* **upsert/delete** — sent to an Ingestor (the nearest by default).
* **read** (single Ingestor) — sent to the Ingestor, which owns the
  full read path (memtable, L0, L1, then the right Compactor).
* **read** (multiple Ingestors) — the two-phase protocol of Section
  III-E.2: phase 1 asks a coordinator Ingestor to stamp the read and
  gather every Ingestor's newest visible version plus its ts_c; the
  client then asks the Compactors only if the phase-1 results cannot
  prove freshness (ts_h - min ts_c < 2δ) or nothing was found.
* **read_from_backup / analytics_query** — served by a Reader without
  touching the ingestion path (Sections III-D, IV-E).

Every completed operation is appended to the client's
:class:`~repro.core.history.History` and its latency recorded, feeding
both the consistency checkers and the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.effects import ComputeHost, EffectKernel, Fabric
from repro.lsm.entry import Entry, encode_key, encode_value
from repro.sim.clock import definitely_after
from repro.sim.rpc import RemoteError, RpcNode, RpcTimeout

from .config import CooLSMConfig
from .flow import is_backpressure
from .history import History
from .keyspace import Partitioning
from .messages import (
    Phase1Reply,
    Phase1Request,
    RangeQuery,
    RangeQueryReply,
    ReadReply,
    ReadRequest,
    ShardMapRequest,
    UpsertBatchReply,
    UpsertBatchRequest,
    UpsertReply,
    UpsertRequest,
)
from .shard import ShardMap, is_wrong_shard


@dataclass(slots=True)
class ClientStats:
    """Per-kind operation latencies (true simulation time, seconds)."""

    latencies: dict[str, list[float]] = field(default_factory=dict)
    phase2_reads: int = 0
    timeouts: int = 0
    failovers: int = 0
    shard_redirects: int = 0
    map_refreshes: int = 0
    backpressure_retries: int = 0

    def record(self, kind: str, latency: float) -> None:
        self.latencies.setdefault(kind, []).append(latency)

    def all(self, kind: str) -> list[float]:
        return self.latencies.get(kind, [])


class Client(RpcNode):
    """A CooLSM client.

    Operation methods are coroutines — drive them with
    ``yield from client.upsert(...)`` inside a process, or via the
    harness helpers.

    Args:
        kernel/network/machine/name: Simulation plumbing.
        config: Deployment parameters (δ, costs).
        partitioning: Compactor map, needed for phase-2 reads.
        ingestors: Ingestor names this client may talk to; the first is
            its default (nearest) Ingestor and read coordinator.
        readers: Reader names for backup reads and analytics.
        multi_ingestor: Selects the read protocol.
        history: Optional shared history for consistency checking.
    """

    def __init__(
        self,
        kernel: EffectKernel,
        network: Fabric,
        machine: ComputeHost,
        name: str,
        config: CooLSMConfig,
        partitioning: Partitioning,
        ingestors: list[str],
        readers: list[str] | None = None,
        multi_ingestor: bool = False,
        history: History | None = None,
        shard_map: ShardMap | None = None,
    ) -> None:
        super().__init__(kernel, network, machine, name)
        if not ingestors:
            raise ValueError("a client needs at least one Ingestor")
        self.config = config
        self.partitioning = partitioning
        self.ingestors = list(ingestors)
        self.readers = list(readers or [])
        self.multi_ingestor = multi_ingestor
        self.history = history
        # Sharded scale-out mode: route each op to the owner named by
        # the (versioned) shard map instead of failing over blindly.
        # Refreshed in place whenever a node bounces a request with a
        # WrongShard redirect — clients never poll for membership.
        self.shard_map = shard_map
        self.stats = ClientStats()

    # ------------------------------------------------------------------
    # Fault handling: timeouts and failover
    # ------------------------------------------------------------------
    def _target_order(self, preferred: str | None, pool: list[str]) -> list[str]:
        """Preferred target first, then the remaining pool as alternates."""
        first = preferred or (pool[0] if pool else None)
        if first is None:
            raise ValueError("no target available")
        return [first] + [t for t in pool if t != first]

    def _failover_call(
        self,
        preferred: str | None,
        pool: list[str],
        method: str,
        request,
        size_bytes: int = 256,
    ):
        """Issue an RPC with the config-derived timeout, failing over to
        alternate targets.

        Every client RPC goes through here (or the equivalent loop in
        :meth:`read`), so a crashed node surfaces as
        :class:`~repro.sim.rpc.RpcTimeout` after the retry budget —
        never as a driver hung forever on ``timeout=None``.  Returns
        ``(serving_target, reply)``.

        Backpressure replies (admission control shedding writes) are
        retried against the *same* target with exponential backoff and
        their own, much larger budget — the node is healthy and asking
        the client to slow down, so failing over or burning the failover
        budget would defeat flow control.
        """
        order = self._target_order(preferred, pool)
        last_error: Exception | None = None
        attempt = 0
        bp_retries = 0
        backoff = self.config.forward_backoff_base
        prev_target: str | None = None
        while attempt < self.config.client_retry_budget:
            target = order[attempt % len(order)]
            if prev_target is not None and target != prev_target:
                self.stats.failovers += 1
            prev_target = target
            try:
                reply = yield self.call(
                    target,
                    method,
                    request,
                    size_bytes=size_bytes,
                    timeout=self.config.request_timeout,
                )
                return target, reply
            except (RpcTimeout, RemoteError) as error:
                last_error = error
                if is_backpressure(error):
                    self.stats.backpressure_retries += 1
                    bp_retries += 1
                    if bp_retries > 8 * self.config.client_retry_budget:
                        raise last_error
                    yield self.kernel.timeout(backoff)
                    backoff = min(backoff * 2.0, self.config.forward_backoff_cap)
                    continue
                self.stats.timeouts += 1
                attempt += 1
        raise last_error

    # ------------------------------------------------------------------
    # Sharded routing (live scale-out)
    # ------------------------------------------------------------------
    def _refresh_shard_map(self):
        """Try to fetch a strictly newer shard map from any live node.

        Asks the current map's owners first (the node that bounced us
        is usually the one holding the successor epoch), then the rest
        of the configured Ingestor pool.  Returns True if a newer map
        was installed.
        """
        assert self.shard_map is not None
        candidates = self.shard_map.owners()
        for name in self.ingestors:
            if name not in candidates:
                candidates.append(name)
        for target in candidates:
            try:
                reply = yield self.call(
                    target,
                    "shard_map",
                    ShardMapRequest(self.shard_map.epoch),
                    timeout=self.config.request_timeout,
                )
            except (RpcTimeout, RemoteError):
                continue
            fresher = reply.shard_map
            if fresher is not None and fresher.epoch > self.shard_map.epoch:
                self.shard_map = fresher
                self.stats.map_refreshes += 1
                return True
        return False

    def _sharded_call(self, key: bytes, method: str, request, size_bytes: int = 256):
        """Owner-routed RPC: WrongShard bounces refresh the map and
        re-route instead of burning the failover budget.

        During a split's fence→activate window no node serves the
        moving range; redirects that find no fresher map back off
        (bounded) until the new owner goes live.  Other failures retry
        the owner — in sharded mode there is no alternate target, only
        a fresher map.
        """
        failures = 0
        redirects = 0
        bp_retries = 0
        backoff = self.config.forward_backoff_base
        last_error: Exception | None = None
        while True:
            target = self.shard_map.owner_of(key)
            try:
                reply = yield self.call(
                    target,
                    method,
                    request,
                    size_bytes=size_bytes,
                    timeout=self.config.request_timeout,
                )
                return target, reply
            except (RpcTimeout, RemoteError) as error:
                last_error = error
                if is_backpressure(error):
                    self.stats.backpressure_retries += 1
                    bp_retries += 1
                    if bp_retries > 8 * self.config.client_retry_budget:
                        raise last_error
                    yield self.kernel.timeout(backoff)
                    backoff = min(backoff * 2.0, self.config.forward_backoff_cap)
                    continue
                if is_wrong_shard(error):
                    self.stats.shard_redirects += 1
                    redirects += 1
                    if redirects > 8 * self.config.client_retry_budget:
                        raise last_error
                    refreshed = yield from self._refresh_shard_map()
                    if not refreshed:
                        yield self.kernel.timeout(backoff)
                        backoff = min(backoff * 2.0, self.config.forward_backoff_cap)
                    continue
                self.stats.timeouts += 1
                failures += 1
                if failures >= self.config.client_retry_budget:
                    raise last_error
                yield from self._refresh_shard_map()
                yield self.kernel.timeout(backoff)
                backoff = min(backoff * 2.0, self.config.forward_backoff_cap)

    def _member_read(self, member: str, request: ReadRequest):
        """Phase-2 helper: bounded-retry read against one Compactor.
        Raises after the budget — a missing member's answer could hide
        the newest version, so the read must fail, not degrade."""
        last_error: Exception | None = None
        for __ in range(self.config.client_retry_budget):
            try:
                reply = yield self.call(
                    member, "read", request, timeout=self.config.request_timeout
                )
                return reply
            except (RpcTimeout, RemoteError) as error:
                last_error = error
                self.stats.timeouts += 1
        raise last_error

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def upsert(self, key, value, ingestor: str | None = None):
        """Insert or overwrite ``key``; returns the assigned timestamp."""
        encoded_key = encode_key(key)
        encoded_value = encode_value(value)
        request = UpsertRequest(encoded_key, encoded_value)
        return (yield from self._do_upsert(request, ingestor))

    def delete(self, key, ingestor: str | None = None):
        """Delete ``key`` via a tombstone."""
        request = UpsertRequest(encode_key(key), b"", tombstone=True)
        return (yield from self._do_upsert(request, ingestor))

    def _do_upsert(self, request: UpsertRequest, ingestor: str | None):
        invoked = self.kernel.now
        if self.shard_map is not None and ingestor is None:
            target, reply = yield from self._sharded_call(
                request.key, "upsert", request,
                size_bytes=64 + len(request.value),
            )
        else:
            target, reply = yield from self._failover_call(
                ingestor, self.ingestors, "upsert", request,
                size_bytes=64 + len(request.value),
            )
        assert isinstance(reply, UpsertReply)
        latency = self.kernel.now - invoked
        self.stats.record("write", latency)
        if self.history is not None:
            self.history.record(
                "write",
                request.key,
                None if request.tombstone else request.value,
                invoked,
                self.kernel.now,
                reply.timestamp,
                client=self.name,
                server=target,
            )
        return reply

    def upsert_many(self, items, ingestor: str | None = None):
        """Insert or overwrite many keys with ONE batched RPC.

        ``items`` is an iterable of ``(key, value)`` pairs; they are
        applied by the Ingestor in order and each gets its own stamped
        :class:`UpsertReply` (returned as a list, in order).  The whole
        batch retries/fails over as a unit — safe because re-upserting
        the same values is idempotent, the same argument that covers a
        single upsert whose ack was lost.
        """
        requests = tuple(
            UpsertRequest(encode_key(key), encode_value(value))
            for key, value in items
        )
        return (yield from self._do_upsert_batch(requests, ingestor))

    def _do_upsert_batch(self, requests: tuple[UpsertRequest, ...], ingestor: str | None):
        if not requests:
            return []
        if self.shard_map is not None and ingestor is None:
            return (yield from self._do_upsert_batch_sharded(requests))
        invoked = self.kernel.now
        size = 64 + sum(32 + len(r.key) + len(r.value) for r in requests)
        target, reply = yield from self._failover_call(
            ingestor, self.ingestors, "upsert_batch",
            UpsertBatchRequest(requests), size_bytes=size,
        )
        assert isinstance(reply, UpsertBatchReply)
        completed = self.kernel.now
        latency = completed - invoked
        for request, op_reply in zip(requests, reply.replies):
            self.stats.record("write", latency)
            if self.history is not None:
                self.history.record(
                    "write",
                    request.key,
                    None if request.tombstone else request.value,
                    invoked,
                    completed,
                    op_reply.timestamp,
                    client=self.name,
                    server=target,
                )
        return list(reply.replies)

    def _do_upsert_batch_sharded(self, requests: tuple[UpsertRequest, ...]):
        """Apply a mixed batch under shard routing.

        The batch is grouped per shard owner *under the current map*
        and each group goes out as one ``upsert_batch`` RPC.  A
        WrongShard bounce refreshes the map and the still-unacked ops
        are regrouped — after a split a group that used to be one
        owner's keys legitimately straddles two owners, so regrouping
        (not blind retry) is what terminates.  Replies come back in the
        original op order.
        """
        invoked = self.kernel.now
        replies: list[UpsertReply | None] = [None] * len(requests)
        pending = list(range(len(requests)))
        failures = 0
        redirects = 0
        bp_retries = 0
        backoff = self.config.forward_backoff_base
        last_error: Exception | None = None
        while pending:
            owner = self.shard_map.owner_of(requests[pending[0]].key)
            group = [
                i for i in pending
                if self.shard_map.owner_of(requests[i].key) == owner
            ]
            group_requests = tuple(requests[i] for i in group)
            size = 64 + sum(32 + len(r.key) + len(r.value) for r in group_requests)
            try:
                reply = yield self.call(
                    owner,
                    "upsert_batch",
                    UpsertBatchRequest(group_requests),
                    size_bytes=size,
                    timeout=self.config.request_timeout,
                )
            except (RpcTimeout, RemoteError) as error:
                last_error = error
                if is_backpressure(error):
                    self.stats.backpressure_retries += 1
                    bp_retries += 1
                    if bp_retries > 8 * self.config.client_retry_budget:
                        raise last_error
                    yield self.kernel.timeout(backoff)
                    backoff = min(backoff * 2.0, self.config.forward_backoff_cap)
                    continue
                if is_wrong_shard(error):
                    self.stats.shard_redirects += 1
                    redirects += 1
                    if redirects > 8 * self.config.client_retry_budget:
                        raise last_error
                    refreshed = yield from self._refresh_shard_map()
                    if not refreshed:
                        yield self.kernel.timeout(backoff)
                        backoff = min(backoff * 2.0, self.config.forward_backoff_cap)
                    continue
                self.stats.timeouts += 1
                failures += 1
                if failures >= self.config.client_retry_budget:
                    raise last_error
                yield from self._refresh_shard_map()
                yield self.kernel.timeout(backoff)
                backoff = min(backoff * 2.0, self.config.forward_backoff_cap)
                continue
            assert isinstance(reply, UpsertBatchReply)
            completed = self.kernel.now
            for index, op_reply in zip(group, reply.replies):
                replies[index] = op_reply
                request = requests[index]
                self.stats.record("write", completed - invoked)
                if self.history is not None:
                    self.history.record(
                        "write",
                        request.key,
                        None if request.tombstone else request.value,
                        invoked,
                        completed,
                        op_reply.timestamp,
                        client=self.name,
                        server=owner,
                    )
            pending = [i for i in pending if i not in set(group)]
        return replies

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def read(self, key, coordinator: str | None = None):
        """Point read with the deployment's strongest available path.

        Times out and fails over to an alternate Ingestor (or, for the
        two-phase protocol, an alternate coordinator) when the serving
        node is crashed or unreachable.
        """
        encoded = encode_key(key)
        invoked = self.kernel.now
        if self.multi_ingestor:
            order = self._target_order(coordinator, self.ingestors)
            last_error: Exception | None = None
            entry = stamp = None
            for attempt in range(self.config.client_retry_budget):
                target = order[attempt % len(order)]
                if attempt and target != order[(attempt - 1) % len(order)]:
                    self.stats.failovers += 1
                try:
                    entry, stamp = yield from self._two_phase_read(encoded, target)
                    last_error = None
                    break
                except (RpcTimeout, RemoteError) as error:
                    last_error = error
                    self.stats.timeouts += 1
            if last_error is not None:
                raise last_error
        elif self.shard_map is not None and coordinator is None:
            # Sharded: exactly one Ingestor serves this key, so the
            # single-Ingestor read path applies per shard.
            __, reply = yield from self._sharded_call(
                encoded, "read", ReadRequest(encoded)
            )
            entry = reply.entry
            stamp = entry.timestamp if entry is not None else 0.0
        else:
            __, reply = yield from self._failover_call(
                coordinator, self.ingestors, "read", ReadRequest(encoded)
            )
            entry = reply.entry
            stamp = entry.timestamp if entry is not None else 0.0
        latency = self.kernel.now - invoked
        self.stats.record("read", latency)
        value = self._value_of(entry)
        if self.history is not None:
            self.history.record(
                "read", encoded, value, invoked, self.kernel.now, stamp,
                client=self.name,
            )
        return value

    def _two_phase_read(self, key: bytes, coordinator: str | None):
        """Section III-E.2's two-phase multi-Ingestor read."""
        target = coordinator or self.ingestors[0]
        phase1 = yield self.call(
            target, "read_phase1", Phase1Request(key),
            timeout=self.config.request_timeout,
        )
        assert isinstance(phase1, Phase1Reply)
        found = [r.entry for r in phase1.results if r.entry is not None]
        # Freshness proof: every record at the Compactors was forwarded by
        # some Ingestor i with timestamp <= that Ingestor's ts_c, so no
        # Compactor record can supersede ts_h iff ts_h - max_i ts_c_i >= 2δ.
        # (The paper says "lowest received ts_c"; the max is the sound
        # bound — see DESIGN.md's deviations section.)
        max_ts_c = max(r.ts_c for r in phase1.results)
        best: Entry | None = max(found, key=lambda e: e.version) if found else None
        skip_phase2 = best is not None and definitely_after(
            best.timestamp, max_ts_c, self.config.delta
        )
        if not skip_phase2:
            self.stats.phase2_reads += 1
            partition = self.partitioning.partition_for(key)
            request = ReadRequest(key, as_of=phase1.read_ts)
            calls = [
                self.kernel.spawn(self._member_read(m, request))
                for m in partition.members
            ]
            replies = yield self.kernel.all_of(calls)
            for reply in replies:
                assert isinstance(reply, ReadReply)
                if reply.entry is not None and (
                    best is None or reply.entry.version > best.version
                ):
                    best = reply.entry
        return best, phase1.read_ts

    def read_from_backup(self, key, reader: str | None = None):
        """Point read served by a Reader (snapshot-linearizable)."""
        if not self.readers and reader is None:
            raise ValueError("deployment has no Readers")
        encoded = encode_key(key)
        invoked = self.kernel.now
        target, reply = yield from self._failover_call(
            reader, self.readers, "read", ReadRequest(encoded)
        )
        latency = self.kernel.now - invoked
        self.stats.record("backup_read", latency)
        entry = reply.entry
        value = self._value_of(entry)
        if self.history is not None:
            self.history.record(
                "read", encoded, value, invoked, self.kernel.now,
                entry.timestamp if entry is not None else 0.0,
                client=self.name, server=target,
            )
        return value

    def scan(self, lo, hi, limit: int | None = None, ingestor: str | None = None):
        """Global range scan through the Ingestor: merges the Ingestor's
        levels with every Compactor partition the range touches.

        Fresher than :meth:`analytics_query` (which reads a possibly
        lagging Reader snapshot) but interferes with the ingestion path.
        Returns sorted (key, value) pairs, tombstones elided.
        """
        request = RangeQuery(encode_key(lo), encode_key(hi), limit)
        invoked = self.kernel.now
        __, reply = yield from self._failover_call(
            ingestor, self.ingestors, "range_query", request, size_bytes=64
        )
        assert isinstance(reply, RangeQueryReply)
        self.stats.record("scan", self.kernel.now - invoked)
        return list(reply.pairs)

    def analytics_query(self, lo, hi, limit: int | None = None, reader: str | None = None):
        """Range query served by a Reader (the paper's analytics task)."""
        if not self.readers and reader is None:
            raise ValueError("deployment has no Readers")
        request = RangeQuery(encode_key(lo), encode_key(hi), limit)
        invoked = self.kernel.now
        __, reply = yield from self._failover_call(
            reader, self.readers, "range_query", request, size_bytes=64
        )
        assert isinstance(reply, RangeQueryReply)
        self.stats.record("analytics", self.kernel.now - invoked)
        return list(reply.pairs)

    @staticmethod
    def _value_of(entry: Entry | None) -> bytes | None:
        if entry is None or entry.tombstone:
            return None
        return entry.value


class ClientPipeline:
    """Auto-batching, pipelined write issuer on top of one client.

    Coalesces submitted upserts into :meth:`Client.upsert_many` batches
    of up to ``max_batch`` ops and keeps up to ``depth`` batched RPCs in
    flight at once, so one client saturates the connection instead of
    paying a full round-trip (and, server-side, a full fsync) per op.
    Kernel-agnostic: works under the simulator and the live runtime.

    Use :meth:`put` (a generator — ``yield from pipeline.put(...)``) to
    submit with backpressure: it parks the caller while the window
    (``depth * max_batch`` ops buffered or in flight) is full.  Call
    :meth:`drain` before reading your own writes or exiting — only ops
    acked by then are durable; the first batch failure (after the
    client's own retries and failovers) is re-raised there and by the
    next ``put``.

    Per-op latencies (submit -> batch ack, seconds) accumulate in
    ``latencies`` for the benchmark harness.
    """

    def __init__(
        self,
        client: Client,
        ingestor: str | None = None,
        max_batch: int = 32,
        depth: int = 4,
    ) -> None:
        if max_batch <= 0 or depth <= 0:
            raise ValueError("max_batch and depth must be positive")
        self.client = client
        self.kernel = client.kernel
        self.ingestor = ingestor
        self.max_batch = max_batch
        self.depth = depth
        self.latencies: list[float] = []
        self.ops_acked = 0
        self.batches_sent = 0
        self._buffer: list[tuple[UpsertRequest, float]] = []
        self._inflight_batches = 0
        self._inflight_ops = 0
        self._pump_scheduled = False
        self._waiters: list = []
        self._error: Exception | None = None

    @property
    def pending_ops(self) -> int:
        """Ops submitted but not yet acked (buffered + in flight)."""
        return len(self._buffer) + self._inflight_ops

    def submit(self, key, value) -> None:
        """Queue one upsert without blocking (no window check — callers
        that outrun ``depth * max_batch`` should use :meth:`put`)."""
        self._raise_if_failed()
        request = UpsertRequest(encode_key(key), encode_value(value))
        self._buffer.append((request, self.kernel.now))
        self._dispatch()

    def put(self, key, value):
        """Generator: queue one upsert, parking while the window is full."""
        while self.pending_ops >= self.depth * self.max_batch:
            waiter = self.kernel.event()
            self._waiters.append(waiter)
            yield waiter
        self.submit(key, value)

    def drain(self):
        """Generator: flush the buffer, wait until nothing is in flight,
        and re-raise the first batch failure if there was one."""
        while self._buffer or self._inflight_batches:
            self._dispatch(flush=True)
            if not (self._buffer or self._inflight_batches):
                break
            waiter = self.kernel.event()
            self._waiters.append(waiter)
            yield waiter
        self._raise_if_failed()

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    def _dispatch(self, flush: bool = False) -> None:
        """Launch full batches while slots are free; a partial buffer
        waits one scheduler tick for same-tick submits (or goes out
        immediately when ``flush`` demands it)."""
        while self._inflight_batches < self.depth and (
            len(self._buffer) >= self.max_batch or (flush and self._buffer)
        ):
            batch = self._take_batch()
            self._inflight_batches += 1
            self._inflight_ops += len(batch)
            self.batches_sent += 1
            self.kernel.spawn(
                self._run_batch(batch),
                f"{self.client.name}.pipeline.batch",
            )
        if self._buffer and self._inflight_batches < self.depth and not self._pump_scheduled:
            self._pump_scheduled = True
            self.kernel.spawn(self._pump(), f"{self.client.name}.pipeline.pump")

    def _take_batch(self) -> list[tuple[UpsertRequest, float]]:
        """Pull the next batch off the buffer.

        Under shard routing every batch must land on one owner (a mixed
        batch would bounce whole), so take up to ``max_batch`` buffered
        ops owned by the first op's shard and keep the rest, in order,
        for later batches — per-shard pipelining is preserved because
        each shard's ops drain through their own batches while other
        shards' batches are in flight.
        """
        shard_map = self.client.shard_map
        if shard_map is None or self.ingestor is not None:
            batch = self._buffer[: self.max_batch]
            del self._buffer[: self.max_batch]
            return batch
        owner = shard_map.owner_of(self._buffer[0][0].key)
        batch: list[tuple[UpsertRequest, float]] = []
        rest: list[tuple[UpsertRequest, float]] = []
        for item in self._buffer:
            if len(batch) < self.max_batch and shard_map.owner_of(item[0].key) == owner:
                batch.append(item)
            else:
                rest.append(item)
        self._buffer = rest
        return batch

    def _pump(self):
        yield self.kernel.timeout(0.0)
        self._pump_scheduled = False
        self._dispatch(flush=True)

    def _run_batch(self, batch):
        requests = tuple(request for request, __ in batch)
        try:
            yield from self.client._do_upsert_batch(requests, self.ingestor)
        except (RpcTimeout, RemoteError, ValueError) as error:
            if self._error is None:
                self._error = error
        else:
            acked = self.kernel.now
            for __, submitted in batch:
                self.latencies.append(acked - submitted)
            self.ops_acked += len(batch)
        finally:
            self._inflight_batches -= 1
            self._inflight_ops -= len(batch)
            self._dispatch()
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                waiter.succeed()
