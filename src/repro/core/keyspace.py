"""Key-space partitioning across Compactors.

Each (non-overlapping) Compactor "handles a mutually-exclusive range of
the data" (Section III-C).  A :class:`Partitioning` maps keys and key
ranges to partitions; the Ingestor uses it to route forwarded sstables
(splitting any sstable that straddles a boundary) and to route reads.

Overlapping Compactors (Section III-G) are modelled as partitions with
more than one member: writes go to one member (round-robin load
balancing), reads fan out to all members of the partition.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.lsm.entry import encode_key
from repro.lsm.errors import InvalidConfigError
from repro.lsm.sstable import SSTable


@dataclass(slots=True)
class Partition:
    """One key-range partition and the Compactors that serve it.

    Attributes:
        lower: Inclusive lower bound key (encoded), or None for the
            leftmost partition.
        members: Names of the Compactor nodes serving this range.  One
            member in the standard partitioned deployment; several when
            Compactors overlap.
    """

    lower: bytes | None
    members: list[str]
    _next_writer: int = field(default=0, repr=False)

    def writer(self) -> str:
        """Pick the member that receives the next forwarded run
        (round-robin — "potentially using a load balancing strategy")."""
        member = self.members[self._next_writer % len(self.members)]
        self._next_writer += 1
        return member


class Partitioning:
    """Maps keys to partitions by sorted boundary keys."""

    def __init__(self, partitions: list[Partition]) -> None:
        if not partitions:
            raise InvalidConfigError("need at least one partition")
        if partitions[0].lower is not None:
            raise InvalidConfigError("first partition must be unbounded below")
        self.partitions = partitions
        self._boundaries = [p.lower for p in partitions[1:]]
        for left, right in zip(self._boundaries, self._boundaries[1:]):
            if left >= right:  # type: ignore[operator]
                raise InvalidConfigError("partition boundaries must be increasing")

    @classmethod
    def uniform(cls, key_range: int, compactors: list[str], replicas: int = 1) -> "Partitioning":
        """Split integer keys [0, key_range) evenly across compactors.

        With ``replicas > 1``, consecutive groups of that many compactor
        names share (overlap on) each partition.
        """
        if replicas < 1:
            raise InvalidConfigError("replicas must be >= 1")
        if len(compactors) % replicas != 0:
            raise InvalidConfigError("compactor count must be a multiple of replicas")
        groups = [
            compactors[i : i + replicas] for i in range(0, len(compactors), replicas)
        ]
        num_parts = len(groups)
        partitions = []
        for index, members in enumerate(groups):
            lower = None if index == 0 else encode_key(index * key_range // num_parts)
            partitions.append(Partition(lower, list(members)))
        return cls(partitions)

    @property
    def boundaries(self) -> list[bytes]:
        """The internal boundary keys (len = #partitions - 1)."""
        return list(self._boundaries)  # type: ignore[arg-type]

    def partition_for(self, key: bytes) -> Partition:
        """The partition owning ``key``."""
        index = bisect.bisect_right(self._boundaries, key)  # type: ignore[arg-type]
        return self.partitions[index]

    def partitions_for_range(self, lo: bytes, hi: bytes) -> list[Partition]:
        """All partitions intersecting [lo, hi]."""
        first = bisect.bisect_right(self._boundaries, lo)  # type: ignore[arg-type]
        last = bisect.bisect_right(self._boundaries, hi)  # type: ignore[arg-type]
        return self.partitions[first : last + 1]

    def split_table(self, table: SSTable) -> list[tuple[Partition, SSTable]]:
        """Split an sstable at partition boundaries.

        "If it falls within one Compactor, then it is forwarded to it.
        Otherwise, the Ingestor divides the sstable into different
        parts" (Section III-C).
        """
        parts = self.partitions_for_range(table.min_key, table.max_key)
        if len(parts) == 1:
            return [(parts[0], table)]
        pieces = table.split_at([p.lower for p in parts[1:]])  # type: ignore[list-item]
        return [(self.partition_for(piece.min_key), piece) for piece in pieces]

    def all_members(self) -> list[str]:
        """Every compactor name, in partition order."""
        return [name for p in self.partitions for name in p.members]
