"""Observability: periodic sampling of node state during a run.

A :class:`ClusterMonitor` spawns a sampling process that records, at a
fixed simulated interval, each node's key gauges — level sizes, total
entries, the Ingestor's in-flight table count, machine core queueing —
producing a timeline that makes compaction waves and backpressure
episodes visible.  Used by the ablation notebooks-style reports and by
tests that assert *when* things happen, not just that they happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Sample:
    """One gauge reading."""

    time: float
    node: str
    gauge: str
    value: float


@dataclass(slots=True)
class Timeline:
    """All samples of one run, queryable by node and gauge."""

    samples: list[Sample] = field(default_factory=list)

    def add(self, time: float, node: str, gauge: str, value: float) -> None:
        self.samples.append(Sample(time, node, gauge, value))

    def series(self, node: str, gauge: str) -> list[tuple[float, float]]:
        """(time, value) points for one node's gauge, in time order."""
        return [
            (s.time, s.value)
            for s in self.samples
            if s.node == node and s.gauge == gauge
        ]

    def peak(self, node: str, gauge: str) -> float:
        values = [v for __, v in self.series(node, gauge)]
        return max(values) if values else 0.0

    def nodes(self) -> set[str]:
        return {s.node for s in self.samples}

    def gauges(self) -> set[str]:
        return {s.gauge for s in self.samples}


class ClusterMonitor:
    """Samples a cluster's nodes every ``interval`` simulated seconds.

    Start it before driving the workload::

        monitor = ClusterMonitor(cluster, interval=0.05)
        monitor.start()
        ...drive...
        monitor.stop()
        timeline = monitor.timeline
    """

    def __init__(self, cluster, interval: float = 0.05) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.cluster = cluster
        self.interval = interval
        self.timeline = Timeline()
        self._running = False
        self._process = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._process = self.cluster.kernel.spawn(self._loop(), "monitor")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            self.sample_once()
            yield self.cluster.kernel.timeout(self.interval)

    def sample_once(self) -> None:
        """Record one reading of every gauge (callable directly too)."""
        now = self.cluster.kernel.now
        timeline = self.timeline
        for ingestor in self.cluster.ingestors:
            timeline.add(now, ingestor.name, "l0_tables", len(ingestor.level0))
            timeline.add(now, ingestor.name, "l1_tables", len(ingestor.level1))
            timeline.add(now, ingestor.name, "inflight_tables", ingestor.inflight_tables)
            timeline.add(
                now, ingestor.name, "entries", ingestor.manifest.total_entries()
            )
            self._sample_flow(now, ingestor)
            self._sample_cache(now, ingestor)
        for compactor in self.cluster.compactors:
            timeline.add(now, compactor.name, "l2_tables", len(compactor.level2))
            timeline.add(now, compactor.name, "l3_tables", len(compactor.level3))
            timeline.add(
                now,
                compactor.name,
                "l2_debt",
                len(compactor.level2) / max(1, compactor.config.l2_threshold),
            )
            timeline.add(
                now, compactor.name, "entries", compactor.manifest.total_entries()
            )
            timeline.add(
                now,
                compactor.name,
                "core_queue",
                compactor.machine.cores.queue_length,
            )
            self._sample_cache(now, compactor)
        for reader in self.cluster.readers:
            timeline.add(now, reader.name, "entries", reader.manifest.total_entries())
            self._sample_cache(now, reader)
            self._sample_view(now, reader)
        for node in (
            *self.cluster.ingestors,
            *self.cluster.compactors,
            *self.cluster.readers,
        ):
            self._sample_transport(now, node)

    def _sample_flow(self, now: float, node) -> None:
        """Write flow-control gauges for nodes carrying an
        :class:`~repro.core.flow.AdmissionController` (Ingestors).
        Samples are taken whether or not flow control is *enforcing*
        (``config.flow_control``), so the same timeline shows what
        admission control would have seen in a flow-off run."""
        admission = getattr(node, "admission", None)
        if admission is None:
            return
        snap = node._debt_snapshot()  # refreshes last_debt
        timeline = self.timeline
        timeline.add(now, node.name, "compaction_debt", snap.debt)
        timeline.add(now, node.name, "admission_state", admission.state_code)
        timeline.add(now, node.name, "admission_rejections", admission.rejected)
        timeline.add(now, node.name, "admission_delays", admission.delayed)
        timeline.add(now, node.name, "stall_events", len(admission.stall_events))
        timeline.add(now, node.name, "stall_time", admission.stall_time)

    def _sample_cache(self, now: float, node) -> None:
        """Read-cache and bloom gauges for any node carrying a
        :class:`~repro.lsm.cache.ReadCache` (soak tests assert cache
        coherence invariants — e.g. hits never exceed lookups — from
        these series)."""
        cache = getattr(node, "read_cache", None)
        if cache is None:
            return
        stats = cache.stats
        timeline = self.timeline
        timeline.add(now, node.name, "cache_size", len(cache))
        timeline.add(now, node.name, "cache_hits", stats.hits)
        timeline.add(now, node.name, "cache_misses", stats.misses)
        timeline.add(now, node.name, "cache_evictions", stats.evictions)
        timeline.add(now, node.name, "cache_hit_rate", stats.hit_rate)
        timeline.add(now, node.name, "bloom_probes", stats.bloom_probes)
        timeline.add(now, node.name, "bloom_negatives", stats.bloom_negatives)
        timeline.add(now, node.name, "block_range_hits", stats.block_range_hits)
        timeline.add(now, node.name, "block_range_misses", stats.block_range_misses)

    def _sample_view(self, now: float, node) -> None:
        """Sorted-view gauges for Readers running with
        ``config.sorted_view`` (DESIGN.md §19): segment count, rebuild
        and reuse counters, recovery invalidations."""
        manager = getattr(node, "view_mgr", None)
        if manager is None:
            return
        timeline = self.timeline
        for gauge, value in manager.gauges().items():
            timeline.add(now, node.name, gauge, value)

    def _sample_transport(self, now: float, node) -> None:
        """TCP transport gauges (live runtime only — the sim fabric has
        no transport attribute).  Surfaces backpressure: queue high
        water, frames dropped by overflow policy, reconnect counts."""
        transport = getattr(node.network, "transport", None)
        if transport is None:
            return
        timeline = self.timeline
        for gauge, value in transport.stats.as_gauges().items():
            timeline.add(now, node.name, gauge, value)
