"""The Reader (Backup): CooLSM's snapshot-serving analytics node.

A Reader (Section III-D) passively maintains a snapshot of the data in
levels **L2 and L3**, fed by the Compactors: after each major
compaction a Compactor casts its newly formed sstables, and the Reader
installs them into that Compactor's *area* by replacing the overlapping
tables of the corresponding level.  Because each Compactor's updates
arrive on a FIFO channel and are installed in order, the Reader's state
for any single Compactor's range is always some past state of that
Compactor — which is exactly the *snapshot linearizability* guarantee.

Keeping a separate area per source Compactor also implements what
Section III-G leaves as future work — Backups fed by *overlapping*
Compactors: each source's area progresses independently and reads
resolve across areas by version metadata (seqno with one Ingestor,
loose timestamps with several), precisely the approach the paper
sketches ("use sequence numbers if there is one Ingestor or use
timestamps if there are more than one").

Readers serve point reads and — their main purpose — large analytics
range queries without touching Ingestors or Compactors, isolating
analytics from the ingestion path (Figure 7, Figure 9b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.effects import ComputeHost, EffectKernel, Fabric
from repro.lsm.cache import ReadCache
from repro.lsm.entry import Entry
from repro.lsm.errors import CorruptionError
from repro.lsm.iterators import dedup_newest, k_way_merge
from repro.lsm.manifest import LevelEdit, Manifest
from repro.lsm.sortedview import SortedView, SortedViewManager
from repro.lsm.sstable import SSTable
from repro.sim.rpc import RemoteError, RpcNode, RpcTimeout

from .config import CooLSMConfig
from .messages import (
    AreaSnapshot,
    BackupUpdate,
    IngestorL1Update,
    RangeQuery,
    RangeQueryReply,
    ReadReply,
    ReadRequest,
)

_L2, _L3 = 0, 1

#: NodeStore sidecar holding the persisted sorted view (DESIGN.md §19).
SORTED_VIEW_NAME = "SORTED_VIEW.json"


@dataclass(slots=True)
class ReaderStats:
    """Counters exposed for the evaluation harness."""

    updates_received: int = 0
    tables_installed: int = 0
    reads: int = 0
    range_queries: int = 0
    gaps_detected: int = 0
    stale_updates: int = 0
    catchups: int = 0
    failed_catchups: int = 0


class _MergedView:
    """Read-only manifest-like view over all per-Compactor areas, so
    callers can keep using ``reader.manifest.total_entries()`` etc."""

    def __init__(self, areas: dict[str, Manifest]) -> None:
        self._areas = areas

    @property
    def num_levels(self) -> int:
        return 2

    def level(self, index: int) -> list[SSTable]:
        return [t for area in self._areas.values() for t in area.level(index)]

    def level_sizes(self) -> list[int]:
        return [len(self.level(_L2)), len(self.level(_L3))]

    def total_entries(self) -> int:
        return sum(area.total_entries() for area in self._areas.values())


class Reader(RpcNode):
    """A CooLSM Reader (backup) node.

    The Reader may lag the Compactors — that is the availability /
    freshness trade-off the paper accepts — but it never exposes a
    mixed state: table replacement is atomic per update, and each
    source Compactor's area progresses independently.
    """

    def __init__(
        self,
        kernel: EffectKernel,
        network: Fabric,
        machine: ComputeHost,
        name: str,
        config: CooLSMConfig,
    ) -> None:
        super().__init__(kernel, network, machine, name)
        self.config = config
        self.stats = ReaderStats()
        # One area (two-level manifest) per source Compactor.  A batch
        # may briefly coexist with the tables it replaces on the wire,
        # so levels are overlap-tolerant; reads resolve by version.
        self._areas: dict[str, Manifest] = {}
        self.manifest = _MergedView(self._areas)
        # Volatile row cache over immutable sstables; wiped on crash.
        self.read_cache: ReadCache | None = (
            ReadCache(config.read_cache_capacity)
            if config.read_cache_capacity > 0
            else None
        )
        # Section III-D.3 fresh area: the latest L1 snapshot received
        # from each Ingestor (only populated when Ingestors feed Readers).
        self.fresh_area: dict[str, tuple[SSTable, ...]] = {}
        # Catch-up protocol: next expected update seq per source, the
        # set of sources with a resync in flight, and the full source
        # list (filled in by the cluster builder) used after a crash.
        self._next_seq: dict[str, int] = {}
        self._syncing: set[str] = set()
        self._sources: list[str] = []
        # Last sequence actually *applied* per source.  ``_next_seq`` is
        # advanced before an update's install completes (that ordering
        # is part of the gap-detection protocol and must not change),
        # so persistence snapshots this post-install counter instead —
        # the durable (area, seq) pair is always consistent.
        self._applied_seq: dict[str, int] = {}
        # Optional durable storage (live runtime); None under the
        # simulator, where persistence stays modelled.
        self._store = None
        # REMIX-style sorted view over the areas (repro.lsm.sortedview):
        # refreshed synchronously inside every install, so between
        # installs scans serve from it lock-free.  None when the flag is
        # off — the streaming merge below stays the only path.
        self.view_mgr: SortedViewManager | None = (
            SortedViewManager(config.sorted_view_segment_entries)
            if config.sorted_view
            else None
        )
        self.on("backup_update", self._handle_backup_update)
        self.on("ingestor_update", self._handle_ingestor_update)
        self.on("read", self._handle_read)
        self.on("range_query", self._handle_range_query)

    def set_sources(self, compactors: list[str] | tuple[str, ...]) -> None:
        """Tell the Reader which Compactors feed it (for post-crash
        resync before any of them happens to send an update)."""
        self._sources = list(compactors)

    def _area(self, compactor: str) -> Manifest:
        if compactor not in self._areas:
            self._areas[compactor] = Manifest(
                2, overlapping_levels=frozenset({_L2, _L3})
            )
        return self._areas[compactor]

    @property
    def level2(self) -> list[SSTable]:
        return self.manifest.level(_L2)

    @property
    def level3(self) -> list[SSTable]:
        return self.manifest.level(_L3)

    def health_gauges(self) -> dict:
        gauges = {
            "areas": len(self._areas),
            "gaps_detected": self.stats.gaps_detected,
            "catchups": self.stats.catchups,
            "updates_received": self.stats.updates_received,
        }
        if self.view_mgr is not None:
            gauges.update(self.view_mgr.gauges())
        return gauges

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------
    def _handle_backup_update(self, src: str, update: BackupUpdate):
        """Install a Compactor's post-compaction sstables into *that
        Compactor's* area.

        The received tables are the complete new content of the source
        Compactor's overlapping range at that level, so installation is
        replace-overlapping-then-add within the area, applied
        atomically.  Keeping areas per source makes overlapping
        Compactors safe: one source's update can never clobber another
        source's tables; reads merge areas by version.

        Updates are sequence-numbered per source.  A gap — updates lost
        while this Reader was crashed, or cut off by a partition whose
        held traffic was superseded — means applying this update could
        skip intermediate states, so the Reader instead re-fetches the
        source's complete area (:meth:`_catch_up`), which restores
        snapshot progression.  Updates older than the fetched snapshot
        are ignored as stale.
        """
        self.stats.updates_received += 1
        if update.seq is not None:
            expected = self._next_seq.get(update.compactor, 1)
            if update.seq < expected:
                self.stats.stale_updates += 1
                return None
            if update.seq > expected or update.compactor in self._syncing:
                if update.seq > expected:
                    self.stats.gaps_detected += 1
                yield from self._catch_up(update.compactor)
                return None
            self._next_seq[update.compactor] = update.seq + 1
        area = self._area(update.compactor)
        tables = list(update.tables)
        entries = sum(len(t) for t in tables)
        yield from self.compute(entries * self.config.costs.install_per_entry)
        level = _L2 if update.level == 2 else _L3
        edit = LevelEdit()
        if tables:
            if update.replaced_ids is not None:
                # Stacked (tiered) source level: the update names the
                # exact tables it supersedes (often none — a pure run
                # append); replacing by key overlap would clobber
                # sibling runs that still hold live versions.
                replaced_ids = set(update.replaced_ids)
                replaced = [
                    t for t in area.level(level) if t.table_id in replaced_ids
                ]
            else:
                lo = min(t.min_key for t in tables)
                hi = max(t.max_key for t in tables)
                replaced = [t for t in area.level(level) if t.overlaps(lo, hi)]
            edit.remove(level, replaced).add(level, tables)
        if update.removed_l2_ids:
            moved_down = [
                t
                for t in area.level(_L2)
                if t.table_id in set(update.removed_l2_ids)
            ]
            edit.remove(_L2, moved_down)
        area.apply(edit)
        self._refresh_view()
        if update.seq is not None:
            self._applied_seq[update.compactor] = update.seq
        if self._store is not None:
            self._persist()
        self.stats.tables_installed += len(tables)
        return None

    def _catch_up(self, source: str):
        """Re-fetch ``source``'s complete area and install it wholesale.

        Runs at most once per source at a time; concurrent triggers
        (several gapped updates) fold into the running attempt.  On
        success the area becomes the Compactor's current state — some
        past-or-present state of that source, so snapshot
        linearizability per area is preserved.
        """
        if source in self._syncing:
            return
        self._syncing.add(source)
        try:
            snapshot = None
            for __ in range(self.config.client_retry_budget):
                try:
                    snapshot = yield self.call(
                        source,
                        "fetch_area",
                        None,
                        timeout=self.config.request_timeout,
                    )
                    break
                except (RpcTimeout, RemoteError):
                    continue
            if not isinstance(snapshot, AreaSnapshot):
                # Source unreachable: stay stale; the next sequenced
                # update re-detects the gap and retries.
                self.stats.failed_catchups += 1
                return
            entries = sum(len(t) for t in snapshot.l2 + snapshot.l3)
            yield from self.compute(entries * self.config.costs.install_per_entry)
            area = Manifest(2, overlapping_levels=frozenset({_L2, _L3}))
            edit = LevelEdit()
            if snapshot.l2:
                edit.add(_L2, list(snapshot.l2))
            if snapshot.l3:
                edit.add(_L3, list(snapshot.l3))
            area.apply(edit)
            self._areas[source] = area
            self._refresh_view()
            self._next_seq[source] = snapshot.seq + 1
            self._applied_seq[source] = snapshot.seq
            if self._store is not None:
                self._persist()
            self.stats.catchups += 1
            self.stats.tables_installed += len(snapshot.l2) + len(snapshot.l3)
        finally:
            self._syncing.discard(source)

    def resync(self, sources: Iterable[str] | None = None) -> None:
        """Spawn a catch-up for every known source (or the given ones).
        Used after recovery, or by drivers after healing a fault."""
        names = sorted(set(sources if sources is not None else [])
                       | set(self._sources) | set(self._areas))
        for source in names:
            self.kernel.spawn(
                self._catch_up(source), f"{self.name}.catchup.{source}"
            )

    # ------------------------------------------------------------------
    # Durable storage (live runtime)
    # ------------------------------------------------------------------
    def _persist(self) -> None:
        """Commit the per-source areas, fresh areas, and applied
        sequence numbers to the attached store.  Synchronous — never
        yields."""
        tables: dict[int, SSTable] = {}
        areas_state: dict[str, list[list[int]]] = {}
        for source, area in self._areas.items():
            level_ids: list[list[int]] = []
            for level in (_L2, _L3):
                run = area.level(level)
                level_ids.append([t.table_id for t in run])
                for table in run:
                    tables[table.table_id] = table
            areas_state[source] = level_ids
        fresh_state: dict[str, list[int]] = {}
        for ingestor, run in self.fresh_area.items():
            fresh_state[ingestor] = [t.table_id for t in run]
            for table in run:
                tables[table.table_id] = table
        state = {
            "areas": areas_state,
            "fresh": fresh_state,
            "applied_seq": dict(self._applied_seq),
        }
        self._store.commit(tables.values(), state)
        # The sorted view rides along as a sidecar.  Written *after* the
        # manifest commit, so a crash between the two leaves a sidecar
        # whose source set no longer matches the recovered areas —
        # recovery validates and rebuilds (refuse-and-rebuild).
        if self.view_mgr is not None and self.view_mgr.view is not None:
            self._store.save_sidecar(
                SORTED_VIEW_NAME, self.view_mgr.view.to_document()
            )

    def attach_store(self, store) -> None:
        """Attach a :class:`~repro.store.node_store.NodeStore`,
        restoring the per-source areas and applied BackupUpdate
        sequence numbers of a previous incarnation, then spawning a
        catch-up per source: updates cast while the process was down
        are gone, and re-fetching each area wholesale (the PR 1 gap
        protocol) restores snapshot progression from the recovered
        baseline instead of from empty.
        """
        self._store = store
        recovered = store.recovered
        if recovered is None:
            self._persist()
            return
        state = recovered.state
        tables = recovered.tables
        for source, level_ids in state.get("areas", {}).items():
            edit = LevelEdit()
            for level, ids in enumerate(level_ids):
                if ids:
                    edit.add(level, [tables[tid] for tid in ids])
            self._area(source).apply(edit)
        for ingestor, ids in state.get("fresh", {}).items():
            self.fresh_area[ingestor] = tuple(tables[tid] for tid in ids)
        self._applied_seq = {
            source: int(seq) for source, seq in state.get("applied_seq", {}).items()
        }
        self._next_seq = {
            source: seq + 1 for source, seq in self._applied_seq.items()
        }
        if self.view_mgr is not None:
            self._restore_view(store)
        self.resync()

    def _restore_view(self, store) -> None:
        """Revive the persisted sorted view, or refuse and rebuild.

        A sidecar is only adopted if every anchor resolves into the
        recovered tables and its source table-id set matches the
        recovered areas exactly — a crash landing between the manifest
        commit and the sidecar write (or a partially-applied install)
        fails that check, in which case the stale sidecar is deleted and
        the view rebuilt from the recovered areas, mirroring the
        manifest's :class:`CorruptionError` refuse-don't-guess rule.
        """
        runs = self._scan_runs()
        document = store.load_sidecar(SORTED_VIEW_NAME)
        if document is not None:
            try:
                view = SortedView.from_document(
                    document,
                    {t.table_id: t for t in runs},
                    self.view_mgr.segment_entries,
                )
            except CorruptionError:
                store.remove_sidecar(SORTED_VIEW_NAME)
                self.view_mgr.invalidations += 1
            else:
                self.view_mgr.adopt(view, runs)
                return
        self.view_mgr.refresh(runs)
        store.save_sidecar(SORTED_VIEW_NAME, self.view_mgr.view.to_document())

    def crash(self) -> None:
        """Fail-stop.  The read cache models volatile memory and is
        wiped, and the in-memory sorted view is torn down with it; the
        installed areas survive (durable snapshot state)."""
        super().crash()
        if self.read_cache is not None:
            self.read_cache.clear()
        if self.view_mgr is not None:
            self.view_mgr.teardown()

    def recover(self) -> None:
        """Restart after a crash: updates cast while down were lost, so
        proactively resynchronise every source area.  The sorted view is
        rebuilt from scratch over the surviving areas (it was volatile)."""
        super().recover()
        self._refresh_view()
        self.resync()

    def _handle_ingestor_update(self, src: str, update: IngestorL1Update):
        """Install an Ingestor's fresh L1 snapshot (Section III-D.3).

        Wholesale replacement per source keeps each Ingestor's fresh
        area a past state of that Ingestor, preserving per-source
        snapshot progression — the "more coordination" the paper notes
        reduces here to source-keyed replacement over FIFO channels.
        """
        self.stats.updates_received += 1
        entries = sum(len(t) for t in update.tables)
        yield from self.compute(entries * self.config.costs.install_per_entry)
        self.fresh_area[update.ingestor] = update.tables
        if self._store is not None:
            self._persist()
        self.stats.tables_installed += len(update.tables)
        return None

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _search(self, key: bytes, as_of: float | None) -> tuple[Entry | None, int]:
        probes = 0
        candidates: list[Entry] = []
        fresh_tables = [t for run in self.fresh_area.values() for t in run]
        for table in fresh_tables:
            if table.key_in_range(key) and table.bloom.might_contain(key):
                probes += 1
                candidates.extend(
                    self._visible(table.versions(key, self.read_cache), as_of)
                )
        # Each area's fence index narrows the level to the tables whose
        # range contains the key (areas are overlap-tolerant, so this
        # can be more than one); resolution stays purely by version.
        for level in (_L2, _L3):
            for area in self._areas.values():
                for table in area.tables_for_key(level, key):
                    if table.bloom.might_contain(key):
                        probes += 1
                        candidates.extend(
                            self._visible(
                                table.versions(key, self.read_cache), as_of
                            )
                        )
        if not candidates:
            return None, probes
        return max(candidates, key=lambda e: e.version), probes

    @staticmethod
    def _visible(versions: list[Entry], as_of: float | None) -> list[Entry]:
        if as_of is not None:
            versions = [v for v in versions if v.timestamp <= as_of]
        return versions[:1]

    def _handle_read(self, src: str, request: ReadRequest):
        """Point read served purely from the local snapshot."""
        self.stats.reads += 1
        yield from self.compute(self.config.costs.read_base)
        entry, probes = self._search(request.key, request.as_of)
        yield from self.compute(probes * self.config.costs.probe_table)
        return ReadReply(entry, self.name)

    def _handle_range_query(self, src: str, request: RangeQuery):
        """Analytics range read over the snapshot (Figure 9b)."""
        self.stats.range_queries += 1
        yield from self.compute(self.config.costs.read_base)
        pairs = self.scan_pairs(request.lo, request.hi, request.limit)
        yield from self.compute(len(pairs) * self.config.costs.scan_per_entry)
        return RangeQueryReply(tuple(pairs))

    def scan_pairs(
        self, lo: bytes, hi: bytes, limit: int | None = None
    ) -> list[tuple[bytes, bytes]]:
        """The range-read engine behind the RPC handler (synchronous —
        the handler charges the modelled compute around it; the scan
        bench wall-clocks it directly).  Dispatches to the sorted view
        when one is standing, else the streaming merge; both are
        required to be bit-identical."""
        if self.view_mgr is not None and self.view_mgr.ready:
            return self._view_scan(lo, hi, limit)
        return self._streaming_scan(lo, hi, limit)

    def _streaming_scan(
        self, lo: bytes, hi: bytes, limit: int | None
    ) -> list[tuple[bytes, bytes]]:
        """The historical path: a k-way merge over lazy per-table
        cursors.  Each area's fence index prunes the tables outside
        [lo, hi), and nothing is materialised, so a limited query stops
        after O(limit) merged entries.  Areas are overlap-tolerant, so
        tables stay separate merge streams."""
        fresh_tables = [t for run in self.fresh_area.values() for t in run]
        sources = [t.scan(lo, hi) for t in fresh_tables]
        for area in self._areas.values():
            for level in (_L2, _L3):
                for table in area.tables_for_range(level, lo, hi):
                    sources.append(table.scan(lo, hi))
        return self._collect_pairs(dedup_newest(k_way_merge(sources)), limit)

    def _view_scan(
        self, lo: bytes, hi: bytes, limit: int | None
    ) -> list[tuple[bytes, bytes]]:
        """Serve the areas' share of the scan from the sorted view: one
        segment bisect and a forward anchor walk, resolved through the
        block-range cache.  The fresh area (Ingestor L1 snapshots) is
        not part of the view; its tables merge in front of the view
        stream — fresh streams listed first, like the streaming path, so
        exact-version ties resolve identically."""
        fresh_tables = [t for run in self.fresh_area.values() for t in run]
        view_stream = self.view_mgr.scan(lo, hi, self.read_cache)
        if fresh_tables:
            sources: list = [t.scan(lo, hi) for t in fresh_tables]
            sources.append(view_stream)
            stream = dedup_newest(k_way_merge(sources))
        else:
            stream = view_stream  # already one winner per key
        return self._collect_pairs(stream, limit)

    @staticmethod
    def _collect_pairs(stream, limit: int | None) -> list[tuple[bytes, bytes]]:
        pairs: list[tuple[bytes, bytes]] = []
        for entry in stream:
            if entry.tombstone:
                continue
            pairs.append((entry.key, entry.value))
            if limit is not None and len(pairs) >= limit:
                break
        return pairs

    # ------------------------------------------------------------------
    # Sorted view plumbing
    # ------------------------------------------------------------------
    def _scan_runs(self) -> list[SSTable]:
        """Every area table, in exactly the order `_streaming_scan`
        enumerates its merge streams — the order that fixes
        exact-version tie-breaks, so the view anchors the same winners."""
        runs: list[SSTable] = []
        for area in self._areas.values():
            for level in (_L2, _L3):
                runs.extend(area.tables_for_range(level, None, None))
        return runs

    def _refresh_view(self) -> None:
        """Rebuild the sorted view over the current areas (incremental
        when one is standing).  Synchronous — called inside the install
        step after ``area.apply``, so cooperative scheduling never lets
        a scan observe a view/area mismatch."""
        if self.view_mgr is not None:
            self.view_mgr.refresh(self._scan_runs())
