"""The Compactor: CooLSM's cloud-resident structuring engine.

A Compactor (Section III-B/C) owns levels **L2 and L3** for its key
partition.  When an Ingestor forwards sstables, the Compactor runs a
*major* (leveling) compaction: the received tables are k-way merged
with the overlapping tables of L2 and swapped in atomically; if L2 then
exceeds its threshold, the extra tables are merged into the overlapping
region of L3.  The forwarding Ingestor is acked only after the merge —
that ack is what lets the Ingestor drop its retained copies.

After every major compaction the Compactor casts the newly formed
sstables to all Readers (Section III-D), which keeps each Reader a
progressively advancing snapshot of this Compactor's range (snapshot
linearizability relies on the network layer's FIFO channels).

Garbage collection: in multi-Ingestor mode merges use a version
retention horizon ``clock.now() - gc_slack`` so that "values can be
garbage collected only if the new value has a timestamp that is higher
than the timestamp of any current or future read operation".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.effects import ComputeHost, EffectKernel, Fabric
from repro.lsm.cache import ReadCache
from repro.lsm.compaction import (
    KeepPolicy,
    NEWEST_WINS,
    major_compaction,
    merge_tables,
)
from repro.lsm.entry import Entry
from repro.lsm.errors import CorruptionError
from repro.lsm.iterators import level_scan
from repro.lsm.manifest import LevelEdit, Manifest
from repro.lsm.policy import make_policy
from repro.lsm.sstable import SSTable
from repro.sim.clock import LooseClock
from repro.sim.resources import Resource
from repro.sim.rpc import RpcNode

from .config import CooLSMConfig
from .messages import (
    AreaSnapshot,
    BackupUpdate,
    ForwardReply,
    ForwardRequest,
    RangeQuery,
    RangeQueryReply,
    ReadReply,
    ReadRequest,
)

#: Manifest level indices (local 0/1 map to the paper's L2/L3).
L2, L3 = 0, 1


@dataclass(slots=True)
class CompactionTiming:
    """One major compaction occurrence (drives Figure 4)."""

    level: int  # 2 or 3, paper numbering
    duration: float
    entries_merged: int


@dataclass(slots=True)
class CompactorStats:
    """Counters and timings exposed for the evaluation harness."""

    forwards_received: int = 0
    tables_received: int = 0
    duplicate_forwards: int = 0
    snapshots_served: int = 0
    reads: int = 0
    compactions: list[CompactionTiming] = field(default_factory=list)

    def mean_compaction_time(self, level: int) -> float:
        times = [c.duration for c in self.compactions if c.level == level]
        return sum(times) / len(times) if times else 0.0


class Compactor(RpcNode):
    """A CooLSM Compactor node serving one key partition.

    Args:
        kernel/network/machine/name: Simulation plumbing.
        config: Deployment parameters.
        clock: This node's loose clock (for the GC horizon).
        backups: Reader node names to push post-compaction runs to.
        multi_ingestor: Use the version-retention GC policy when True.
    """

    def __init__(
        self,
        kernel: EffectKernel,
        network: Fabric,
        machine: ComputeHost,
        name: str,
        config: CooLSMConfig,
        clock: LooseClock,
        backups: Iterable[str] = (),
        multi_ingestor: bool = False,
    ) -> None:
        super().__init__(kernel, network, machine, name)
        self.config = config
        self.clock = clock
        self.backups = list(backups)
        self.multi_ingestor = multi_ingestor
        self.stats = CompactorStats()
        # The compaction policy decides how forwarded tables land in L2
        # and how L2 overflows into L3; the default (leveling) keeps
        # both levels single disjoint runs, tiered policies stack runs.
        self._policy = make_policy(config.compaction_policy)
        self.manifest = Manifest(
            2, overlapping_levels=self._policy.compactor_overlapping()
        )
        # Volatile row cache over immutable sstables; wiped on crash.
        self.read_cache: ReadCache | None = (
            ReadCache(config.read_cache_capacity)
            if config.read_cache_capacity > 0
            else None
        )
        self._merge_lock = Resource(kernel, 1)
        self._l2_pointer: bytes | None = None
        # Idempotent forwards: retried batches (lost acks) are answered
        # from this table instead of being merged twice.  Keyed by
        # (ingestor, batch_id); part of the durable meta-information of
        # Section III-H (a real system would prune it below the
        # Ingestors' acked watermark).
        self._completed_batches: dict[tuple[str, int], ForwardReply] = {}
        self._pending_batches: dict[tuple[str, int], object] = {}
        # Monotone per-source sequence stamped on every Reader update
        # broadcast; Readers use it for gap detection (catch-up protocol).
        self._backup_seq = 0
        # Optional durable storage (live runtime); None under the
        # simulator, where persistence stays modelled.
        self._store = None
        self.on("forward", self._handle_forward)
        self.on("read", self._handle_read)
        self.on("range_query", self._handle_range_query)
        self.on("fetch_area", self._handle_fetch_area)

    # ------------------------------------------------------------------
    # Level access
    # ------------------------------------------------------------------
    @property
    def level2(self) -> list[SSTable]:
        return self.manifest.level(L2)

    @property
    def level3(self) -> list[SSTable]:
        return self.manifest.level(L3)

    def health_gauges(self) -> dict:
        return {
            "inflight": len(self._pending_batches),
            "l2_tables": len(self.level2),
            "l3_tables": len(self.level3),
            "duplicate_forwards": self.stats.duplicate_forwards,
            # Downstream compaction debt: L2 occupancy over its
            # threshold (>1.0 means overflow merges are due).
            "l2_debt": round(len(self.level2) / max(1, self.config.l2_threshold), 4),
        }

    def _keep_policy(self, bottom: bool) -> KeepPolicy:
        if self.multi_ingestor:
            horizon = self.clock.now() - self.config.gc_slack
            return KeepPolicy(retain_horizon=horizon)
        if bottom:
            return KeepPolicy(drop_tombstones=True)
        return NEWEST_WINS

    # ------------------------------------------------------------------
    # Write path: major compaction
    # ------------------------------------------------------------------
    @staticmethod
    def _batch_key(src: str, request: ForwardRequest) -> tuple[str, int]:
        return (request.ingestor or src, request.batch_id)

    def _handle_forward(self, src: str, request: ForwardRequest):
        """Merge forwarded sstables into L2 (and overflow into L3),
        atomically, then ack the Ingestor and update the Readers.

        Idempotent: when an ack is lost the Ingestor retries the same
        ``(ingestor, batch_id)``; the duplicate is answered from the
        completed-batch table (or, if the first merge is still running,
        waits for it) rather than double-merged.
        """
        key = self._batch_key(src, request)
        cached = self._completed_batches.get(key)
        if cached is not None:
            self.stats.duplicate_forwards += 1
            return cached
        pending = self._pending_batches.get(key)
        if pending is not None:
            self.stats.duplicate_forwards += 1
            reply = yield pending
            return reply
        done = self.kernel.event()
        self._pending_batches[key] = done
        try:
            reply = yield from self._process_forward(src, request)
        except BaseException as error:
            self._pending_batches.pop(key, None)
            done.defused = True  # waiters (if any) still see the failure
            done.fail(error)
            raise
        self._pending_batches.pop(key, None)
        self._completed_batches[key] = reply
        if self._store is not None:
            # The dedup entry must be durable before the ack leaves:
            # the Ingestor drops its retained copies on receipt, so a
            # crashed-and-restarted Compactor must still recognise the
            # batch if a lost ack makes the Ingestor re-send it.
            self._persist()
        done.succeed(reply)
        return reply

    def _process_forward(self, src: str, request: ForwardRequest):
        """The actual merge work; runs at most once per batch."""
        self.stats.forwards_received += 1
        self.stats.tables_received += len(request.tables)
        yield self._merge_lock.request()
        try:
            merged = yield from self._compact_into_l2(list(request.tables))
            if (
                self._policy.overflow_enabled
                and len(self.level2) > self.config.l2_threshold
            ):
                yield from self._compact_l2_overflow_into_l3()
        finally:
            self._merge_lock.release()
        return ForwardReply(request.batch_id, merged)

    def record_applied_batch(self, ingestor: str, batch_id: int, merged: int) -> None:
        """Mark a batch as merged without serving it (replicas applying
        their replicated log call this so that, after promotion, a
        retried forward is deduplicated instead of re-merged)."""
        if ingestor:
            self._completed_batches.setdefault(
                (ingestor, batch_id), ForwardReply(batch_id, merged)
            )

    def _compact_into_l2(self, incoming: list[SSTable]):
        started = self.kernel.now
        l2_before = list(self.level2)
        if self._policy.merges_on_absorb:
            # Leveled absorb: merge with the overlapping region of L2
            # (and drop tombstones if the policy makes L2 the bottom).
            result, untouched = major_compaction(
                incoming,
                l2_before,
                self.config.sstable_entries,
                self._keep_policy(bottom=self._policy.l2_is_bottom),
            )
        else:
            # Tiered absorb: sort the incoming batch into one fresh run
            # stacked on L2; existing runs are untouched (and unpaid).
            result = merge_tables(
                list(incoming),
                self.config.sstable_entries,
                self._keep_policy(bottom=False),
            )
            untouched = l2_before
        total = result.stats.entries_in
        yield from self.compute(self.config.costs.merge_cost(total))
        untouched_ids = {t.table_id for t in untouched}
        replaced = [t for t in l2_before if t.table_id not in untouched_ids]
        self.manifest.apply(
            LevelEdit().remove(L2, replaced).add(L2, result.tables)
        )
        self.stats.compactions.append(
            CompactionTiming(2, self.kernel.now - started, total)
        )
        self._push_to_backups(
            2,
            result.tables,
            replaced_ids=None
            if self._policy.merges_on_absorb
            else tuple(t.table_id for t in replaced),
        )
        return total

    def _compact_l2_overflow_into_l3(self):
        started = self.kernel.now
        overflow, self._l2_pointer = self._policy.select_l2_overflow(
            self.level2, self.config.l2_threshold, self._l2_pointer
        )
        if not overflow:
            return
        l3_before = list(self.level3)
        if self._policy.merges_on_overflow:
            # Leveled move: merge into L3's overlapping region (L3 is
            # the bottom, so tombstones may be dropped).
            result, untouched = major_compaction(
                overflow,
                l3_before,
                self.config.sstable_entries,
                self._keep_policy(bottom=True),
            )
        else:
            # Tiered move: every selected run folds into one fresh run
            # stacked on L3; existing L3 runs are untouched.
            result = merge_tables(
                list(reversed(overflow)),  # newest run first
                self.config.sstable_entries,
                self._keep_policy(bottom=False),
            )
            untouched = l3_before
        total = result.stats.entries_in
        yield from self.compute(self.config.costs.merge_cost(total))
        untouched_ids = {t.table_id for t in untouched}
        replaced = [t for t in l3_before if t.table_id not in untouched_ids]
        self.manifest.apply(
            LevelEdit()
            .remove(L2, overflow)
            .remove(L3, replaced)
            .add(L3, result.tables)
        )
        self.stats.compactions.append(
            CompactionTiming(3, self.kernel.now - started, total)
        )
        self._push_to_backups(
            3,
            result.tables,
            removed_l2_ids=tuple(t.table_id for t in overflow),
            replaced_ids=None
            if self._policy.merges_on_overflow
            else tuple(t.table_id for t in replaced),
        )

    def _push_to_backups(
        self,
        paper_level: int,
        tables: list[SSTable],
        removed_l2_ids: tuple[int, ...] = (),
        replaced_ids: tuple[int, ...] | None = None,
    ) -> None:
        """Cast the newly formed sstables to every Reader.

        Sent on FIFO channels, so each Reader sees this Compactor's
        post-compaction states in order — the basis of snapshot
        linearizability (Section III-D.2).  ``replaced_ids`` carries an
        exact replacement set for stacked (tiered) levels, where the
        Reader's replace-by-overlap default would clobber sibling runs.
        """
        if not tables and not removed_l2_ids:
            return
        self._backup_seq += 1
        if self._store is not None:
            # Persist the incremented sequence (and the freshly merged
            # level contents) *before* casting: a restart must never
            # reuse a sequence number some Reader already applied with
            # different contents — gap detection relies on it.
            self._persist()
        entries = sum(len(t) for t in tables)
        update = BackupUpdate(
            paper_level,
            tuple(tables),
            self.name,
            removed_l2_ids,
            seq=self._backup_seq,
            replaced_ids=replaced_ids,
        )
        for backup in self.backups:
            self.cast(
                backup,
                "backup_update",
                update,
                size_bytes=self.config.costs.tables_size_bytes(entries),
            )

    def _handle_fetch_area(self, src: str, request) -> "AreaSnapshot":
        """Reader catch-up (Section III-H recovery, Reader side): serve
        the complete current L2/L3 so a Reader that missed updates — a
        crash, a partition — can resynchronise its area wholesale."""
        self.stats.snapshots_served += 1
        entries = self.manifest.total_entries()
        yield from self.compute(entries * self.config.costs.scan_per_entry)
        return AreaSnapshot(
            self._backup_seq, tuple(self.level2), tuple(self.level3), self.name
        )

    # ------------------------------------------------------------------
    # Durable storage (live runtime)
    # ------------------------------------------------------------------
    def _persist(self) -> None:
        """Commit L2/L3, the dedup table, and the backup sequence to
        the attached store.  Synchronous — never yields."""
        state = {
            "policy": self._policy.name,
            "backup_seq": self._backup_seq,
            "levels": [
                [t.table_id for t in self.level2],
                [t.table_id for t in self.level3],
            ],
            "completed": [
                [ingestor, batch_id, reply.merged_entries]
                for (ingestor, batch_id), reply in self._completed_batches.items()
            ],
        }
        self._store.commit(list(self.level2) + list(self.level3), state)

    def attach_store(self, store) -> None:
        """Attach a :class:`~repro.store.node_store.NodeStore`,
        restoring L2/L3, the completed-batch dedup table, and the
        Reader broadcast sequence from a previous incarnation.

        A forward the pre-crash process merged but whose ack was lost
        is answered from the recovered dedup table, so the retrying
        Ingestor is never double-merged; a forward that never reached
        the merge is simply processed fresh.  Readers that applied
        updates the crash cut off re-fetch the whole area via the
        catch-up protocol, which this node serves from the recovered
        levels.
        """
        self._store = store
        recovered = store.recovered
        if recovered is None:
            self._persist()
            return
        state = recovered.state
        persisted_policy = state.get("policy")
        if persisted_policy is not None and persisted_policy != self._policy.name:
            # A tiered store holds overlapping runs a leveled node would
            # mis-merge on the next forward; refuse the mismatch.
            raise CorruptionError(
                f"{self.name}: store written by compaction policy "
                f"{persisted_policy!r}, refusing to recover as "
                f"{self._policy.name!r}"
            )
        tables = recovered.tables
        self._backup_seq = int(state.get("backup_seq", 0))
        edit = LevelEdit()
        for level, ids in enumerate(state.get("levels", ())):
            if ids:
                edit.add(level, [tables[tid] for tid in ids])
        self.manifest.apply(edit)
        for ingestor, batch_id, merged in state.get("completed", ()):
            self._completed_batches[(str(ingestor), int(batch_id))] = ForwardReply(
                int(batch_id), int(merged)
            )

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Fail-stop.  The read cache models volatile memory and is
        wiped; L2/L3 and the batch-dedup table survive (durable)."""
        super().crash()
        if self.read_cache is not None:
            self.read_cache.clear()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _search(self, key: bytes, as_of: float | None) -> tuple[Entry | None, int]:
        probes = 0
        candidates: list[Entry] = []
        for level in (L2, L3):
            # The fence index bisects to the candidate tables: exactly
            # one for a non-overlapping level, one per covering run for
            # a stacked level (version order resolves among them).
            for table in self.manifest.tables_for_key(level, key):
                if table.bloom.might_contain(key):
                    probes += 1
                    versions = table.versions(key, self.read_cache)
                    if as_of is not None:
                        versions = [v for v in versions if v.timestamp <= as_of]
                    candidates.extend(versions[:1])
            if candidates and as_of is None:
                break  # L2 strictly newer than L3 for the same key
        if not candidates:
            return None, probes
        return max(candidates, key=lambda e: e.version), probes

    def _handle_read(self, src: str, request: ReadRequest):
        """Point read over L2 then L3 ("starting with the corresponding
        sstable in L2 and then ... L3")."""
        self.stats.reads += 1
        yield from self.compute(self.config.costs.read_base)
        entry, probes = self._search(request.key, request.as_of)
        yield from self.compute(probes * self.config.costs.probe_table)
        return ReadReply(entry, self.name)

    def _handle_range_query(self, src: str, request: RangeQuery):
        """Analytics range read directly on the Compactor (used when a
        deployment has no Readers)."""
        from repro.lsm.iterators import dedup_newest, k_way_merge

        self.stats.reads += 1
        yield from self.compute(self.config.costs.read_base)
        # A non-overlapping level becomes one lazy chained stream; a
        # stacked (tiered) level contributes one cursor per run, since
        # chaining overlapping tables would break sort order.  With a
        # limit the merge stops after O(limit) entries either way.
        overlapping = self.manifest.overlapping_levels
        sources = []
        for level in (L2, L3):
            run = self.manifest.tables_for_range(level, request.lo, request.hi)
            if not run:
                continue
            if level in overlapping:
                sources.extend(t.scan(request.lo, request.hi) for t in run)
            else:
                sources.append(level_scan(run, request.lo, request.hi))
        pairs: list[tuple[bytes, bytes]] = []
        for entry in dedup_newest(k_way_merge(sources)):
            if entry.tombstone:
                continue
            pairs.append((entry.key, entry.value))
            if request.limit is not None and len(pairs) >= request.limit:
                break
        yield from self.compute(len(pairs) * self.config.costs.scan_per_entry)
        return RangeQueryReply(tuple(pairs))
