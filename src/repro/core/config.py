"""CooLSM deployment configuration.

One :class:`CooLSMConfig` captures the structural parameters shared by
every node of a deployment: level thresholds, sstable and batch sizes,
the time-synchronisation bound δ, and flow-control limits.  The class
methods reproduce the paper's two experimental setups (100K and 300K
key ranges — Section IV: "For the 100K key-range, L0 and L1 have 10
sstables, L2 has 100 sstables and L3 has 1000 sstables ...").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.lsm.errors import InvalidConfigError

from .costs import DEFAULT_COSTS, CostModel


@dataclass(frozen=True, slots=True)
class CooLSMConfig:
    """Structural and protocol parameters of a CooLSM deployment.

    Attributes:
        key_range: Number of distinct integer keys in the workload's
            domain (drives level sizing presets).
        memtable_entries: Writes buffered at an Ingestor before the
            batch is sorted and added as one L0 table.
        sstable_entries: Entries per sstable in L1 and above.
        l0_threshold / l1_threshold: Ingestor level thresholds, in
            tables; exceeding L0 triggers minor compaction, exceeding L1
            forwards the extra sstables to Compactors.
        l2_threshold / l3_threshold: Compactor level thresholds, in
            tables; exceeding L2 triggers compaction into L3.
        delta: Loose time-synchronisation error bound δ, seconds
            (Section III-E).  Ordering needs a 2δ gap.
        gc_slack: How far (seconds) behind its local clock a Compactor
            sets the version-retention horizon in multi-Ingestor mode;
            must exceed 2δ plus the maximum read lifetime so no
            in-flight read loses the version it needs.
        max_inflight_tables: Ingestor flow control — when more forwarded
            sstables than this await Compactor acks, the *next* minor
            compaction (and therefore the write that triggered it)
            stalls.  A stall threshold, not a hard cap: the burst that
            crosses it completes, so in-flight count may briefly
            overshoot by one forwarding batch.  This is the
            backpressure that makes write latency depend on the number
            of Compactors (Figure 3).
        ack_timeout: Ingestor->Compactor RPC timeout, seconds.
        forward_backoff_base: First retry delay after a failed forward,
            seconds; doubles per consecutive failure (with jitter).
        forward_backoff_cap: Upper bound on the forward retry delay.
        forward_retry_budget: Failed attempts against one Compactor
            before the Ingestor rotates to the partition's next member
            (or the promoted replacement) and resets its backoff.
        client_timeout: Default timeout for every client RPC, seconds.
            ``None`` derives it as ``2 * ack_timeout`` (see
            :attr:`request_timeout`), so a crashed node surfaces
            :class:`~repro.sim.rpc.RpcTimeout` instead of hanging the
            driver forever.
        client_retry_budget: Attempts a client (and internal read
            fan-outs) make — cycling through alternate Ingestors or
            Readers — before giving up and raising.
        read_cache_capacity: Entries in each node's read cache (row
            results keyed by immutable sstable id, so cached entries
            never go stale; see :mod:`repro.lsm.cache`).  0 disables
            node-side caching.  Volatile state: cleared on crash.
        wal_group_commit: When an Ingestor has a durable store attached,
            batch concurrent WAL appends so one fsync covers many acks
            (DESIGN.md §13).  Ack-time durability is preserved — no op
            is acked before the fsync covering its record — only the
            fsync count is amortised.  Off by default so store
            attachment stays byte-identical with the sim schedule.
        group_commit_max_batch: Entries one group-commit fsync may
            cover; a fuller buffer flushes in several records.
        group_commit_max_delay: Extra seconds the group-commit flusher
            may wait for stragglers before fsyncing a non-full buffer.
            0 flushes at the next scheduler tick (pure coalescing of
            already-concurrent appends, no added latency).
        compaction_policy: Which :mod:`repro.lsm.policy` strategy the
            Ingestors and Compactors dispatch compactions through.
            ``"leveling"`` (the paper's hybrid: tiering L0->L1, leveled
            L2/L3) is the historical, byte-identical default; the
            others are ``"tiering"``, ``"lazy_leveling"``, and
            ``"one_leveling"``.
        flow_control: Enable write admission control at the Ingestor
            (:mod:`repro.core.flow`).  Off by default so the sim
            schedule stays byte-identical with historical runs.  When
            on, writes are delayed once compaction debt crosses
            ``flow_slowdown_debt`` and rejected with a retryable
            Backpressure error past ``flow_stall_debt``.
        flow_slowdown_debt: Debt ratio (worst of L0 / L1 / in-flight
            occupancy over their thresholds) at which admitted writes
            start paying a graduated delay.  Debt 1.0 means "exactly at
            a compaction trigger", which is routine steady state, so
            the slowdown must start comfortably above it — throttling
            at <= 1.0 taxes every write instead of absorbing bursts
            (cf. RocksDB, whose L0 slowdown trigger sits at ~5x its
            compaction trigger).
        flow_stall_debt: Debt ratio past which writes are rejected
            outright (the client backs off and retries).
        flow_max_delay: Delay, seconds, one admitted write pays when
            debt reaches ``flow_stall_debt`` (scales linearly from 0 at
            ``flow_slowdown_debt``).
        sorted_view: Serve Reader range queries from a REMIX-style
            persisted sorted view over the per-Compactor areas
            (:mod:`repro.lsm.sortedview`), incrementally rebuilt on each
            ``BackupUpdate`` install.  Off by default: the streaming
            k-way merge stays the byte-identical historical path, and
            every view-backed scan is required (and tested) to be
            bit-identical to it.
        sorted_view_segment_entries: Anchors per sorted-view segment —
            the granularity at which an install invalidates and a
            rebuild reuses view pieces.
        costs: The compute cost model.
    """

    key_range: int = 100_000
    memtable_entries: int = 500
    sstable_entries: int = 100
    l0_threshold: int = 10
    l1_threshold: int = 10
    l2_threshold: int = 100
    l3_threshold: int = 1_000
    delta: float = 0.005
    gc_slack: float = 2.0
    max_inflight_tables: int = 120
    ack_timeout: float = 30.0
    forward_backoff_base: float = 0.05
    forward_backoff_cap: float = 2.0
    forward_retry_budget: int = 6
    client_timeout: float | None = None
    client_retry_budget: int = 4
    read_cache_capacity: int = 4_096
    wal_group_commit: bool = False
    group_commit_max_batch: int = 256
    group_commit_max_delay: float = 0.0
    compaction_policy: str = "leveling"
    flow_control: bool = False
    flow_slowdown_debt: float = 1.5
    flow_stall_debt: float = 2.5
    flow_max_delay: float = 0.01
    sorted_view: bool = False
    sorted_view_segment_entries: int = 256
    costs: CostModel = DEFAULT_COSTS

    def __post_init__(self) -> None:
        if self.key_range <= 0:
            raise InvalidConfigError("key_range must be positive")
        if self.memtable_entries <= 0 or self.sstable_entries <= 0:
            raise InvalidConfigError("entry counts must be positive")
        if min(self.l0_threshold, self.l1_threshold, self.l2_threshold) <= 0:
            raise InvalidConfigError("level thresholds must be positive")
        if self.l3_threshold < 0:
            raise InvalidConfigError("l3_threshold must be non-negative")
        if self.delta < 0 or self.gc_slack < 0:
            raise InvalidConfigError("delta and gc_slack must be non-negative")
        if self.gc_slack < 2.0 * self.delta:
            raise InvalidConfigError("gc_slack must be at least 2*delta")
        if self.max_inflight_tables <= 0:
            raise InvalidConfigError("max_inflight_tables must be positive")
        if self.forward_backoff_base <= 0 or self.forward_backoff_cap <= 0:
            raise InvalidConfigError("forward backoff parameters must be positive")
        if self.forward_backoff_cap < self.forward_backoff_base:
            raise InvalidConfigError("forward_backoff_cap must be >= base")
        if self.forward_retry_budget <= 0 or self.client_retry_budget <= 0:
            raise InvalidConfigError("retry budgets must be positive")
        if self.client_timeout is not None and self.client_timeout <= 0:
            raise InvalidConfigError("client_timeout must be positive")
        if self.read_cache_capacity < 0:
            raise InvalidConfigError("read_cache_capacity must be non-negative")
        if self.group_commit_max_batch <= 0:
            raise InvalidConfigError("group_commit_max_batch must be positive")
        if self.group_commit_max_delay < 0:
            raise InvalidConfigError("group_commit_max_delay must be non-negative")
        from repro.lsm.policy import normalize_policy_name

        normalize_policy_name(self.compaction_policy)  # raises if unknown
        if self.flow_slowdown_debt <= 0 or self.flow_stall_debt <= 0:
            raise InvalidConfigError("flow-control debt thresholds must be positive")
        if self.flow_stall_debt <= self.flow_slowdown_debt:
            raise InvalidConfigError("flow_stall_debt must exceed flow_slowdown_debt")
        if self.flow_max_delay < 0:
            raise InvalidConfigError("flow_max_delay must be non-negative")
        if self.sorted_view_segment_entries <= 0:
            raise InvalidConfigError(
                "sorted_view_segment_entries must be positive"
            )

    @property
    def request_timeout(self) -> float:
        """The effective per-RPC timeout clients (and internal read
        fan-outs) use: ``client_timeout`` if set, else ``2 * ack_timeout``."""
        if self.client_timeout is not None:
            return self.client_timeout
        return 2.0 * self.ack_timeout

    @classmethod
    def paper_100k(cls, **overrides) -> "CooLSMConfig":
        """The paper's 100K key-range setup."""
        defaults = dict(
            key_range=100_000,
            l0_threshold=10,
            l1_threshold=10,
            l2_threshold=100,
            l3_threshold=1_000,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def paper_300k(cls, **overrides) -> "CooLSMConfig":
        """The paper's 300K key-range setup (3x bigger tree)."""
        defaults = dict(
            key_range=300_000,
            l0_threshold=10,
            l1_threshold=10,
            l2_threshold=300,
            l3_threshold=3_000,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def for_key_range(cls, key_range: int, **overrides) -> "CooLSMConfig":
        """Preset selection by key range, as in the paper."""
        if key_range >= 300_000:
            return cls.paper_300k(key_range=key_range, **overrides)
        return cls.paper_100k(key_range=key_range, **overrides)

    def scaled_down(self, factor: int = 10) -> "CooLSMConfig":
        """A proportionally smaller configuration for fast tests.

        Divides key range, batch size, and L2/L3 thresholds by
        ``factor`` while keeping the paper's 10x level ratios, so the
        dynamics (compaction cadence, forwarding) are preserved.
        """
        if factor <= 0:
            raise InvalidConfigError("factor must be positive")
        return replace(
            self,
            key_range=max(1, self.key_range // factor),
            memtable_entries=max(10, self.memtable_entries // factor),
            sstable_entries=max(10, self.sstable_entries // factor),
            l2_threshold=max(2, self.l2_threshold // factor),
            l3_threshold=max(2, self.l3_threshold // factor),
            max_inflight_tables=max(4, self.max_inflight_tables // factor),
        )
