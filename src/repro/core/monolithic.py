"""The monolithic baseline: one machine, one whole LSM tree.

Figure 3 compares CooLSM against "running CooLSM as a monolithic
system.  In this case, an Ingestor and a Compactor are colocated on the
same machine and connected in a monolithic design so that network
overhead is not incurred."  This node wraps a complete
:class:`~repro.lsm.tree.LSMTree` (all four levels) behind the same RPC
surface as a CooLSM deployment; every flush and compaction the tree
performs is charged as compute on the node's single machine, so
compaction work directly delays the writes that trigger it and competes
for cores with concurrent reads — the interference CooLSM's
deconstruction removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.effects import ComputeHost, EffectKernel, Fabric
from repro.lsm.entry import Entry
from repro.lsm.tree import LSMConfig, LSMTree
from repro.sim.clock import LooseClock
from repro.sim.rpc import RpcNode

from .config import CooLSMConfig
from .messages import (
    RangeQuery,
    RangeQueryReply,
    ReadReply,
    ReadRequest,
    UpsertReply,
    UpsertRequest,
)


@dataclass(slots=True)
class MonolithicStats:
    """Counters for the harness."""

    upserts: int = 0
    reads: int = 0


class MonolithicNode(RpcNode):
    """A single-machine LSM store exposing the CooLSM client protocol."""

    def __init__(
        self,
        kernel: EffectKernel,
        network: Fabric,
        machine: ComputeHost,
        name: str,
        config: CooLSMConfig,
        clock: LooseClock,
    ) -> None:
        super().__init__(kernel, network, machine, name)
        self.config = config
        self.clock = clock
        self.stats = MonolithicStats()
        self.tree = LSMTree(
            LSMConfig(
                memtable_entries=config.memtable_entries,
                sstable_entries=config.sstable_entries,
                level_thresholds=(
                    config.l0_threshold,
                    config.l1_threshold,
                    config.l2_threshold,
                    config.l3_threshold,
                ),
                compaction_policy=config.compaction_policy,
            ),
        )
        self._seqno = 0
        self.on("upsert", self._handle_upsert)
        self.on("read", self._handle_read)
        self.on("range_query", self._handle_range_query)

    def _handle_upsert(self, src: str, request: UpsertRequest):
        costs = self.config.costs
        yield from self.compute(costs.upsert_cpu)
        self._seqno += 1
        entry = Entry(
            request.key, self._seqno, self.clock.now(), request.value, request.tombstone
        )
        flushes_before = self.tree.stats.flushes
        compactions_before = len(self.tree.stats.compactions)
        self.tree.put_entry(entry)
        self.stats.upserts += 1
        # Charge the storage work this write triggered: a flush and any
        # cascade of compactions all run on this one machine, so the
        # triggering request pays for them in full.
        cost = 0.0
        if self.tree.stats.flushes > flushes_before:
            cost += costs.flush_cost(self.config.memtable_entries)
        for event in self.tree.stats.compactions[compactions_before:]:
            cost += costs.merge_cost(event.stats.entries_in)
        if cost:
            yield from self.compute(cost)
        return UpsertReply(entry.timestamp, entry.seqno)

    def _handle_read(self, src: str, request: ReadRequest):
        costs = self.config.costs
        self.stats.reads += 1
        yield from self.compute(costs.read_base)
        entry = self.tree.get_entry(request.key)
        probes = self._estimate_probes(request.key)
        yield from self.compute(probes * costs.probe_table)
        return ReadReply(entry, self.name)

    def _estimate_probes(self, key: bytes) -> int:
        """Sstables whose blocks a lookup touches (bloom- and fence-guided)."""
        probes = 0
        manifest = self.tree.manifest
        for table in manifest.level(0):
            if table.key_in_range(key) and table.bloom.might_contain(key):
                probes += 1
        for level in range(1, manifest.num_levels):
            for table in manifest.level(level):
                if table.key_in_range(key) and table.bloom.might_contain(key):
                    probes += 1
                    break
        return probes

    def _handle_range_query(self, src: str, request: RangeQuery):
        costs = self.config.costs
        yield from self.compute(costs.read_base)
        pairs: list[tuple[bytes, bytes]] = []
        for key, value in self.tree.scan(request.lo, request.hi):
            pairs.append((key, value))
            if request.limit is not None and len(pairs) >= request.limit:
                break
        yield from self.compute(len(pairs) * costs.scan_per_entry)
        return RangeQueryReply(tuple(pairs))
