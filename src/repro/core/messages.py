"""Typed message payloads exchanged between CooLSM nodes.

The simulator's RPC layer carries Python objects; these dataclasses
document and type the protocol.  Entries and sstables are passed by
reference (the network layer models their transfer time from the
declared ``size_bytes``), mirroring how the real system would serialise
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.shard import ShardMap
from repro.lsm.entry import Entry
from repro.lsm.sstable import SSTable


@dataclass(frozen=True, slots=True)
class UpsertRequest:
    """Client -> Ingestor: insert or delete one key."""

    key: bytes
    value: bytes
    tombstone: bool = False


@dataclass(frozen=True, slots=True)
class UpsertReply:
    """Ingestor -> client: the write's assigned (loose) timestamp."""

    timestamp: float
    seqno: int


@dataclass(frozen=True, slots=True)
class UpsertBatchRequest:
    """Client -> Ingestor: many upserts in one wire message.

    The pipelined write path coalesces concurrent client ops into one
    batch so a single RPC (and, with WAL group commit, a single fsync)
    covers all of them.  Ops are applied in order; each gets its own
    stamped reply so the batch is externally equivalent to sending the
    same :class:`UpsertRequest` sequence back to back.
    """

    ops: tuple[UpsertRequest, ...]


@dataclass(frozen=True, slots=True)
class UpsertBatchReply:
    """Ingestor -> client: one per-op reply for each op in the batch,
    in the same order.  Sent only after every op in the batch is as
    durable as a single acked upsert would be."""

    replies: tuple[UpsertReply, ...]


@dataclass(frozen=True, slots=True)
class ReadRequest:
    """Point read.  ``as_of`` caps the visible timestamps: nodes ignore
    versions with timestamp > as_of (multi-Ingestor protocol)."""

    key: bytes
    as_of: float | None = None


@dataclass(frozen=True, slots=True)
class ReadReply:
    """The newest visible version at the serving node, if any."""

    entry: Entry | None
    source: str = ""

    @property
    def found(self) -> bool:
        return self.entry is not None and not self.entry.tombstone


@dataclass(frozen=True, slots=True)
class Phase1Request:
    """Client -> coordinator Ingestor: start a multi-Ingestor read."""

    key: bytes


@dataclass(frozen=True, slots=True)
class IngestorReadResult:
    """One Ingestor's phase-1 answer: its newest visible version plus
    ts_c, the timestamp of the most recent record it sent to
    Compactors."""

    entry: Entry | None
    ts_c: float
    source: str


@dataclass(frozen=True, slots=True)
class Phase1Reply:
    """Coordinator -> client: the read timestamp it assigned and every
    Ingestor's result."""

    read_ts: float
    results: tuple[IngestorReadResult, ...]


@dataclass(frozen=True, slots=True)
class ForwardRequest:
    """Ingestor -> Compactor: sstables that overflowed L1.

    ``high_ts`` is the largest timestamp among the forwarded entries;
    the Compactor acks only after the major compaction has merged the
    tables (the ack lets the Ingestor drop its retained copies).

    ``ingestor`` names the originating Ingestor so the Compactor can
    deduplicate retried forwards by ``(ingestor, batch_id)`` — a lost
    ack must never cause the same batch to be merged twice.
    """

    tables: tuple[SSTable, ...]
    high_ts: float
    batch_id: int
    ingestor: str = ""


@dataclass(frozen=True, slots=True)
class ForwardReply:
    """Compactor -> Ingestor: ack after merge."""

    batch_id: int
    merged_entries: int


@dataclass(frozen=True, slots=True)
class BackupUpdate:
    """Compactor -> Reader: newly formed sstables after a major
    compaction, replacing the overlapping range of the given level."""

    level: int  # 2 or 3
    tables: tuple[SSTable, ...]
    compactor: str
    #: For level-3 updates: ids of the L2 tables whose content moved down,
    #: so the Reader can drop its (now duplicated) copies of them.
    removed_l2_ids: tuple[int, ...] = ()
    #: Per-source update sequence number (1, 2, 3, ...).  A Reader that
    #: observes a gap — updates lost while it was crashed or cut off —
    #: re-fetches the source's full area instead of installing out of
    #: order.  ``None`` marks an unsequenced update (direct test
    #: injection), which is always installed.
    seq: int | None = None
    #: Exact ids of the tables this update replaces at ``level``.
    #: ``None`` (the default, and the leveled policies' behaviour)
    #: means replace-by-key-overlap; stacked (tiered) policies send the
    #: exact set — possibly empty for a pure run append — because their
    #: levels hold overlapping sibling runs an overlap-based replace
    #: would incorrectly clobber.
    replaced_ids: tuple[int, ...] | None = None


@dataclass(frozen=True, slots=True)
class AreaSnapshot:
    """Compactor -> Reader catch-up reply: the complete current content
    of the Compactor's L2/L3, plus the update sequence number it is
    current as of.  Installing it wholesale resynchronises the Reader's
    area after a crash or partition."""

    seq: int
    l2: tuple[SSTable, ...]
    l3: tuple[SSTable, ...]
    compactor: str


@dataclass(frozen=True, slots=True)
class IngestorL1Update:
    """Ingestor -> Reader (Section III-D.3 variant): the Ingestor's
    current L1 run, replacing this Ingestor's previous fresh-area
    snapshot at the Reader."""

    tables: tuple[SSTable, ...]
    ingestor: str


@dataclass(frozen=True, slots=True)
class RangeQuery:
    """Client -> Reader/Compactor: analytics range read."""

    lo: bytes
    hi: bytes
    limit: int | None = None


@dataclass(frozen=True, slots=True)
class RangeQueryReply:
    """Matching (key, value) pairs, newest versions, tombstones elided."""

    pairs: tuple[tuple[bytes, bytes], ...]


@dataclass(frozen=True, slots=True)
class NodeStats:
    """Generic stats snapshot returned by the "stats" RPC."""

    name: str
    level_sizes: tuple[int, ...]
    total_entries: int
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class ShardMapRequest:
    """Client -> any Ingestor: fetch the node's current shard map.

    Sent when a write bounces with a ``WrongShard`` redirect; the
    client installs the reply if its epoch is newer than what it holds.
    """

    min_epoch: int = 0


@dataclass(frozen=True, slots=True)
class ShardMapReply:
    """The serving node's current shard map (``None`` if unsharded)."""

    shard_map: ShardMap | None


@dataclass(frozen=True, slots=True)
class InstallShardMap:
    """Coordinator -> Ingestor: adopt a new shard map.

    Rejected (by reply, not error) unless ``shard_map.epoch`` is
    strictly greater than the epoch the node already holds — epoch
    monotonicity is what fences a deposed owner against late writes.

    ``clock_floor`` carries the previous owner's timestamp watermark so
    a newly activated owner stamps its first write strictly after every
    migrated entry (newest-wins across the handoff).
    """

    shard_map: ShardMap
    clock_floor: float = 0.0


@dataclass(frozen=True, slots=True)
class InstallShardMapReply:
    """The epoch the node holds after the install attempt."""

    epoch: int
    accepted: bool


@dataclass(frozen=True, slots=True)
class ShardDrainRequest:
    """Coordinator -> deposed owner: push everything downstream.

    Flushes the memtable (raising the WAL floor via the durable store),
    minor-compacts L0 into L1, and forwards *all* of L1 to the
    Compactors.  The reply lists the forward batches in flight; the
    split coordinator polls ``shard_status`` until those specific
    batches are acked, at which point every write acked before the
    fence is readable at the Compactors.
    """


@dataclass(frozen=True, slots=True)
class ShardDrainReply:
    """Drain snapshot: in-flight forward batches plus the clock
    watermark the new owner must advance past."""

    pending: tuple[int, ...]
    inflight_tables: int
    watermark: float
    ts_c: float


@dataclass(frozen=True, slots=True)
class HealthPing:
    """Any node -> any node: liveness probe.  ``nonce`` is echoed so a
    prober can match replies to probes across retries."""

    nonce: int = 0


@dataclass(frozen=True, slots=True)
class HealthReply:
    """Health answer: the node is alive, serving, and reports its key
    load/fault gauges (the live runtime includes the transport counters,
    so a prober sees reconnects and shed frames per node)."""

    name: str
    nonce: int
    uptime: float
    inflight: int = 0
    gauges: dict = field(default_factory=dict)
