"""Per-node durable storage for the live runtime (Section III-H).

A :class:`NodeStore` gives one CooLSM process a crash-safe home under
its ``--data-dir``:

* ``wal.log`` — the role's write-ahead log (Ingestors log every acked
  upsert before replying; see :mod:`repro.lsm.wal` for the record
  format and torn-tail semantics);
* ``sst-<id>.sst`` — every sstable the node's recovery-critical state
  references, in the :mod:`repro.lsm.sstable_io` on-disk format;
* ``NODE_MANIFEST.json`` — a versioned manifest installed atomically
  (write-temp, fsync, rename, fsync-dir) naming the live sstables and
  carrying a role-specific ``state`` snapshot: the Ingestor's level
  contents, in-flight forwarded batches and clock watermark, the
  Compactor's levels, dedup table and backup sequence, the Reader's
  applied areas and per-source sequence numbers.

``commit`` is the only mutation of the manifest: it writes any sstable
that is not yet on disk, installs the new manifest, and only then
removes files the new manifest no longer references — so every crash
point leaves either the old or the new state fully intact, plus at
worst some orphan files that :meth:`NodeStore.open` deletes.

The store is deliberately kernel-agnostic: all calls are synchronous
(no effect yields), so attaching one to a node never changes the
simulator's schedule — runs with storage disabled stay byte-identical.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.lsm.entry import Entry
from repro.lsm.errors import CorruptionError
from repro.lsm.sstable import SSTable
from repro.lsm.sstable_io import SSTableReader, write_sstable
from repro.lsm.wal import WriteAheadLog, replay

from .fsutil import atomic_write_json, fsync_dir

MANIFEST_NAME = "NODE_MANIFEST.json"
WAL_NAME = "wal.log"
FORMAT = 1


def _table_filename(table_id: int) -> str:
    return f"sst-{table_id:016x}.sst"


@dataclass(slots=True)
class RecoveredState:
    """Everything :meth:`NodeStore.open` reconstructed from disk."""

    version: int
    state: dict
    #: table_id -> in-memory table (ids, block size, and bloom FP rate
    #: are restored from the manifest, not re-allocated).
    tables: dict[int, SSTable] = field(default_factory=dict)
    #: WAL entries newer than the manifest's ``wal_floor`` (older ones
    #: were already flushed into a persisted sstable before a crash
    #: landed between manifest install and WAL truncation).
    wal_entries: list[Entry] = field(default_factory=list)
    wal_floor: int = 0
    max_table_id: int = 0


class NodeStore:
    """Durable state for one live node; create via :meth:`open`.

    Attributes:
        recovered: The on-disk state found at open time, or None when
            the directory was fresh.
    """

    def __init__(
        self,
        directory: str,
        node_name: str,
        role: str,
        wal_sync: bool = True,
        policy: str | None = None,
    ) -> None:
        self.directory = str(directory)
        self.node_name = node_name
        self.role = role
        self.wal_sync = wal_sync
        self.policy = policy
        self.version = 0
        self.wal_floor = 0
        self.recovered: RecoveredState | None = None
        self._table_meta: dict[int, dict] = {}
        self._state: dict = {}
        self._wal: WriteAheadLog | None = None
        self._closed = False
        #: Fsynced WAL records written / entries they covered.  Their
        #: ratio is the group-commit amortisation factor (1.0 without
        #: group commit: every acked upsert paid its own fsync).
        self.wal_records = 0
        self.wal_entries_logged = 0

    # ------------------------------------------------------------------
    # Open / recover
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        directory: str,
        node_name: str,
        role: str,
        wal_sync: bool = True,
        policy: str | None = None,
    ) -> "NodeStore":
        """Open (or create) the store, recovering any prior state.

        Raises :class:`CorruptionError` when the manifest references a
        missing sstable, belongs to a different node/role, or was
        written under a different compaction policy than ``policy``
        (level contents are not interchangeable across policies —
        reinterpreting a stacked level as leveled silently loses
        versions); orphan sstables and temp files (a crash between
        sstable write and manifest install) are silently deleted.
        ``policy=None`` skips the policy check (and omits the key from
        new manifests), preserving pre-policy manifests' behaviour.
        """
        store = cls(directory, node_name, role, wal_sync=wal_sync, policy=policy)
        os.makedirs(store.directory, exist_ok=True)
        manifest_path = os.path.join(store.directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            store._recover(manifest_path)
        store._clean_orphans()
        store._wal = WriteAheadLog(
            os.path.join(store.directory, WAL_NAME), sync=wal_sync
        )
        return store

    def _recover(self, manifest_path: str) -> None:
        with open(manifest_path, "r", encoding="utf-8") as f:
            document = json.load(f)
        if document.get("format") != FORMAT:
            raise CorruptionError(
                f"{manifest_path}: unknown manifest format {document.get('format')!r}"
            )
        if document.get("role") != self.role or document.get("node") != self.node_name:
            raise CorruptionError(
                f"{manifest_path}: belongs to {document.get('role')} "
                f"{document.get('node')!r}, not {self.role} {self.node_name!r}"
            )
        persisted_policy = document.get("policy")
        if (
            self.policy is not None
            and persisted_policy is not None
            and persisted_policy != self.policy
        ):
            raise CorruptionError(
                f"{manifest_path}: written by compaction policy "
                f"{persisted_policy!r}, refusing to open as {self.policy!r}"
            )
        self.version = int(document["version"])
        self.wal_floor = int(document.get("wal_floor", 0))
        self._state = dict(document.get("state", {}))
        tables: dict[int, SSTable] = {}
        max_id = 0
        for id_str, meta in dict(document.get("tables", {})).items():
            table_id = int(id_str)
            path = os.path.join(self.directory, meta["file"])
            if not os.path.exists(path):
                raise CorruptionError(
                    f"{manifest_path}: references missing sstable {meta['file']}"
                )
            with SSTableReader(path) as reader:
                tables[table_id] = SSTable(
                    list(reader.scan()),
                    block_entries=int(meta.get("block_entries", 64)),
                    bloom_fp_rate=float(meta.get("fp_rate", 0.01)),
                    table_id=table_id,
                    bloom=reader.bloom,
                )
            self._table_meta[table_id] = dict(meta)
            max_id = max(max_id, table_id)
        wal_entries = [
            entry
            for entry in replay(os.path.join(self.directory, WAL_NAME))
            if entry.seqno > self.wal_floor
        ]
        self.recovered = RecoveredState(
            version=self.version,
            state=dict(self._state),
            tables=tables,
            wal_entries=wal_entries,
            wal_floor=self.wal_floor,
            max_table_id=max_id,
        )

    def _clean_orphans(self) -> None:
        live = {meta["file"] for meta in self._table_meta.values()}
        for name in os.listdir(self.directory):
            stale_table = (
                name.startswith("sst-") and name.endswith(".sst") and name not in live
            )
            if stale_table or name.endswith(".tmp"):
                os.remove(os.path.join(self.directory, name))
        fsync_dir(self.directory)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed or self._wal is None:
            raise CorruptionError("store is closed")

    def log_entries(self, entries: list[Entry]) -> None:
        """Durably append entries to the role WAL (one fsynced record).

        The Ingestor calls this for every upsert *before* acking, which
        is what makes "acked" mean "will survive SIGKILL".  With WAL
        group commit one call — one fsync — covers the entries of many
        concurrent handlers (DESIGN.md §13)."""
        self._check_open()
        self._wal.append_batch(entries)
        self.wal_records += 1
        self.wal_entries_logged += len(entries)

    def commit(
        self,
        tables: Iterable[SSTable],
        state: dict,
        wal_floor: int | None = None,
    ) -> int:
        """Atomically install a new durable snapshot; returns its version.

        ``tables`` is the complete live set: missing ones are written,
        ones no longer referenced are deleted (after the manifest
        install, so a crash can only leave orphans, never dangling
        references).  ``wal_floor`` (an entry seqno) additionally marks
        every logged entry at-or-below it as flushed and truncates the
        WAL — recovery replays only entries above the floor.
        """
        self._check_open()
        live: dict[int, dict] = {}
        for table in tables:
            meta = self._table_meta.get(table.table_id)
            if meta is None:
                name = _table_filename(table.table_id)
                write_sstable(
                    table,
                    os.path.join(self.directory, name),
                    block_entries=table._block_entries,
                )
                meta = {
                    "file": name,
                    "block_entries": table._block_entries,
                    "fp_rate": table.bloom_fp_rate,
                }
            live[table.table_id] = meta
        self.version += 1
        if wal_floor is not None:
            self.wal_floor = max(self.wal_floor, wal_floor)
        self._state = dict(state)
        document = {
            "format": FORMAT,
            "version": self.version,
            "node": self.node_name,
            "role": self.role,
            "wal_floor": self.wal_floor,
            "tables": {str(tid): meta for tid, meta in live.items()},
            "state": self._state,
        }
        if self.policy is not None:
            document["policy"] = self.policy
        atomic_write_json(
            os.path.join(self.directory, MANIFEST_NAME), document
        )
        dropped = [tid for tid in self._table_meta if tid not in live]
        for tid in dropped:
            path = os.path.join(self.directory, self._table_meta[tid]["file"])
            if os.path.exists(path):
                os.remove(path)
        if dropped:
            fsync_dir(self.directory)
        self._table_meta = live
        if wal_floor is not None:
            self._wal.truncate()
        return self.version

    # ------------------------------------------------------------------
    # Sidecars
    # ------------------------------------------------------------------
    # Auxiliary derived state (e.g. the Reader's sorted view) lives in
    # named JSON documents beside the manifest.  Sidecars are installed
    # atomically but are *not* covered by the manifest's crash
    # atomicity with respect to ``commit`` — a crash between commit and
    # sidecar write leaves a stale document, so every consumer must
    # validate a loaded sidecar against the recovered state and treat a
    # mismatch as "rebuild", never as truth.  ``_clean_orphans`` leaves
    # them alone (it only removes ``sst-*.sst`` and ``*.tmp``).

    def save_sidecar(self, name: str, document: dict) -> None:
        """Atomically install the named sidecar document."""
        self._check_open()
        atomic_write_json(os.path.join(self.directory, name), document)

    def load_sidecar(self, name: str) -> dict | None:
        """The named sidecar's document, or None when absent/unreadable
        (an unparseable sidecar is indistinguishable from a torn write,
        and consumers rebuild in both cases)."""
        path = os.path.join(self.directory, name)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as f:
                return json.load(f)
        except (OSError, ValueError):
            return None

    def remove_sidecar(self, name: str) -> None:
        """Delete the named sidecar (refuse-and-rebuild path)."""
        path = os.path.join(self.directory, name)
        if os.path.exists(path):
            os.remove(path)
            fsync_dir(self.directory)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def data_bytes(self) -> int:
        """Total bytes of manifest + live sstables (excludes the WAL)."""
        total = 0
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            total += os.path.getsize(manifest_path)
        for meta in self._table_meta.values():
            path = os.path.join(self.directory, meta["file"])
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total

    def wal_bytes(self) -> int:
        wal_path = os.path.join(self.directory, WAL_NAME)
        return os.path.getsize(wal_path) if os.path.exists(wal_path) else 0

    def close(self) -> None:
        if not self._closed:
            if self._wal is not None:
                self._wal.close()
            self._closed = True

    def __enter__(self) -> "NodeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
