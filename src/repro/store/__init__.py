"""Durable node storage: persistent state + crash recovery for the
live runtime.

:mod:`repro.store.fsutil` is a dependency-free leaf (directory fsync,
atomic installs) used by both :mod:`repro.lsm` and
:mod:`repro.store.node_store`; to keep that import edge acyclic this
package resolves its public names lazily (PEP 562) — importing
``repro.store.fsutil`` never pulls in the node store (and with it the
``lsm`` modules that themselves use ``fsutil``).
"""

from __future__ import annotations

__all__ = [
    "MANIFEST_NAME",
    "NodeStore",
    "RecoveredState",
    "WAL_NAME",
    "atomic_write_bytes",
    "atomic_write_json",
    "fsync_dir",
]


def __getattr__(name: str):
    if name in ("NodeStore", "RecoveredState", "MANIFEST_NAME", "WAL_NAME"):
        from . import node_store

        return getattr(node_store, name)
    if name in ("atomic_write_bytes", "atomic_write_json", "fsync_dir"):
        from . import fsutil

        return getattr(fsutil, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
