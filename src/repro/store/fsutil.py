"""Filesystem durability primitives shared by the persistence layers.

An ``os.replace`` makes a file's *content* atomic, but the rename itself
lives in the parent directory's metadata: until the directory is
fsynced, a power loss can roll the rename back (or lose a freshly
created file entirely).  Every atomic-install path in the repo —
:meth:`repro.lsm.tree.LSMTree._write_manifest_file`,
:func:`repro.lsm.sstable_io.write_sstable`, and the
:class:`~repro.store.node_store.NodeStore` manifest — therefore pairs
its replace/create/unlink with :func:`fsync_dir`.

This module is a dependency-free leaf: it imports nothing from
``repro``, so ``lsm`` and ``store`` can both use it without cycles.
"""

from __future__ import annotations

import json
import os


def fsync_dir(path: str) -> None:
    """fsync the *directory* at ``path`` so renames/creates/unlinks in
    it survive power loss.

    No-op on platforms whose directory handles reject fsync (Windows);
    POSIX is the durability target.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except (OSError, NotImplementedError):  # pragma: no cover - platform
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform quirk
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Durably install ``data`` at ``path``: write a temp file, fsync
    it, rename over the target, fsync the directory."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    fsync_dir(os.path.dirname(os.path.abspath(path)))


def atomic_write_json(path: str, document: dict) -> None:
    """Durably install a JSON document at ``path`` (see
    :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, json.dumps(document, sort_keys=True).encode())
