"""The shared chaos vocabulary: one fault language, two interpreters.

PR 1's nemesis made fault schedules first-class data inside the
simulator; this module is that data layer extracted so the *live*
runtime can speak the same language.  A **scenario** is a list of fault
events with absolute times (simulation seconds under the sim kernel,
wall-clock seconds from schedule start under the live runtime):

* :class:`CrashNode` — fail-stop a node, restart after ``downtime``
  (sim: ``crash()``/``recover()``; live: SIGKILL + supervised restart);
* :class:`PartitionPair` — cut the link between two machines, heal
  after ``duration`` (sim: fault-plan hold; live: proxy link cut);
* :class:`DropBurst` — raise the frame/message drop probability for a
  window (sim: ``FaultPlan.drop_probability``; live: proxy frame drops);
* :class:`SlowMachine` — gray failure: the machine answers, slowly
  (sim: divide machine speed; live: inject per-link latency);
* :class:`SkewClock` — clock-skew spike (sim only: live clocks are the
  host's real clocks and cannot be skewed from outside the process).

Interpreters (:class:`repro.sim.nemesis.Nemesis` and
:class:`repro.live.chaos.LiveNemesis`) apply each event at its time and
revert it after its duration, appending to a :class:`NemesisLog`.  Log
records carry the event's *scheduled* time — under the sim kernel the
virtual clock lands on it exactly, and the live nemesis records the
same number (keeping the wall-clock instant in the non-fingerprinted
``wall`` field) — so :func:`expected_fingerprint` is a pure function of
the scenario and **one schedule yields the same fingerprint under both
interpreters and across replays**.  That is the schedule-portability
guarantee the chaos soaks assert.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "CrashNode",
    "PartitionPair",
    "DropBurst",
    "SlowMachine",
    "SkewClock",
    "NemesisEvent",
    "NemesisRecord",
    "NemesisLog",
    "NemesisStats",
    "flapping_partition",
    "rolling_partitions",
    "random_schedule",
    "expected_records",
    "expected_fingerprint",
]


# ----------------------------------------------------------------------
# Scenario events (pure data; times are absolute seconds)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CrashNode:
    """Fail-stop ``target`` at ``at``; restart after ``downtime``
    (``None`` = stays down for the rest of the run)."""

    target: str
    at: float
    downtime: float | None = None


@dataclass(frozen=True, slots=True)
class PartitionPair:
    """Partition the two *machines* at ``at``; heal after ``duration``.

    Sim: traffic between the machines is held (TCP model: retransmitted,
    not lost) and flushed at heal time.  Live: the chaos proxy cuts both
    directions of the link; senders reconnect into a closed door until
    the heal.
    """

    machine_a: str
    machine_b: str
    at: float
    duration: float


@dataclass(frozen=True, slots=True)
class DropBurst:
    """Raise the drop probability to ``probability`` during
    [at, at + duration), then restore the previous value."""

    probability: float
    at: float
    duration: float


@dataclass(frozen=True, slots=True)
class SlowMachine:
    """Gray failure during the window: the node answers, just slowly
    (no failure detector fires cleanly on it).  Sim divides the
    machine's speed by ``factor``; live injects ``factor``-scaled
    one-way latency on every link touching the machine."""

    machine: str
    at: float
    duration: float
    factor: float = 4.0


@dataclass(frozen=True, slots=True)
class SkewClock:
    """Clock-skew spike: add ``skew`` seconds to ``target``'s loose
    clock during the window (deliberately violating the δ bound, to
    probe the 2δ ordering machinery).  Sim-only: a live node's clock
    belongs to the OS."""

    target: str
    at: float
    duration: float
    skew: float


NemesisEvent = CrashNode | PartitionPair | DropBurst | SlowMachine | SkewClock


def flapping_partition(
    machine_a: str,
    machine_b: str,
    at: float,
    up: float,
    down: float,
    flaps: int,
) -> list[PartitionPair]:
    """A link that flaps: ``flaps`` partition windows of length ``down``
    separated by ``up`` seconds of connectivity, starting at ``at``."""
    if flaps < 1:
        raise ValueError("flaps must be >= 1")
    events = []
    start = at
    for __ in range(flaps):
        events.append(PartitionPair(machine_a, machine_b, start, down))
        start += down + up
    return events


def rolling_partitions(
    machines: Sequence[str], peer: str, at: float, duration: float, gap: float = 0.0
) -> list[PartitionPair]:
    """Partition each machine in ``machines`` from ``peer`` in turn —
    a rolling isolation sweep."""
    events = []
    start = at
    for machine in machines:
        events.append(PartitionPair(machine, peer, start, duration))
        start += duration + gap
    return events


# ----------------------------------------------------------------------
# Applied-action log (for replay and cross-interpreter assertions)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class NemesisRecord:
    """One applied or reverted fault action.

    ``time`` is the *scheduled* time the action belongs to (part of the
    fingerprint); ``wall`` is the instant the interpreter actually
    applied it — always equal to ``time`` under the sim kernel, and the
    measured wall-clock offset under the live runtime (diagnostic only,
    excluded from the fingerprint).
    """

    time: float
    action: str
    target: str
    wall: float | None = None


class NemesisLog:
    """Append-only record of what the nemesis actually did and when."""

    def __init__(self) -> None:
        self.records: list[NemesisRecord] = []

    def add(
        self, time: float, action: str, target: str, wall: float | None = None
    ) -> None:
        self.records.append(NemesisRecord(time, action, target, wall))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def fingerprint(self) -> tuple:
        """Hashable summary in application order; equal across replays
        of the same seed under one interpreter."""
        return tuple((r.time, r.action, r.target) for r in self.records)

    def canonical_fingerprint(self) -> tuple:
        """Fingerprint sorted by (time, action, target): equal across
        *interpreters*, where near-simultaneous events may append in
        either order."""
        return tuple(sorted(self.fingerprint()))


@dataclass(slots=True)
class NemesisStats:
    """Counters, split by fault family."""

    crashes: int = 0
    restarts: int = 0
    partitions: int = 0
    heals: int = 0
    drop_bursts: int = 0
    slowdowns: int = 0
    skews: int = 0


def expected_records(
    events: Sequence[NemesisEvent], base_drop_probability: float = 0.0
) -> list[tuple[float, str, str]]:
    """The (time, action, target) records a faithful interpreter of
    ``events`` must produce — the replayability oracle both nemesis
    implementations are held to."""
    records: list[tuple[float, str, str]] = []
    for event in events:
        if isinstance(event, CrashNode):
            records.append((event.at, "crash", event.target))
            if event.downtime is not None:
                records.append((event.at + event.downtime, "recover", event.target))
        elif isinstance(event, PartitionPair):
            key = f"{event.machine_a}|{event.machine_b}"
            records.append((event.at, "partition", key))
            records.append((event.at + event.duration, "heal", key))
        elif isinstance(event, DropBurst):
            records.append((event.at, "drop_burst", f"p={event.probability}"))
            records.append(
                (
                    event.at + event.duration,
                    "drop_restore",
                    f"p={base_drop_probability}",
                )
            )
        elif isinstance(event, SlowMachine):
            records.append((event.at, "slow", event.machine))
            records.append((event.at + event.duration, "restore_speed", event.machine))
        elif isinstance(event, SkewClock):
            records.append((event.at, "skew", event.target))
            records.append((event.at + event.duration, "unskew", event.target))
        else:
            raise TypeError(f"unknown nemesis event: {event!r}")
    return sorted(records)


def expected_fingerprint(
    events: Sequence[NemesisEvent], base_drop_probability: float = 0.0
) -> tuple:
    """Canonical fingerprint a run of ``events`` must log — compare with
    :meth:`NemesisLog.canonical_fingerprint` from either interpreter."""
    return tuple(expected_records(events, base_drop_probability))


# ----------------------------------------------------------------------
# Random scenario generation (seeded, hence replayable)
# ----------------------------------------------------------------------
def random_schedule(
    rng: random.Random,
    horizon: float,
    node_names: Sequence[str],
    machine_names: Sequence[str] = (),
    clock_names: Sequence[str] = (),
    crashes: int = 2,
    partitions: int = 2,
    drop_bursts: int = 1,
    slowdowns: int = 1,
    skews: int = 0,
    mean_downtime: float = 0.5,
    max_skew: float = 0.05,
) -> list[NemesisEvent]:
    """Draw a scenario from a seeded RNG stream.

    Target choices iterate sorted name lists, so the draw depends only
    on the seed and the deployment shape — the same seed always yields
    the same scenario, under either interpreter.
    """
    events: list[NemesisEvent] = []
    node_names = sorted(node_names)
    machine_names = sorted(machine_names)
    clock_names = sorted(clock_names)
    for __ in range(crashes):
        if not node_names:
            break
        events.append(
            CrashNode(
                rng.choice(node_names),
                rng.uniform(0.0, horizon),
                rng.uniform(0.5, 1.5) * mean_downtime,
            )
        )
    for __ in range(partitions):
        if len(machine_names) < 2:
            break
        a, b = rng.sample(machine_names, 2)
        events.append(
            PartitionPair(
                a, b, rng.uniform(0.0, horizon), rng.uniform(0.5, 1.5) * mean_downtime
            )
        )
    for __ in range(drop_bursts):
        events.append(
            DropBurst(
                rng.uniform(0.1, 0.4),
                rng.uniform(0.0, horizon),
                rng.uniform(0.5, 1.5) * mean_downtime,
            )
        )
    for __ in range(slowdowns):
        if not machine_names:
            break
        events.append(
            SlowMachine(
                rng.choice(machine_names),
                rng.uniform(0.0, horizon),
                rng.uniform(0.5, 1.5) * mean_downtime,
                factor=rng.uniform(2.0, 8.0),
            )
        )
    for __ in range(skews):
        if not clock_names:
            break
        events.append(
            SkewClock(
                rng.choice(clock_names),
                rng.uniform(0.0, horizon),
                rng.uniform(0.5, 1.5) * mean_downtime,
                skew=rng.uniform(-max_skew, max_skew),
            )
        )
    return sorted(events, key=lambda e: e.at)
