"""State-machine replication of Compactors onto Reader-like replicas.

Section III-H: "a Compactor would broadcast its changes to 2f Readers
(making the total with the Compactor be 2f+1 nodes) using a paxos
process replicating an ordered log of operation steps."

:class:`ReplicatedCompactor` is a Compactor that appends every forward
it receives to a replicated log: it ships the log record to its 2f
replicas and waits for f acknowledgements (a majority of 2f+1 counting
itself) *before* acking the Ingestor.  :class:`CompactorReplica`
durably appends the record, acks immediately, and applies the merge
asynchronously — so a replica always holds enough log to reconstruct
the leader's state, while the leader's ack path only pays one
round-trip plus a log append.

A replica is a full Compactor object (same read path, same merge
logic); promotion after a leader failure is just activation — see
:mod:`repro.replication.failover`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.sim.clock import LooseClock
from repro.sim.kernel import Kernel
from repro.sim.machine import Machine
from repro.sim.network import Network
from repro.sim.rpc import RemoteError, RpcTimeout

from repro.core.compactor import Compactor
from repro.core.config import CooLSMConfig
from repro.core.messages import ForwardRequest

from .paxos import PaxosMixin

#: Fixed service time for appending one record to the replication log.
LOG_APPEND_COST = 20e-6


@dataclass(frozen=True, slots=True)
class LogRecord:
    """One replicated operation step."""

    index: int
    request: ForwardRequest
    leader: str


@dataclass(slots=True)
class ReplicationStats:
    """Counters for the replication layer."""

    records_shipped: int = 0
    acks_waited: int = 0
    records_applied: int = 0
    log_length: int = 0


class ReplicatedCompactor(Compactor, PaxosMixin):
    """A Compactor whose operation log is replicated to 2f replicas."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        machine: Machine,
        name: str,
        config: CooLSMConfig,
        clock: LooseClock,
        replicas: Iterable[str],
        tolerated_failures: int = 1,
        backups: Iterable[str] = (),
        multi_ingestor: bool = False,
    ) -> None:
        super().__init__(
            kernel, network, machine, name, config, clock, backups, multi_ingestor
        )
        self.init_paxos()
        self.replicas = list(replicas)
        self.f = tolerated_failures
        self.replication = ReplicationStats()
        self._log_index = 0
        self.term = 0
        self.fenced = False
        self.on("ping", self._handle_ping)

    def _handle_ping(self, src: str, payload: Any):
        return "pong"
        yield  # pragma: no cover - generator form required by RPC layer

    def fence(self, term: int) -> None:
        """Depose this leader: a newer term exists.

        A fenced leader rejects every subsequent forward, so an old
        leader resurrected after its group elected a successor cannot
        accept writes the successor never sees (split-brain).  The
        rejection surfaces at the Ingestor as a RemoteError, and its
        failover loop re-resolves the partition to the new leader.
        """
        self.fenced = True
        self.term = max(self.term, term)

    def _handle_forward(self, src: str, request: ForwardRequest):
        if self.fenced:
            raise RuntimeError(
                f"{self.name} was deposed at term {self.term}; "
                "forward to the current leader"
            )
        reply = yield from super()._handle_forward(src, request)
        return reply

    def _process_forward(self, src: str, request: ForwardRequest):
        """Replicate the operation to a majority, then merge and ack.

        Runs under the base class's idempotency gate, so a retried
        batch is answered from the completed-batch table instead of
        being re-replicated and re-merged.
        """
        self._log_index += 1
        record = LogRecord(self._log_index, request, self.name)
        yield from self.compute(LOG_APPEND_COST)
        if self.replicas:
            yield from self._replicate(record)
        reply = yield from super()._process_forward(src, request)
        return reply

    def _replicate(self, record: LogRecord):
        """Ship ``record`` and wait for f replica acks (majority of 2f+1)."""
        entries = sum(len(t) for t in record.request.tables)
        size = self.config.costs.tables_size_bytes(entries)
        needed = min(self.f, len(self.replicas))
        calls = [
            self.kernel.spawn(self._ship(replica, record, size))
            for replica in self.replicas
        ]
        self.replication.records_shipped += 1
        # Wait until `needed` acks arrive (not all: stragglers tolerated).
        acked = 0
        pending = list(calls)
        while acked < needed and pending:
            index, result = yield self.kernel.any_of(pending)
            done = pending.pop(index)
            del done
            if result:
                acked += 1
        self.replication.acks_waited += acked

    def _ship(self, replica: str, record: LogRecord, size: int):
        try:
            yield self.call(
                replica, "replicate", record, size_bytes=size, timeout=2.0, retries=1
            )
            return True
        except (RpcTimeout, RemoteError):
            return False


class CompactorReplica(Compactor, PaxosMixin):
    """A passive Compactor replica: logs synchronously, applies
    asynchronously, and can be promoted to leader."""

    def __init__(
        self,
        kernel: Kernel,
        network: Network,
        machine: Machine,
        name: str,
        config: CooLSMConfig,
        clock: LooseClock,
        backups: Iterable[str] = (),
        multi_ingestor: bool = False,
    ) -> None:
        super().__init__(
            kernel, network, machine, name, config, clock, backups, multi_ingestor
        )
        self.init_paxos()
        self.active = False
        self.term = 0
        self.replication = ReplicationStats()
        self.log: list[LogRecord] = []
        self._applied_index = 0
        self._apply_wakeup = kernel.event()
        self.on("replicate", self._handle_replicate)
        self.on("ping", self._handle_ping)
        kernel.spawn(self._apply_loop(), f"{name}.apply")

    def _handle_ping(self, src: str, payload: Any):
        return "pong"
        yield  # pragma: no cover

    def _handle_replicate(self, src: str, record: LogRecord):
        """Append to the log and ack; the merge happens asynchronously."""
        yield from self.compute(LOG_APPEND_COST)
        self.log.append(record)
        self.replication.log_length = len(self.log)
        if not self._apply_wakeup.triggered:
            self._apply_wakeup.succeed()
        return record.index

    def _apply_loop(self):
        """Apply logged operations in order, in the background."""
        while True:
            if self._applied_index >= len(self.log):
                self._apply_wakeup = self.kernel.event()
                yield self._apply_wakeup
                continue
            record = self.log[self._applied_index]
            self._applied_index += 1
            yield self._merge_lock.request()
            try:
                merged = yield from self._compact_into_l2(list(record.request.tables))
                if len(self.level2) > self.config.l2_threshold:
                    yield from self._compact_l2_overflow_into_l3()
            finally:
                self._merge_lock.release()
            # Remember the batch so that, after a promotion, an Ingestor
            # retrying it (its ack from the old leader was lost) gets a
            # deduplicated ack instead of a double merge.
            self.record_applied_batch(
                record.request.ingestor, record.request.batch_id, merged
            )
            self.replication.records_applied += 1

    @property
    def applied_index(self) -> int:
        return self._applied_index

    @property
    def caught_up(self) -> bool:
        return self._applied_index >= len(self.log)

    def promote(self, term: int = 0) -> None:
        """Assume the Compactor role (called after winning election)."""
        self.active = True
        self.term = max(self.term, term)

    def demote(self, term: int = 0) -> None:
        """Step down: a later election chose someone else.  A demoted
        replica rejects forwards again (split-brain fencing)."""
        self.active = False
        self.term = max(self.term, term)

    def _handle_forward(self, src: str, request: ForwardRequest):
        """Serve forwards only once promoted; reject otherwise so the
        Ingestor's retry loop moves on."""
        if not self.active:
            raise RuntimeError(f"{self.name} is a passive replica")
        reply = yield from super()._handle_forward(src, request)
        return reply
