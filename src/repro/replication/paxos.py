"""Single-decree Paxos, used for leader election during failover.

Section III-H: "to make a component/node of CooLSM resilient to
failures, its state would be replicated to 2f+1 nodes ... using
protocols like paxos.  ... If a failure occurs, one of the Readers can
assume the role of the Compactor via a leader election process."

This module implements classic Paxos (Lamport's synod protocol) as a
mixin any :class:`~repro.sim.rpc.RpcNode` can adopt: the node becomes
an acceptor/learner for any number of named *instances*, and can act as
a proposer via :meth:`PaxosMixin.paxos_propose`.  Each instance decides
one value; the failover layer runs one instance per (group, term) to
agree on a new leader.

Safety follows the standard argument: a proposer must get promises from
a majority before proposing, adopts the highest-ballot accepted value
it hears about, and a value is decided once a majority accepts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.kernel import SimError
from repro.sim.rpc import RemoteError, RpcTimeout

#: Ballots are (round, proposer_name): totally ordered, proposer-unique.
Ballot = tuple[int, str]

ZERO_BALLOT: Ballot = (0, "")


@dataclass(slots=True)
class AcceptorState:
    """Per-instance acceptor bookkeeping."""

    promised: Ballot = ZERO_BALLOT
    accepted_ballot: Ballot = ZERO_BALLOT
    accepted_value: Any = None


@dataclass(frozen=True, slots=True)
class PrepareRequest:
    instance: str
    ballot: Ballot


@dataclass(frozen=True, slots=True)
class PrepareReply:
    promised: bool
    accepted_ballot: Ballot
    accepted_value: Any


@dataclass(frozen=True, slots=True)
class AcceptRequest:
    instance: str
    ballot: Ballot
    value: Any


@dataclass(frozen=True, slots=True)
class AcceptReply:
    accepted: bool


@dataclass(frozen=True, slots=True)
class LearnMessage:
    instance: str
    value: Any


class PaxosConflict(SimError):
    """Raised when a proposal round was preempted by a higher ballot."""


class PaxosMixin:
    """Acceptor, learner, and proposer roles for an RpcNode subclass.

    Call :meth:`init_paxos` from ``__init__`` (after RpcNode setup) to
    register the handlers.  Decided values appear in :attr:`decisions`.
    """

    def init_paxos(self) -> None:
        self._acceptor_states: dict[str, AcceptorState] = {}
        self.decisions: dict[str, Any] = {}
        self._next_round = 0
        self.on("paxos_prepare", self._handle_prepare)
        self.on("paxos_accept", self._handle_accept)
        self.on("paxos_learn", self._handle_learn)

    # ------------------------------------------------------------------
    # Acceptor
    # ------------------------------------------------------------------
    def _state_for(self, instance: str) -> AcceptorState:
        return self._acceptor_states.setdefault(instance, AcceptorState())

    def _handle_prepare(self, src: str, request: PrepareRequest):
        state = self._state_for(request.instance)
        if request.ballot > state.promised:
            state.promised = request.ballot
            return PrepareReply(True, state.accepted_ballot, state.accepted_value)
        return PrepareReply(False, state.accepted_ballot, state.accepted_value)
        yield  # pragma: no cover - generator form required by RPC layer

    def _handle_accept(self, src: str, request: AcceptRequest):
        state = self._state_for(request.instance)
        if request.ballot >= state.promised:
            state.promised = request.ballot
            state.accepted_ballot = request.ballot
            state.accepted_value = request.value
            return AcceptReply(True)
        return AcceptReply(False)
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Learner
    # ------------------------------------------------------------------
    def _handle_learn(self, src: str, message: LearnMessage):
        self.decisions[message.instance] = message.value
        return None
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # Proposer
    # ------------------------------------------------------------------
    def paxos_propose(
        self,
        instance: str,
        value: Any,
        acceptors: list[str],
        timeout: float = 1.0,
        max_rounds: int = 10,
    ):
        """Drive an instance to a decision; returns the decided value.

        The decided value may differ from ``value`` if another proposal
        was already (partially) accepted — Paxos's safety in action.
        Raises :class:`PaxosConflict` after ``max_rounds`` preemptions.
        """
        majority = len(acceptors) // 2 + 1
        for __ in range(max_rounds):
            if instance in self.decisions:
                return self.decisions[instance]
            self._next_round += 1
            ballot: Ballot = (self._next_round, self.name)
            # Phase 1: prepare.
            promises = yield from self._gather(
                acceptors,
                "paxos_prepare",
                PrepareRequest(instance, ballot),
                timeout,
            )
            granted = [r for r in promises if r is not None and r.promised]
            if len(granted) < majority:
                self._next_round += 1
                continue
            # Adopt the highest-ballot accepted value, if any.
            chosen = value
            best: Ballot = ZERO_BALLOT
            for reply in granted:
                if reply.accepted_value is not None and reply.accepted_ballot > best:
                    best = reply.accepted_ballot
                    chosen = reply.accepted_value
            # Phase 2: accept.
            acks = yield from self._gather(
                acceptors,
                "paxos_accept",
                AcceptRequest(instance, ballot, chosen),
                timeout,
            )
            accepted = [r for r in acks if r is not None and r.accepted]
            if len(accepted) < majority:
                continue
            # Decided: tell every acceptor (and remember locally).
            self.decisions[instance] = chosen
            for acceptor in acceptors:
                self.cast(acceptor, "paxos_learn", LearnMessage(instance, chosen))
            return chosen
        raise PaxosConflict(f"no decision for {instance} after {max_rounds} rounds")

    def _gather(self, peers: list[str], method: str, payload: Any, timeout: float):
        """Call all peers, mapping timeouts/errors to None."""
        calls = [
            self.kernel.spawn(self._safe_call(peer, method, payload, timeout))
            for peer in peers
        ]
        replies = yield self.kernel.all_of(calls)
        return replies

    def _safe_call(self, peer: str, method: str, payload: Any, timeout: float):
        try:
            reply = yield self.call(peer, method, payload, timeout=timeout)
            return reply
        except (RpcTimeout, RemoteError):
            return None
