"""Failure detection, Paxos leader election, and replica promotion.

Section III-H: "If a failure occurs, one of the Readers can assume the
role of the Compactor via a leader election process until the original
Compactor recovers."

Each replica of a :class:`ReplicaGroup` runs a heartbeat monitor
against the current leader.  After ``misses_to_suspect`` consecutive
timeouts it starts an election: a Paxos instance (one per group and
term) decides the new leader among the replicas that are alive.  The
winner is promoted — it activates its dormant Compactor role, finishes
applying its log, and the group's :class:`~repro.core.keyspace.Partition`
is repointed at it, so the Ingestors' forward-retry loop and the read
path reach the new leader without any Ingestor-side changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.keyspace import Partition
from repro.sim.kernel import Kernel
from repro.sim.rpc import RemoteError, RpcTimeout

from .paxos import PaxosConflict
from .replica import CompactorReplica, ReplicatedCompactor


@dataclass(slots=True)
class FailoverStats:
    """Counters for observability in tests and benches."""

    suspicions: int = 0
    elections_started: int = 0
    promotions: int = 0
    leader_changes: list[str] = field(default_factory=list)


class ReplicaGroup:
    """One Compactor partition: a leader, its replicas, and its Partition.

    Args:
        kernel: Simulation kernel.
        name: Group name (used in Paxos instance ids).
        leader: The initially active Compactor.
        replicas: The 2f passive replicas.
        partition: The key-range partition this group serves; its
            ``members`` list is mutated on promotion.
        heartbeat_interval: Seconds between replica->leader pings.
        heartbeat_timeout: Ping RPC timeout.
        misses_to_suspect: Consecutive failed pings before electing.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        leader: ReplicatedCompactor,
        replicas: list[CompactorReplica],
        partition: Partition,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 0.25,
        misses_to_suspect: int = 3,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.leader = leader
        self.replicas = replicas
        self.partition = partition
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.misses_to_suspect = misses_to_suspect
        self.stats = FailoverStats()
        self.term = 0
        self.current_leader_name = leader.name
        self._stopped = False
        for replica in replicas:
            kernel.spawn(self._monitor(replica), f"{name}.monitor.{replica.name}")

    def stop(self) -> None:
        """Disable monitoring (used by tests to quiesce the simulation)."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Heartbeats and elections
    # ------------------------------------------------------------------
    def _monitor(self, replica: CompactorReplica):
        misses = 0
        while not self._stopped:
            yield self.kernel.timeout(self.heartbeat_interval)
            if self._stopped:
                return
            if replica.crashed or replica.active:
                continue
            try:
                yield replica.call(
                    self.current_leader_name,
                    "ping",
                    None,
                    timeout=self.heartbeat_timeout,
                )
                misses = 0
            except (RpcTimeout, RemoteError):
                misses += 1
                if misses >= self.misses_to_suspect:
                    self.stats.suspicions += 1
                    misses = 0
                    yield from self._run_election(replica)

    def _run_election(self, candidate: CompactorReplica):
        """Candidate proposes itself; Paxos picks one winner per term."""
        term = self.term + 1
        instance = f"election/{self.name}/{term}"
        acceptors = [r.name for r in self.replicas]
        self.stats.elections_started += 1
        try:
            winner = yield from candidate.paxos_propose(
                instance, candidate.name, acceptors, timeout=self.heartbeat_timeout
            )
        except PaxosConflict:
            return
        if term <= self.term:
            return  # a concurrent election already advanced the term
        self.term = term
        self._promote(winner)

    def _node(self, name: str):
        if self.leader.name == name:
            return self.leader
        for replica in self.replicas:
            if replica.name == name:
                return replica
        return None

    def _promote(self, winner_name: str) -> None:
        if winner_name == self.current_leader_name:
            return
        # Fence the deposed leader first: if it was merely partitioned
        # (not crashed) and later resurrects, it must reject forwards
        # instead of accepting writes the new leader never sees.
        old = self._node(self.current_leader_name)
        if isinstance(old, ReplicatedCompactor):
            old.fence(self.term)
        elif isinstance(old, CompactorReplica):
            old.demote(self.term)
        for replica in self.replicas:
            if replica.name == winner_name:
                replica.promote(self.term)
                break
        # Repoint the partition: swap the failed leader for the promoted
        # replica, leaving any other (overlapping) members untouched.
        try:
            index = self.partition.members.index(self.current_leader_name)
            self.partition.members[index] = winner_name
        except ValueError:  # leader already removed (e.g. reconfiguration)
            self.partition.members.append(winner_name)
        self.current_leader_name = winner_name
        self.stats.promotions += 1
        self.stats.leader_changes.append(winner_name)


def build_replica_groups(
    cluster,
    tolerated_failures: int = 1,
    heartbeat_interval: float = 0.5,
    heartbeat_timeout: float = 0.25,
) -> list[ReplicaGroup]:
    """Wire replication for a cluster built with ReplicatedCompactors.

    Called by :func:`repro.core.cluster.build_cluster` when the spec
    sets ``tolerated_failures > 0``: creates ``2f``
    :class:`CompactorReplica` nodes per Compactor on their own cloud
    machines, and a :class:`ReplicaGroup` driving heartbeats/failover.
    """
    spec = cluster.spec
    groups: list[ReplicaGroup] = []
    for index, leader in enumerate(cluster.compactors):
        if not isinstance(leader, ReplicatedCompactor):
            raise TypeError(
                "build_replica_groups requires ReplicatedCompactor leaders "
                "(set ClusterSpec.tolerated_failures before building)"
            )
        replicas = []
        for replica_name in leader.replicas:
            machine = cluster.machine(f"m-{replica_name}", spec.cloud_region)
            replicas.append(
                CompactorReplica(
                    cluster.kernel,
                    cluster.network,
                    machine,
                    replica_name,
                    spec.config,
                    cluster.clock_for(replica_name),
                    multi_ingestor=spec.multi_ingestor,
                )
            )
        partition = next(
            p for p in cluster.partitioning.partitions if leader.name in p.members
        )
        groups.append(
            ReplicaGroup(
                cluster.kernel,
                f"group-{index}",
                leader,
                replicas,
                partition,
                heartbeat_interval=heartbeat_interval,
                heartbeat_timeout=heartbeat_timeout,
            )
        )
    cluster.replica_groups = groups
    return groups
