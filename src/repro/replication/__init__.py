"""Fault tolerance: Paxos, replicated Compactor logs, and failover.

Implements Section III-H — a Compactor replicates its operation log to
2f replicas (2f+1 nodes counting the leader) before acking Ingestors;
heartbeat monitors detect leader failure and a Paxos election promotes
a replica, repointing the key-range partition so Ingestors and readers
follow automatically.
"""

from .failover import FailoverStats, ReplicaGroup, build_replica_groups
from .paxos import (
    AcceptorState,
    Ballot,
    PaxosConflict,
    PaxosMixin,
    ZERO_BALLOT,
)
from .replica import (
    CompactorReplica,
    LogRecord,
    ReplicatedCompactor,
    ReplicationStats,
)

__all__ = [
    "AcceptorState",
    "Ballot",
    "CompactorReplica",
    "FailoverStats",
    "LogRecord",
    "PaxosConflict",
    "PaxosMixin",
    "ReplicaGroup",
    "ReplicatedCompactor",
    "ReplicationStats",
    "ZERO_BALLOT",
    "build_replica_groups",
]
