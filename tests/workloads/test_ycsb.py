"""Tests for the YCSB-style workloads."""

import pytest

from repro.lsm.errors import InvalidConfigError
from repro.workloads import preload
from repro.workloads.ycsb import (
    WORKLOADS,
    workload_a,
    workload_c,
    workload_d,
    workload_e,
    workload_f,
)

from tests.core.conftest import tiny_cluster


def build():
    cluster = tiny_cluster(num_compactors=2)
    client = cluster.add_client(colocate_with="ingestor-0", record_history=False)
    cluster.run_process(preload(client, 2_000, key_range=cluster.config.key_range))
    return cluster, client


class TestMixes:
    def test_workload_a_balanced(self):
        cluster, client = build()
        result = cluster.run_process(workload_a(client, ops=600, seed=1))
        assert result.total_ops == 600
        assert 0.4 < result.reads / 600 < 0.6
        assert result.updates == 600 - result.reads

    def test_workload_c_read_only(self):
        cluster, client = build()
        result = cluster.run_process(workload_c(client, ops=300, seed=2))
        assert result.reads == 300
        assert result.updates == 0

    def test_workload_d_read_latest(self):
        cluster, client = build()
        result = cluster.run_process(workload_d(client, ops=500, seed=3))
        assert result.inserts > 0
        assert result.reads > result.inserts
        assert result.mean("read") > 0

    def test_workload_e_scans(self):
        cluster, client = build()
        result = cluster.run_process(workload_e(client, ops=60, seed=4))
        assert result.scans > result.inserts
        assert result.mean("scan") > 0

    def test_workload_e_validates_scan_length(self):
        cluster, client = build()
        with pytest.raises(InvalidConfigError):
            workload_e(client, max_scan_length=0)

    def test_workload_f_rmw(self):
        cluster, client = build()
        result = cluster.run_process(workload_f(client, ops=300, seed=5))
        assert result.rmws > 0
        # RMW = read + write: costs at least as much as a plain read.
        assert result.mean("rmw") >= result.mean("read")

    def test_registry_complete(self):
        assert set(WORKLOADS) == {"A", "B", "C", "D", "E", "F"}


class TestLatencyShape:
    def test_read_heavy_faster_than_write_heavy_at_tail(self):
        """Workload C (no writes -> no compaction stalls) has a smaller
        maximum latency than workload A on the same deployment."""
        cluster, client = build()
        result_a = cluster.run_process(workload_a(client, ops=800, seed=6))
        cluster2, client2 = build()
        result_c = cluster2.run_process(workload_c(client2, ops=800, seed=6))
        max_a = max(result_a.latencies["update"] + result_a.latencies["read"])
        max_c = max(result_c.latencies["read"])
        assert max_c <= max_a
