"""Tests for workload trace record/replay."""

import pytest

from repro.lsm.errors import InvalidConfigError
from repro.workloads.trace import Trace, TraceOp, replay

from tests.core.conftest import tiny_cluster


class TestSynthesis:
    def test_mix_respected(self):
        trace = Trace.synthesize(2_000, read_fraction=0.3, delete_fraction=0.1, seed=4)
        kinds = [op.kind for op in trace]
        assert 0.25 < kinds.count("read") / len(kinds) < 0.35
        assert 0.05 < kinds.count("delete") / len(kinds) < 0.15

    def test_deterministic(self):
        a = Trace.synthesize(500, seed=9)
        b = Trace.synthesize(500, seed=9)
        assert a.ops == b.ops

    def test_bad_fractions(self):
        with pytest.raises(InvalidConfigError):
            Trace.synthesize(10, read_fraction=0.8, delete_fraction=0.5)

    def test_bad_kind(self):
        with pytest.raises(InvalidConfigError):
            Trace().append("scan", 1)


class TestSerialisation:
    def test_roundtrip(self):
        trace = Trace.synthesize(200, read_fraction=0.3, delete_fraction=0.1, seed=2)
        assert Trace.loads(trace.dumps()).ops == trace.ops

    def test_file_roundtrip(self, tmp_path):
        trace = Trace.synthesize(50, seed=3)
        path = str(tmp_path / "w.trace")
        trace.save(path)
        assert Trace.load(path).ops == trace.ops

    def test_comments_and_blanks_skipped(self):
        text = "# comment\n\nwrite 5 6162\nread 5\n"
        trace = Trace.loads(text)
        assert trace.ops == [TraceOp("write", 5, b"ab"), TraceOp("read", 5)]

    def test_bad_lines_rejected(self):
        with pytest.raises(InvalidConfigError):
            Trace.loads("write 5")
        with pytest.raises(InvalidConfigError):
            Trace.loads("upsert 5 00")


class TestReplay:
    def test_replay_returns_oracle(self):
        cluster = tiny_cluster()
        client = cluster.add_client(colocate_with="ingestor-0")
        trace = Trace.synthesize(
            1_000, read_fraction=0.2, delete_fraction=0.05, key_range=200, seed=7
        )
        model = cluster.run_process(replay(client, trace))

        def verify():
            misses = 0
            for key in range(200):
                got = yield from client.read(key)
                misses += got != model.get(key)
            return misses

        assert cluster.run_process(verify()) == 0

    def test_same_trace_same_data_across_deployments(self):
        """The point of traces: identical input to different topologies
        yields identical logical state."""
        trace = Trace.synthesize(800, delete_fraction=0.1, key_range=150, seed=11)

        def final_state(num_compactors):
            cluster = tiny_cluster(num_compactors=num_compactors)
            client = cluster.add_client(colocate_with="ingestor-0")
            model = cluster.run_process(replay(client, trace))

            def read_all():
                state = {}
                for key in range(150):
                    state[key] = yield from client.read(key)
                return state

            state = cluster.run_process(read_all())
            return model, state

        model_a, state_a = final_state(1)
        model_b, state_b = final_state(3)
        assert model_a == model_b
        assert state_a == state_b
