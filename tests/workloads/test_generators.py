"""Tests for workload generators and the smart traffic benchmark."""

import pytest

from repro.lsm.errors import InvalidConfigError
from repro.workloads import (
    CityModel,
    WorkloadSpec,
    analytics_queries,
    mixed,
    populate_city,
    preload,
    real_time_action,
    update_and_explore,
    write_only,
)

from tests.core.conftest import tiny_cluster


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            WorkloadSpec(ops=0)
        with pytest.raises(InvalidConfigError):
            WorkloadSpec(read_fraction=1.5)


class TestGenerators:
    def test_write_only_counts(self):
        cluster = tiny_cluster()
        client = cluster.add_client(colocate_with="ingestor-0")
        writes, reads = cluster.run_process(write_only(client, ops=500))
        assert writes == 500 and reads == 0
        assert len(client.stats.all("write")) == 500

    def test_mixed_ratio_roughly_respected(self):
        cluster = tiny_cluster()
        client = cluster.add_client(colocate_with="ingestor-0")
        writes, reads = cluster.run_process(mixed(client, 0.5, ops=1_000))
        assert writes + reads == 1_000
        assert 0.4 < reads / 1_000 < 0.6

    def test_preload_populates(self):
        cluster = tiny_cluster()
        client = cluster.add_client(colocate_with="ingestor-0")
        cluster.run_process(preload(client, 300, key_range=300))

        def check():
            return (yield from client.read(37))

        assert cluster.run_process(check()) is not None

    def test_deterministic_given_seed(self):
        def run():
            cluster = tiny_cluster(seed=5)
            client = cluster.add_client(colocate_with="ingestor-0")
            cluster.run_process(write_only(client, ops=400, seed=9))
            return client.stats.all("write")

        assert run() == run()


class TestCityModel:
    def test_intersections_partition_cars(self):
        city = CityModel(num_cars=100, num_intersections=10)
        assert city.intersection_of(13) == 3
        cars = city.cars_at(3)
        assert 13 in cars
        assert all(city.intersection_of(c) == 3 for c in cars)

    def test_neighbours_same_intersection(self):
        import random

        city = CityModel(num_cars=100, num_intersections=10)
        neighbours = city.neighbours(13, 5, random.Random(1))
        assert len(neighbours) == 5
        assert 13 not in neighbours
        assert all(city.intersection_of(n) == 3 for n in neighbours)

    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            CityModel(num_cars=0)


class TestTrafficTasks:
    def build(self):
        cluster = tiny_cluster(num_readers=1)
        client = cluster.add_client(colocate_with="ingestor-0")
        city = CityModel(num_cars=500, num_intersections=20)
        cluster.run_process(populate_city(client, city))
        return cluster, client, city

    def test_real_time_action_measures_sequences(self):
        cluster, client, city = self.build()
        result = cluster.run_process(
            real_time_action(client, client, city, rounds=20)
        )
        assert len(result.latencies) == 20
        assert result.mean > 0

    def test_update_and_explore_scales_with_explorations(self):
        cluster, client, city = self.build()
        small = cluster.run_process(
            update_and_explore(client, city, explorations=1, rounds=10)
        )
        large = cluster.run_process(
            update_and_explore(client, city, explorations=10, rounds=10)
        )
        assert large.mean > small.mean

    def test_analytics_served_from_reader(self):
        cluster, client, city = self.build()
        cluster.run()  # let backups catch up
        reads_before = cluster.readers[0].stats.reads
        result = cluster.run_process(
            analytics_queries(client, city, query_size=50, rounds=5)
        )
        assert len(result.latencies) == 5
        # All reads (including the setup round trips) hit the Reader.
        assert cluster.readers[0].stats.reads > reads_before + 5 * 50

    def test_analytics_per_read_latency_amortises(self):
        cluster, client, city = self.build()
        cluster.run()
        small = cluster.run_process(
            analytics_queries(client, city, query_size=20, rounds=5)
        )
        large = cluster.run_process(
            analytics_queries(client, city, query_size=200, rounds=5)
        )
        assert large.mean < small.mean
