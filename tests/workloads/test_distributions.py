"""Tests for key distributions."""

import random
from collections import Counter

import pytest

from repro.lsm.errors import InvalidConfigError
from repro.workloads.distributions import (
    Hotspot,
    Sequential,
    Uniform,
    Zipfian,
    make_picker,
)


def draw(picker, n=10_000, seed=1):
    rng = random.Random(seed)
    return [picker.pick(rng) for __ in range(n)]


class TestUniform:
    def test_in_range(self):
        keys = draw(Uniform(100))
        assert all(0 <= k < 100 for k in keys)

    def test_roughly_flat(self):
        counts = Counter(draw(Uniform(10), n=50_000))
        assert max(counts.values()) < 2 * min(counts.values())


class TestSequential:
    def test_round_robin(self):
        picker = Sequential(5)
        rng = random.Random(0)
        assert [picker.pick(rng) for __ in range(7)] == [0, 1, 2, 3, 4, 0, 1]

    def test_start_offset(self):
        picker = Sequential(5, start=3)
        rng = random.Random(0)
        assert picker.pick(rng) == 3


class TestZipfian:
    def test_in_range(self):
        keys = draw(Zipfian(1_000))
        assert all(0 <= k < 1_000 for k in keys)

    def test_skewed(self):
        counts = Counter(draw(Zipfian(1_000), n=30_000))
        top_share = sum(c for __, c in counts.most_common(10)) / 30_000
        assert top_share > 0.3  # top 1% of keys gets >30% of accesses

    def test_theta_validated(self):
        with pytest.raises(InvalidConfigError):
            Zipfian(100, theta=0.0)


class TestHotspot:
    def test_hot_set_dominates(self):
        picker = Hotspot(1_000, hot_fraction=0.1, hot_access=0.9)
        keys = draw(picker, n=20_000)
        hot = sum(1 for k in keys if k < 100)
        assert hot / len(keys) > 0.85

    def test_validation(self):
        with pytest.raises(InvalidConfigError):
            Hotspot(100, hot_fraction=0.0)


class TestFactory:
    def test_by_name(self):
        assert isinstance(make_picker("uniform", 10), Uniform)
        assert isinstance(make_picker("zipfian", 10), Zipfian)

    def test_unknown_rejected(self):
        with pytest.raises(InvalidConfigError):
            make_picker("gaussian", 10)

    def test_zero_range_rejected(self):
        with pytest.raises(InvalidConfigError):
            Uniform(0)
