"""The scan-heavy (YCSB-E shape) workload generator."""

import pytest

from repro.lsm.errors import InvalidConfigError
from repro.workloads import scan_heavy, scan_ranges

from tests.core.conftest import fill, tiny_cluster


class TestScanRanges:
    def test_deterministic_and_bounded(self):
        a = scan_ranges(50, 1_000, seed=3)
        b = scan_ranges(50, 1_000, seed=3)
        assert a == b
        assert scan_ranges(50, 1_000, seed=4) != a
        for lo, hi in a:
            assert 0 <= lo < hi <= 1_000

    def test_lengths_respect_cap(self):
        for lo, hi in scan_ranges(200, 10_000, seed=1, max_scan_length=7):
            assert 1 <= hi - lo <= 7

    def test_zipfian_starts_skew_low(self):
        # The lowest 10% of the key space must draw disproportionately
        # many scan starts (that is what makes re-scans cache-friendly).
        starts = [lo for lo, __ in scan_ranges(300, 10_000, seed=2)]
        low_fraction = sum(1 for s in starts if s < 1_000) / len(starts)
        assert low_fraction > 0.15  # uniform would give ~0.10

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidConfigError):
            scan_ranges(0, 1_000)
        with pytest.raises(InvalidConfigError):
            scan_ranges(10, 1_000, max_scan_length=0)


class TestScanHeavyDriver:
    def test_drives_reader_scans_through_a_cluster(self):
        cluster = tiny_cluster(num_readers=1)
        writer = cluster.add_client()
        cluster.run_process(fill(cluster, writer, 800))
        cluster.run()
        client = cluster.add_client()
        result = cluster.run_process(
            scan_heavy(client, ops=80, seed=5, reader="reader-0")
        )
        assert result.scans + result.inserts == 80
        assert result.scans > result.inserts  # 95/5 default mix
        assert len(result.latencies.get("scan", [])) == result.scans
        assert cluster.readers[0].stats.range_queries == result.scans

    def test_scan_fraction_validated(self):
        cluster = tiny_cluster(num_readers=1)
        client = cluster.add_client()
        with pytest.raises(InvalidConfigError):
            scan_heavy(client, ops=10, scan_fraction=1.5)
