"""Tests for the simulated baseline engine nodes."""

import pytest

from repro.baselines.nodes import build_baseline_node
from repro.core.client import Client
from repro.core.keyspace import Partitioning

from tests.core.conftest import TINY


def build(kind):
    kernel, network, machine, node = build_baseline_node(kind, TINY)
    partitioning = Partitioning.uniform(TINY.key_range, [node.name])
    client = Client(
        kernel, network, machine, "client-0", TINY, partitioning, [node.name]
    )
    return kernel, node, client


@pytest.mark.parametrize("kind", ["leveldb", "rocksdb"])
class TestEngines:
    def test_write_read_roundtrip(self, kind):
        kernel, node, client = build(kind)

        def driver():
            oracle = {}
            for i in range(1_500):
                key = i % 300
                value = b"%s-%d" % (kind.encode(), i)
                yield from client.upsert(key, value)
                oracle[key] = value
            misses = 0
            for key, value in oracle.items():
                got = yield from client.read(key)
                misses += got != value
            return misses

        assert kernel.run_process(driver()) == 0

    def test_write_latency_includes_sync(self, kind):
        kernel, node, client = build(kind)

        def driver():
            yield from client.upsert(1, b"v")

        kernel.run_process(driver())
        # One write: loopback RTT + upsert CPU + WAL fsync (~50us).
        assert client.stats.all("write")[0] >= 50e-6

    def test_compaction_work_charged(self, kind):
        kernel, node, client = build(kind)

        def driver():
            for i in range(3_000):
                yield from client.upsert(i % 400, b"x%d" % i)

        kernel.run_process(driver())
        latencies = client.stats.all("write")
        # Writes that trigger compaction are far slower than the median.
        assert max(latencies) > 10 * sorted(latencies)[len(latencies) // 2]
