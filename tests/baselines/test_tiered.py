"""Tests for the universal-compaction (RocksDB-like) engine."""

import random

import pytest

from repro.baselines.tiered import TieredConfig, TieredTree
from repro.lsm.errors import InvalidConfigError

SMALL = TieredConfig(memtable_entries=16, run_count_trigger=4)


class TestConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(InvalidConfigError):
            TieredConfig(memtable_entries=0)
        with pytest.raises(InvalidConfigError):
            TieredConfig(run_count_trigger=1)
        with pytest.raises(InvalidConfigError):
            TieredConfig(size_ratio=0.5)


class TestBasicOps:
    def test_put_get(self):
        tree = TieredTree(SMALL)
        tree.put(b"k", b"v")
        assert tree.get(b"k") == b"v"

    def test_overwrite_newest_wins(self):
        tree = TieredTree(SMALL)
        tree.put("k", "v1")
        tree.put("k", "v2")
        assert tree.get("k") == b"v2"

    def test_overwrite_across_runs(self):
        tree = TieredTree(SMALL)
        tree.put("k", "old")
        for i in range(100):
            tree.put(i, "fill")
        tree.put("k", "new")
        for i in range(100):
            tree.put(100 + i, "fill")
        assert tree.get("k") == b"new"

    def test_delete(self):
        tree = TieredTree(SMALL)
        tree.put("k", "v")
        for i in range(50):
            tree.put(i, "fill")
        tree.delete("k")
        for i in range(50):
            tree.put(50 + i, "fill")
        assert tree.get("k") is None

    def test_missing(self):
        assert TieredTree(SMALL).get("nope") is None


class TestCompaction:
    def test_run_count_bounded(self):
        tree = TieredTree(SMALL)
        for i in range(2_000):
            tree.put(i % 300, "v%d" % i)
        assert len(tree.runs) <= SMALL.run_count_trigger

    def test_compactions_recorded(self):
        tree = TieredTree(SMALL)
        for i in range(2_000):
            tree.put(i % 300, "v%d" % i)
        assert tree.stats.compactions
        assert all(e.runs_merged >= 2 for e in tree.stats.compactions)

    def test_runs_newest_first_disjoint_in_time(self):
        tree = TieredTree(SMALL)
        for i in range(1_000):
            tree.put(i % 200, "v%d" % i)
        # Every entry in a newer run has a higher timestamp bound than
        # any entry in an older run (time-range disjointness).
        max_ts = [max(e.timestamp for e in run.entries) for run in tree.runs]
        min_ts = [min(e.timestamp for e in run.entries) for run in tree.runs]
        for newer in range(len(tree.runs) - 1):
            assert min_ts[newer] > max_ts[newer + 1]

    def test_space_amplification_exists(self):
        """Tiering retains duplicate versions across runs (the trade-off
        the paper's Related Work describes)."""
        tree = TieredTree(TieredConfig(memtable_entries=16, run_count_trigger=12))
        for i in range(3_000):
            tree.put(i % 50, "v%d" % i)  # heavy overwrites
        assert tree.total_entries() > tree.live_keys()


class TestCorrectness:
    def test_matches_dict_model(self):
        rng = random.Random(13)
        tree = TieredTree(SMALL)
        model = {}
        for i in range(4_000):
            key = rng.randrange(400)
            if rng.random() < 0.08:
                tree.delete(key)
                model.pop(key, None)
            else:
                value = b"t-%d" % i
                tree.put(key, value)
                model[key] = value
        for key in range(400):
            assert tree.get(key) == model.get(key)
