"""Ingestor crash recovery (Section III-H): WAL-backed memtable."""

from tests.core.conftest import tiny_cluster


def test_crash_loses_memtable_recovery_restores_it():
    cluster = tiny_cluster()
    client = cluster.add_client(colocate_with="ingestor-0")
    ingestor = cluster.ingestors[0]

    def write_partial_batch():
        # Fewer writes than the batch size: everything is memtable-only.
        for i in range(cluster.config.memtable_entries - 5):
            yield from client.upsert(i, b"buffered-%d" % i)

    cluster.run_process(write_partial_batch())
    assert ingestor.stats.flushes == 0

    ingestor.crash()  # wipes the memtable
    from repro.lsm.entry import encode_key

    assert ingestor._memtable.get(encode_key(0)) is None

    ingestor.recover()  # WAL replay restores the batch
    entry, __ = ingestor._search_local(encode_key(0), None)
    assert entry is not None and entry.value == b"buffered-0"

    def read_after_recovery():
        return (yield from client.read(3))

    assert cluster.run_process(read_after_recovery()) == b"buffered-3"


def test_unflushed_cleared_on_flush():
    cluster = tiny_cluster()
    client = cluster.add_client(colocate_with="ingestor-0")
    ingestor = cluster.ingestors[0]

    def fill_batches():
        for i in range(cluster.config.memtable_entries * 2):
            yield from client.upsert(i, b"x")

    cluster.run_process(fill_batches())
    # The WAL model only holds the current (unflushed) batch.
    assert len(ingestor._unflushed) < cluster.config.memtable_entries


def test_no_acked_write_lost_across_crash():
    cluster = tiny_cluster()
    client = cluster.add_client(colocate_with="ingestor-0")
    ingestor = cluster.ingestors[0]

    def phase1():
        oracle = {}
        for i in range(500):
            key = i % 200
            value = b"p-%d" % i
            yield from client.upsert(key, value)
            oracle[key] = value
        return oracle

    oracle = cluster.run_process(phase1())
    ingestor.crash()
    cluster.run(until=cluster.kernel.now + 1.0)
    ingestor.recover()

    def verify():
        misses = 0
        for key, value in oracle.items():
            got = yield from client.read(key)
            misses += got != value
        return misses

    assert cluster.run_process(verify()) == 0


def test_writes_resume_after_recovery():
    cluster = tiny_cluster()
    client = cluster.add_client(colocate_with="ingestor-0")
    ingestor = cluster.ingestors[0]
    cluster.run_process(client.upsert(1, b"before"))
    ingestor.crash()
    ingestor.recover()

    def more():
        yield from client.upsert(2, b"after")
        a = yield from client.read(1)
        b = yield from client.read(2)
        return a, b

    assert cluster.run_process(more()) == (b"before", b"after")
