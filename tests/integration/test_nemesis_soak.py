"""Chaos soak: composed faults, zero acked-write loss, replayable runs.

The ISSUE's acceptance scenario: while a client keeps writing, the
nemesis crashes and restarts the Ingestor, partitions a Compactor from
the edge and heals it, crashes the Reader mid-propagation, and raises
the drop rate in a burst.  Afterwards:

* every acked write is readable (zero acked-write loss);
* the Table I checkers pass on the observed history;
* the Reader has converged back onto every Compactor's state;
* the whole run — fault log, history, network counters — replays
  bit-identically from the seed.
"""

from dataclasses import replace

from repro.core import (
    ClusterSpec,
    build_cluster,
    check_linearizable,
    check_snapshot_linearizable,
)
from repro.sim import CrashNode, DropBurst, Nemesis, PartitionPair
from repro.sim.rpc import RemoteError, RpcTimeout

from tests.core.conftest import TINY

#: Tight timeouts so failure handling (not waiting) dominates the run.
SOAK = replace(TINY, ack_timeout=0.2, client_timeout=0.5, client_retry_budget=4)

#: The combined acceptance scenario (times in simulation seconds).
SCENARIO = [
    CrashNode("ingestor-0", at=0.6, downtime=0.8),
    PartitionPair("m-compactor-0", "m-ingestor-0", at=2.0, duration=0.8),
    DropBurst(0.3, at=3.2, duration=0.8),
    CrashNode("reader-0", at=4.2, downtime=0.6),
]


def build_soak_cluster(seed):
    return build_cluster(
        ClusterSpec(
            config=SOAK,
            num_ingestors=1,
            num_compactors=2,
            num_readers=1,
            seed=seed,
            drop_probability=0.02,
        )
    )


def chaos_writer(cluster, client, ops, acked, key_range=300, pace=0.004):
    """Write ``ops`` values, retrying each until acked; records every
    acked (key, value) in ``acked``.  Retries reuse the same value, so
    an earlier attempt that was applied-but-unacked can never surface a
    value outside the recorded history.  ``pace`` spreads the workload
    across simulation time so it overlaps the fault schedule (un-paced,
    the whole run finishes before the first fault fires)."""

    def driver():
        for i in range(ops):
            key = i % key_range
            value = b"soak-%d" % i
            while True:
                try:
                    yield from client.upsert(key, value)
                    break
                except (RpcTimeout, RemoteError):
                    continue
            acked[key] = value
            yield cluster.kernel.timeout(pace)

    return driver


def run_soak(seed, ops=1_200):
    cluster = build_soak_cluster(seed)
    client = cluster.add_client(colocate_with="ingestor-0")
    nemesis = Nemesis.for_cluster(cluster)
    processes = nemesis.schedule(SCENARIO)
    acked: dict[int, bytes] = {}
    writer = cluster.kernel.spawn(chaos_writer(cluster, client, ops, acked)())

    def barrier():
        yield cluster.kernel.all_of([writer, *processes])

    cluster.run_process(barrier())
    cluster.run()  # drain: forwards, compactions, backup updates, resync
    assert nemesis.done()
    return cluster, client, nemesis, acked


def read_back(cluster, client, acked):
    def verify():
        missing = []
        for key, value in sorted(acked.items()):
            got = yield from client.read(key)
            if got != value:
                missing.append(key)
        return missing

    return cluster.run_process(verify())


class TestSoakScenario:
    def test_no_acked_write_lost(self):
        cluster, client, nemesis, acked = run_soak(seed=101)
        # The scenario actually exercised every fault family it names.
        assert nemesis.stats.crashes == 2
        assert nemesis.stats.restarts == 2
        assert nemesis.stats.partitions == 1
        assert nemesis.stats.heals == 1
        assert nemesis.stats.drop_bursts == 1
        # The client felt the faults (timeouts, not silent hangs)...
        assert client.stats.timeouts > 0
        # ...yet every acked write survives.
        assert read_back(cluster, client, acked) == []

    def test_cache_stays_coherent_across_chaos(self):
        """Crash/recovery must never serve stale cached rows: a second
        read pass — served largely from the post-chaos caches — must
        agree with the oracle exactly, and every node's cache counters
        must stay internally consistent and within capacity."""
        from repro.core import ClusterMonitor

        cluster, client, __, acked = run_soak(seed=104)
        assert read_back(cluster, client, acked) == []  # warms caches
        assert read_back(cluster, client, acked) == []  # served from them
        for node in (*cluster.ingestors, *cluster.compactors, *cluster.readers):
            cache = node.read_cache
            if cache is None:
                continue
            stats = cache.stats
            assert stats.lookups == stats.hits + stats.misses
            assert 0.0 <= stats.hit_rate <= 1.0
            assert len(cache) <= cache.capacity
        monitor = ClusterMonitor(cluster)
        monitor.sample_once()
        assert "cache_hits" in monitor.timeline.gauges()

    def test_table1_checkers_pass(self):
        cluster, client, __, acked = run_soak(seed=102)
        assert read_back(cluster, client, acked) == []
        report = check_linearizable(cluster.history)
        assert report.ok, report.violations[:3]

    def test_reader_converges_after_chaos(self):
        cluster, __, ___, ____ = run_soak(seed=103)
        reader = cluster.readers[0]
        for compactor in cluster.compactors:
            reader_state = {
                (e.key, e.version)
                for level_index in (0, 1)
                for t in reader._areas.get(compactor.name).level(level_index)
                for e in t.entries
            }
            compactor_state = {
                (e.key, e.version)
                for level in (compactor.level2, compactor.level3)
                for t in level
                for e in t.entries
            }
            assert reader_state == compactor_state

    def test_reader_snapshot_serves_no_garbage(self):
        """Backup reads issued *during* the chaos — including while the
        Reader crashes and catches back up — stay snapshot
        linearizable: values only ever advance along the write order."""
        from repro.core import History

        cluster = build_soak_cluster(seed=104)
        client = cluster.add_client(colocate_with="ingestor-0")
        analyst = cluster.add_client(
            region=cluster.spec.cloud_region, record_history=False
        )
        backup_history = History()
        analyst.history = backup_history
        nemesis = Nemesis.for_cluster(cluster)
        processes = nemesis.schedule(SCENARIO)
        acked: dict[int, bytes] = {}
        writer = cluster.kernel.spawn(chaos_writer(cluster, client, 1_200, acked)())

        def analyst_driver():
            for i in range(400):
                try:
                    yield from analyst.read_from_backup(i % 300)
                except (RpcTimeout, RemoteError):
                    pass  # reader down: bounded failure, try again later
                yield cluster.kernel.timeout(0.012)

        reads = cluster.kernel.spawn(analyst_driver())

        def barrier():
            yield cluster.kernel.all_of([writer, reads, *processes])

        cluster.run_process(barrier())
        cluster.run()
        report = check_snapshot_linearizable(cluster.history, backup_history)
        assert report.ok, report.violations[:3]
        served = [op for op in backup_history.reads() if op.value]
        assert served, "backup never returned data"


def soak_fingerprint(cluster, client, nemesis, acked):
    return (
        cluster.kernel.now,
        nemesis.log.fingerprint(),
        tuple(sorted(acked.items())),
        tuple(
            (op.kind, op.key, op.value, op.invoked_at, op.timestamp)
            for op in cluster.history
        ),
        (
            cluster.network.stats.messages_sent,
            cluster.network.stats.bytes_sent,
            cluster.network.stats.drops,
        ),
        (client.stats.timeouts, client.stats.failovers),
        tuple(
            (i.name, i.stats.forward_retries, i.stats.forward_failovers)
            for i in cluster.ingestors
        ),
        tuple(
            (c.name, c.stats.duplicate_forwards, c.manifest.total_entries())
            for c in cluster.compactors
        ),
        tuple(
            (r.name, r.stats.gaps_detected, r.stats.catchups)
            for r in cluster.readers
        ),
    )


class TestDeterminismUnderChaos:
    def test_same_seed_same_run(self):
        a = soak_fingerprint(*run_soak(seed=77))
        b = soak_fingerprint(*run_soak(seed=77))
        assert a == b

    def test_different_seed_different_run(self):
        a = soak_fingerprint(*run_soak(seed=77))
        b = soak_fingerprint(*run_soak(seed=78))
        assert a != b

    def test_replicated_failover_deterministic(self):
        """Determinism extends to elections: same seed, same promotion
        sequence and FailoverStats."""

        def run(seed):
            cluster = build_cluster(
                ClusterSpec(
                    config=SOAK,
                    num_compactors=1,
                    num_readers=0,
                    tolerated_failures=1,
                    seed=seed,
                )
            )
            client = cluster.add_client(colocate_with="ingestor-0")
            nemesis = Nemesis.for_cluster(cluster)
            nemesis.schedule([CrashNode("compactor-0", at=1.5)])
            acked: dict[int, bytes] = {}
            writer = cluster.kernel.spawn(
                chaos_writer(cluster, client, 800, acked)()
            )
            cluster.run(until=60.0)
            assert writer.triggered
            group = cluster.replica_groups[0]
            return (
                nemesis.log.fingerprint(),
                tuple(sorted(acked.items())),
                (group.stats.suspicions, group.stats.elections_started,
                 group.stats.promotions, tuple(group.stats.leader_changes)),
                cluster.network.stats.messages_sent,
            )

        a = run(55)
        b = run(55)
        assert a == b
        assert a[2][2] >= 1  # the crash really did cause a promotion


class TestRandomChaos:
    def test_seeded_random_scenario_safe(self):
        """A randomly drawn (but seeded) scenario over crash-restarts and
        drop bursts still loses nothing."""
        cluster = build_soak_cluster(seed=301)
        client = cluster.add_client(colocate_with="ingestor-0")
        nemesis = Nemesis.for_cluster(cluster)
        events = nemesis.random_schedule(
            horizon=4.0,
            crashes=3,
            partitions=1,
            drop_bursts=1,
            slowdowns=1,
            mean_downtime=0.4,
            crash_targets=["ingestor-0", "reader-0"],
        )
        processes = nemesis.schedule(events)
        acked: dict[int, bytes] = {}
        writer = cluster.kernel.spawn(chaos_writer(cluster, client, 800, acked)())

        def barrier():
            yield cluster.kernel.all_of([writer, *processes])

        cluster.run_process(barrier())
        cluster.run()
        assert read_back(cluster, client, acked) == []
